//! Replacement policies.

/// Block replacement policy used within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least recently used block (the paper's baseline).
    #[default]
    Lru,
    /// Evict the oldest filled block.
    Fifo,
    /// Evict a pseudo-random block (xorshift over the access counter).
    Random,
    /// LRU with minimum-aggregate-delay victim choice ("LRU-MAD", after the
    /// delayed-hits line of work): among the resident blocks, evict the one
    /// whose accrued fetch-plus-delayed-hit cost is lowest — it is the
    /// cheapest to lose — breaking ties toward the least recently used.
    LruMad,
}

impl ReplacementPolicy {
    /// Returns `true` if the policy updates its stamp on every hit (the
    /// LRU-ordered policies) as opposed to only on fill (FIFO/random).
    pub fn touches_on_hit(&self) -> bool {
        matches!(self, ReplacementPolicy::Lru | ReplacementPolicy::LruMad)
    }

    /// Returns `true` if the policy weighs per-frame aggregate-delay costs
    /// (and thus needs the cache to maintain them).
    pub fn tracks_delay(&self) -> bool {
        matches!(self, ReplacementPolicy::LruMad)
    }

    /// The pseudo-random way index used by [`ReplacementPolicy::Random`].
    ///
    /// The mixed counter is reduced to `0..ways` with a widening multiply
    /// (`(x * ways) >> 64`) instead of `x % ways`: the modulo mapped the
    /// extra `2^64 mod ways` values onto the low ways, biasing them, and
    /// cost a hardware divide on the fill path. The LRU/FIFO victim is the
    /// oldest-stamp frame, chosen by the single-pass scan in `Cache::fill`;
    /// this is the random policy's counterpart.
    #[inline]
    pub fn random_index(counter: u64, ways: usize) -> usize {
        let mut x = counter.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        ((u128::from(x) * ways as u128) >> 64) as usize
    }

    /// The policy's lower-case tag, as accepted by
    /// [`ReplacementPolicy::from_tag`] and used in JSON renderings.
    pub fn tag(&self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Random => "random",
            ReplacementPolicy::LruMad => "lru_mad",
        }
    }

    /// Parses a policy tag (`lru`, `fifo`, `random`, `lru_mad`).
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "lru" => Some(ReplacementPolicy::Lru),
            "fifo" => Some(ReplacementPolicy::Fifo),
            "random" => Some(ReplacementPolicy::Random),
            "lru_mad" => Some(ReplacementPolicy::LruMad),
            _ => None,
        }
    }

    /// The policy named by the `RESCACHE_POLICY` environment variable, or
    /// LRU (the paper's baseline) when unset or unrecognized.
    pub fn from_env() -> Self {
        match std::env::var("RESCACHE_POLICY") {
            Ok(v) => Self::from_tag(&v).unwrap_or_else(|| {
                eprintln!("rescache: unknown RESCACHE_POLICY {v:?}; using lru");
                ReplacementPolicy::Lru
            }),
            Err(_) => ReplacementPolicy::Lru,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_on_hit_is_lru_ordered_only() {
        assert!(ReplacementPolicy::Lru.touches_on_hit());
        assert!(ReplacementPolicy::LruMad.touches_on_hit());
        assert!(!ReplacementPolicy::Fifo.touches_on_hit());
        assert!(!ReplacementPolicy::Random.touches_on_hit());
    }

    #[test]
    fn only_lru_mad_tracks_delay() {
        assert!(ReplacementPolicy::LruMad.tracks_delay());
        assert!(!ReplacementPolicy::Lru.tracks_delay());
        assert!(!ReplacementPolicy::Fifo.tracks_delay());
        assert!(!ReplacementPolicy::Random.tracks_delay());
    }

    #[test]
    fn random_is_in_range_and_deterministic() {
        for counter in 0..100 {
            let v = ReplacementPolicy::random_index(counter, 4);
            assert!(v < 4);
            assert_eq!(v, ReplacementPolicy::random_index(counter, 4));
        }
        // Pin the widening-multiply mapping itself: the range reduction is
        // part of every Random-policy simulation result, so a silent change
        // here would unpin downstream goldens.
        let first: Vec<usize> = (0..8)
            .map(|c| ReplacementPolicy::random_index(c, 4))
            .collect();
        assert_eq!(first, vec![0, 0, 1, 3, 2, 0, 2, 0]);
        // Non-power-of-two way counts exercise the bias the modulo had.
        let three: Vec<usize> = (0..8)
            .map(|c| ReplacementPolicy::random_index(c, 3))
            .collect();
        assert_eq!(three, vec![0, 0, 0, 2, 1, 0, 1, 0]);
    }

    #[test]
    fn random_spreads_over_ways() {
        let mut seen = [false; 4];
        for counter in 0..200 {
            seen[ReplacementPolicy::random_index(counter, 4)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn random_reduction_is_unbiased_across_buckets() {
        // With the widening multiply, 3 ways split the mixed 64-bit space
        // into three equal thirds; over many counters the counts must be
        // close to uniform (the old `% 3` was biased by 2^64 mod 3 = 1).
        let mut counts = [0u32; 3];
        for counter in 0..30_000 {
            counts[ReplacementPolicy::random_index(counter, 3)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn tags_round_trip() {
        for p in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
            ReplacementPolicy::LruMad,
        ] {
            assert_eq!(ReplacementPolicy::from_tag(p.tag()), Some(p));
        }
        assert_eq!(ReplacementPolicy::from_tag("mru"), None);
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
