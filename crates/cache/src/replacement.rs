//! Replacement policies.

/// Block replacement policy used within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least recently used block (the paper's baseline).
    #[default]
    Lru,
    /// Evict the oldest filled block.
    Fifo,
    /// Evict a pseudo-random block (xorshift over the access counter).
    Random,
}

impl ReplacementPolicy {
    /// Returns `true` if the policy updates its stamp on every hit (LRU) as
    /// opposed to only on fill (FIFO/random).
    pub fn touches_on_hit(&self) -> bool {
        matches!(self, ReplacementPolicy::Lru)
    }

    /// Chooses a victim among `ways` candidates given their stamps and a
    /// tie-breaking counter. Lower stamps are older.
    pub fn choose_victim(&self, stamps: &[u64], counter: u64) -> usize {
        assert!(!stamps.is_empty(), "cannot choose a victim among zero ways");
        match self {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => stamps
                .iter()
                .enumerate()
                .min_by_key(|(_, stamp)| **stamp)
                .map(|(idx, _)| idx)
                .expect("non-empty stamps"),
            ReplacementPolicy::Random => {
                let mut x = counter.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678;
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                x ^= x >> 33;
                (x % stamps.len() as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_oldest() {
        let p = ReplacementPolicy::Lru;
        assert_eq!(p.choose_victim(&[5, 2, 9, 4], 0), 1);
        assert!(p.touches_on_hit());
    }

    #[test]
    fn fifo_picks_oldest_fill() {
        let p = ReplacementPolicy::Fifo;
        assert_eq!(p.choose_victim(&[3, 1, 2], 0), 1);
        assert!(!p.touches_on_hit());
    }

    #[test]
    fn random_is_in_range_and_deterministic() {
        let p = ReplacementPolicy::Random;
        for counter in 0..100 {
            let v = p.choose_victim(&[0, 0, 0, 0], counter);
            assert!(v < 4);
            assert_eq!(v, p.choose_victim(&[0, 0, 0, 0], counter));
        }
    }

    #[test]
    fn random_spreads_over_ways() {
        let p = ReplacementPolicy::Random;
        let mut seen = [false; 4];
        for counter in 0..200 {
            seen[p.choose_victim(&[0, 0, 0, 0], counter)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "zero ways")]
    fn empty_candidates_panic() {
        ReplacementPolicy::Lru.choose_victim(&[], 0);
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
