//! Replacement policies.

/// Block replacement policy used within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least recently used block (the paper's baseline).
    #[default]
    Lru,
    /// Evict the oldest filled block.
    Fifo,
    /// Evict a pseudo-random block (xorshift over the access counter).
    Random,
}

impl ReplacementPolicy {
    /// Returns `true` if the policy updates its stamp on every hit (LRU) as
    /// opposed to only on fill (FIFO/random).
    pub fn touches_on_hit(&self) -> bool {
        matches!(self, ReplacementPolicy::Lru)
    }

    /// The pseudo-random way index used by [`ReplacementPolicy::Random`]
    /// (xorshift-style mix of the access counter). The LRU/FIFO victim is
    /// the oldest-stamp frame, chosen by the single-pass scan in
    /// `Cache::fill`; this is the random policy's counterpart.
    #[inline]
    pub fn random_index(counter: u64, ways: usize) -> usize {
        let mut x = counter.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        (x % ways as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_on_hit_is_lru_only() {
        assert!(ReplacementPolicy::Lru.touches_on_hit());
        assert!(!ReplacementPolicy::Fifo.touches_on_hit());
        assert!(!ReplacementPolicy::Random.touches_on_hit());
    }

    #[test]
    fn random_is_in_range_and_deterministic() {
        for counter in 0..100 {
            let v = ReplacementPolicy::random_index(counter, 4);
            assert!(v < 4);
            assert_eq!(v, ReplacementPolicy::random_index(counter, 4));
        }
    }

    #[test]
    fn random_spreads_over_ways() {
        let mut seen = [false; 4];
        for counter in 0..200 {
            seen[ReplacementPolicy::random_index(counter, 4)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
