//! The resizable [`Cache`]: lookups, fills, and way/set resizing with the
//! paper's flush semantics.

use crate::config::{CacheConfig, CacheConfigError};
use crate::replacement::ReplacementPolicy;
use crate::stats::CacheStats;

/// Valid bit of a packed frame word.
const FRAME_VALID: u64 = 1 << 62;
/// Dirty bit of a packed frame word.
const FRAME_DIRTY: u64 = 1 << 63;
/// Block-address bits of a packed frame word.
const FRAME_ADDR_MASK: u64 = FRAME_VALID - 1;

/// One tag-store frame, packed into 16 bytes.
///
/// The block address, valid bit and dirty bit share one word
/// (addresses are byte addresses shifted right by the block size, so 62 bits
/// is far beyond any simulated address), which halves the tag array relative
/// to the earlier bool-field layout — a 512K L2's frames drop from 512 KB to
/// 256 KB, most of which is randomly indexed on every simulated L1 miss — and
/// turns the hit check into a single masked compare.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Frame {
    /// `block_addr | FRAME_VALID | FRAME_DIRTY` packed together.
    word: u64,
    /// Replacement stamp: last-use time for LRU, fill time for FIFO.
    stamp: u64,
}

impl Frame {
    #[inline(always)]
    fn valid(self) -> bool {
        self.word & FRAME_VALID != 0
    }

    #[inline(always)]
    fn dirty(self) -> bool {
        self.word & FRAME_DIRTY != 0
    }

    #[inline(always)]
    fn block_addr(self) -> u64 {
        self.word & FRAME_ADDR_MASK
    }

    /// The word a resident, clean-or-dirty frame holding `block_addr` has,
    /// ignoring the dirty bit (used for the one-compare hit check).
    #[inline(always)]
    fn match_word(block_addr: u64) -> u64 {
        block_addr | FRAME_VALID
    }

    /// Fills the frame with a block.
    #[inline(always)]
    fn fill(&mut self, block_addr: u64, dirty: bool, stamp: u64) {
        debug_assert_eq!(block_addr & !FRAME_ADDR_MASK, 0);
        self.word = block_addr | FRAME_VALID | (u64::from(dirty) << 63);
        self.stamp = stamp;
    }

    /// Invalidates the frame, returning `true` if it held a dirty block.
    #[inline(always)]
    fn invalidate(&mut self) -> bool {
        let was_dirty = self.valid() && self.dirty();
        self.word = 0;
        was_dirty
    }
}

/// Whether an access reads or writes the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load or instruction fetch.
    Read,
    /// A store (write-allocate, write-back).
    Write,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the block was resident (in an enabled way of the indexed set).
    pub hit: bool,
}

/// A block evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Block address of the evicted block.
    pub block_addr: u64,
    /// Whether the evicted block was dirty (must be written back).
    pub dirty: bool,
}

/// Effect of a resize operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResizeEffect {
    /// Blocks invalidated because their frame was disabled or their set
    /// mapping changed.
    pub invalidated: u64,
    /// Of those, blocks that were dirty and must be written back downstream.
    pub dirty_writebacks: u64,
}

impl ResizeEffect {
    /// Merges two effects (used when a hybrid resize changes both masks).
    pub fn merge(self, other: Self) -> Self {
        Self {
            invalidated: self.invalidated + other.invalidated,
            dirty_writebacks: self.dirty_writebacks + other.dirty_writebacks,
        }
    }
}

/// A set-associative, write-back, write-allocate cache with way and set
/// masking.
///
/// The cache always allocates frames for its full geometry; `enabled_ways`
/// and `enabled_sets` restrict which frames lookups and fills may use, which
/// is exactly what the way-mask and set-mask of the paper's resizable
/// organizations do.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    policy: ReplacementPolicy,
    /// The tag store as one contiguous buffer: set `s` occupies
    /// `frames[s * associativity ..][.. associativity]`.
    ///
    /// A flat buffer instead of a `Vec` of per-set `Vec`s means a single
    /// allocation at construction (a base hierarchy previously performed one
    /// per set — about five thousand) and no dependent pointer chase on the
    /// per-access path.
    frames: Vec<Frame>,
    /// Full associativity (the row stride of `frames`), as a `usize`.
    ways: usize,
    enabled_sets: u64,
    enabled_ways: u32,
    /// log2 of the block size: block addresses are `addr >> block_shift`.
    block_shift: u32,
    /// `enabled_sets - 1`: the set index is `block_addr & set_mask`.
    ///
    /// Both are maintained instead of derived per access so the access and
    /// fill paths never divide — the div/mod pair dominated the original
    /// access cost (the figure sweeps perform hundreds of millions of
    /// accesses per run).
    set_mask: u64,
    clock: u64,
    /// Per-frame aggregate-delay cost (fill latency plus delayed-hit stall
    /// cycles accrued while resident), parallel to `frames`. Allocated only
    /// when the policy weighs delay ([`ReplacementPolicy::tracks_delay`]);
    /// empty otherwise, so the LRU/FIFO/random fast paths touch nothing.
    costs: Vec<u64>,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache with LRU replacement.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid
    /// (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Result<Self, CacheConfigError> {
        Self::with_policy(config, ReplacementPolicy::Lru)
    }

    /// Creates a cache with the given replacement policy.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn with_policy(
        config: CacheConfig,
        policy: ReplacementPolicy,
    ) -> Result<Self, CacheConfigError> {
        config.validate()?;
        let ways = config.associativity as usize;
        let frame_count = config.num_sets() as usize * ways;
        let frames = vec![Frame::default(); frame_count];
        let costs = if policy.tracks_delay() {
            vec![0u64; frame_count]
        } else {
            Vec::new()
        };
        Ok(Self {
            config,
            policy,
            frames,
            ways,
            enabled_sets: config.num_sets(),
            enabled_ways: config.associativity,
            block_shift: config.block_bytes.trailing_zeros(),
            set_mask: config.num_sets() - 1,
            clock: 0,
            costs,
            stats: CacheStats::new(config.num_sets(), config.associativity),
        })
    }

    /// The static configuration of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of currently enabled sets.
    pub fn enabled_sets(&self) -> u64 {
        self.enabled_sets
    }

    /// Number of currently enabled ways.
    pub fn enabled_ways(&self) -> u32 {
        self.enabled_ways
    }

    /// Currently enabled capacity in bytes.
    pub fn enabled_bytes(&self) -> u64 {
        self.enabled_sets * u64::from(self.enabled_ways) * self.config.block_bytes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (e.g. after a warm-up period), keeping cache
    /// contents and the current geometry.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new(self.enabled_sets, self.enabled_ways);
    }

    #[inline(always)]
    fn block_addr(&self, addr: u64) -> u64 {
        addr >> self.block_shift
    }

    #[inline(always)]
    fn set_index(&self, block_addr: u64) -> usize {
        (block_addr & self.set_mask) as usize
    }

    /// The frames of set `index` (all ways, masked or not).
    #[inline(always)]
    fn row(&self, index: usize) -> &[Frame] {
        &self.frames[index * self.ways..(index + 1) * self.ways]
    }

    /// Performs a read access. Returns whether it hit; on a miss the caller
    /// is responsible for probing the next level and calling [`Self::fill`].
    #[inline]
    pub fn access_read(&mut self, addr: u64) -> AccessOutcome {
        self.access(addr, AccessKind::Read)
    }

    /// Performs a write access (write-allocate: on a miss the caller fills
    /// and then the block is marked dirty by a subsequent write, or fills
    /// with `dirty = true`).
    #[inline]
    pub fn access_write(&mut self, addr: u64) -> AccessOutcome {
        self.access(addr, AccessKind::Write)
    }

    /// Performs an access of the given kind.
    #[inline]
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessOutcome {
        self.clock += 1;
        let block_addr = self.block_addr(addr);
        let index = self.set_index(block_addr);
        let enabled_ways = self.enabled_ways as usize;
        let write = kind == AccessKind::Write;
        let clock = self.clock;
        let touch_on_hit = self.policy.touches_on_hit();
        let base = index * self.ways;
        let row = &mut self.frames[base..base + enabled_ways];
        let want = Frame::match_word(block_addr);
        let mut hit = false;
        for frame in row {
            // One masked compare covers the valid bit and the tag.
            if frame.word & !FRAME_DIRTY == want {
                if touch_on_hit {
                    frame.stamp = clock;
                }
                // `write` follows simulated data; OR-ing avoids an
                // unpredictable host branch on the hot hit path.
                frame.word |= u64::from(write) << 63;
                hit = true;
                break;
            }
        }
        self.stats.record_access(write, hit);
        AccessOutcome { hit }
    }

    /// Returns whether the block is resident without updating any state
    /// (used by tests and invariant checks).
    pub fn contains(&self, addr: u64) -> bool {
        let block_addr = self.block_addr(addr);
        let index = self.set_index(block_addr);
        let want = Frame::match_word(block_addr);
        self.row(index)[..self.enabled_ways as usize]
            .iter()
            .any(|f| f.word & !FRAME_DIRTY == want)
    }

    /// Fills the block containing `addr`, evicting a victim if necessary.
    ///
    /// `dirty` marks the freshly filled block as modified (used when a store
    /// misses and write-allocates). Equivalent to [`Cache::fill_costed`]
    /// with a zero fetch cost.
    #[inline]
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<Eviction> {
        self.fill_costed(addr, dirty, 0)
    }

    /// [`Cache::fill`] with the fetch latency the fill paid, in cycles.
    ///
    /// Under a delay-weighing policy ([`ReplacementPolicy::LruMad`]) the
    /// cost seeds the frame's aggregate-delay counter — a block that was
    /// expensive to fetch is expensive to lose — and delayed-hit stalls
    /// accrue onto it via [`Cache::note_delay`]. Other policies ignore it.
    #[inline]
    pub fn fill_costed(&mut self, addr: u64, dirty: bool, cost: u64) -> Option<Eviction> {
        self.clock += 1;
        let block_addr = self.block_addr(addr);
        let index = self.set_index(block_addr);
        let enabled_ways = self.enabled_ways as usize;
        let clock = self.clock;
        let touch_on_hit = self.policy.touches_on_hit();
        let policy = self.policy;
        let base = index * self.ways;
        let row = &mut self.frames[base..base + enabled_ways];

        // One allocation-free pass resolves the resident / invalid-frame /
        // oldest-stamp cases together: if the block is already resident (e.g.
        // filled by a racing access in the same cycle) its state is updated
        // in place, otherwise an invalid frame is preferred and the oldest
        // stamp (first occurrence on ties) is the LRU/FIFO victim.
        let mut victim_way = 0usize;
        let mut oldest_stamp = u64::MAX;
        let mut invalid_way = None;
        for (way, frame) in row.iter_mut().enumerate() {
            if frame.valid() {
                if frame.block_addr() == block_addr {
                    if touch_on_hit {
                        frame.stamp = clock;
                    }
                    frame.word |= u64::from(dirty) << 63;
                    return None;
                }
                if frame.stamp < oldest_stamp {
                    oldest_stamp = frame.stamp;
                    victim_way = way;
                }
            } else if invalid_way.is_none() {
                invalid_way = Some(way);
            }
        }
        let victim_way = match invalid_way {
            Some(way) => way,
            None => match policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => victim_way,
                ReplacementPolicy::Random => ReplacementPolicy::random_index(clock, row.len()),
                ReplacementPolicy::LruMad => {
                    // Minimum aggregate delay: evict the resident block whose
                    // accrued fetch-plus-stall cost is lowest; the LRU stamp
                    // breaks ties (equal-cost sets degrade to plain LRU).
                    let row_costs = &self.costs[base..base + enabled_ways];
                    let mut best = victim_way;
                    let mut best_key = (u64::MAX, u64::MAX);
                    for (way, frame) in row.iter().enumerate() {
                        let key = (row_costs[way], frame.stamp);
                        if key < best_key {
                            best_key = key;
                            best = way;
                        }
                    }
                    best
                }
            },
        };

        let victim = &mut row[victim_way];
        let eviction = if victim.valid() {
            Some(Eviction {
                block_addr: victim.block_addr(),
                dirty: victim.dirty(),
            })
        } else {
            None
        };
        victim.fill(block_addr, dirty, clock);
        if !self.costs.is_empty() {
            self.costs[base + victim_way] = cost;
        }
        self.stats.record_fill();
        if let Some(e) = &eviction {
            if e.dirty {
                self.stats.writebacks += 1;
            }
        }
        eviction
    }

    /// Accrues `cycles` of delayed-hit stall onto the resident block
    /// containing `addr`, if present.
    ///
    /// The engines call this when a secondary miss merges into an in-flight
    /// fill: the stall the merge pays is aggregate delay attributable to the
    /// block, which is exactly what the LRU-MAD victim scan weighs. A no-op
    /// under policies that do not track delay.
    pub fn note_delay(&mut self, addr: u64, cycles: u64) {
        if self.costs.is_empty() {
            return;
        }
        let block_addr = self.block_addr(addr);
        let index = self.set_index(block_addr);
        let base = index * self.ways;
        let want = Frame::match_word(block_addr);
        let enabled = self.enabled_ways as usize;
        for (way, frame) in self.frames[base..base + enabled].iter().enumerate() {
            if frame.word & !FRAME_DIRTY == want {
                self.costs[base + way] = self.costs[base + way].saturating_add(cycles);
                return;
            }
        }
    }

    /// Invalidates the block containing `addr` if present, returning whether
    /// it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let block_addr = self.block_addr(addr);
        let index = self.set_index(block_addr);
        let enabled_ways = self.enabled_ways as usize;
        let base = index * self.ways;
        let want = Frame::match_word(block_addr);
        self.frames[base..base + enabled_ways]
            .iter_mut()
            .find(|f| f.word & !FRAME_DIRTY == want)
            .map(|f| f.invalidate())
            .unwrap_or(false)
    }

    /// Number of valid blocks in enabled frames.
    pub fn resident_blocks(&self) -> u64 {
        let enabled_ways = self.enabled_ways as usize;
        (0..self.enabled_sets as usize)
            .map(|index| {
                self.row(index)[..enabled_ways]
                    .iter()
                    .filter(|f| f.valid())
                    .count() as u64
            })
            .sum()
    }

    /// Changes the number of enabled ways (the selective-ways mechanism).
    ///
    /// Disabling ways flushes the blocks they hold (the frames lose power);
    /// enabling ways needs no flush because the set mapping of the remaining
    /// blocks does not change.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds the configured associativity.
    pub fn set_enabled_ways(&mut self, ways: u32) -> ResizeEffect {
        assert!(
            ways >= 1 && ways <= self.config.associativity,
            "enabled ways {ways} outside 1..={}",
            self.config.associativity
        );
        if ways == self.enabled_ways {
            return ResizeEffect::default();
        }
        let mut effect = ResizeEffect::default();
        if ways < self.enabled_ways {
            let lo = ways as usize;
            let hi = self.enabled_ways as usize;
            for set in self.frames.chunks_exact_mut(self.ways) {
                for frame in &mut set[lo..hi] {
                    if frame.valid() {
                        effect.invalidated += 1;
                        if frame.invalidate() {
                            effect.dirty_writebacks += 1;
                        }
                    }
                }
            }
        }
        self.enabled_ways = ways;
        self.note_resize(effect);
        effect
    }

    /// Changes the number of enabled sets (the selective-sets mechanism).
    ///
    /// Downsizing flushes blocks held in the disabled sets. Upsizing flushes
    /// blocks whose set mapping changes under the larger index (the paper's
    /// requirement to flush "all blocks, clean or modified, for which
    /// set-mappings change upon enabling subarrays").
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, is below one subarray per way,
    /// or exceeds the configured number of sets.
    pub fn set_enabled_sets(&mut self, sets: u64) -> ResizeEffect {
        assert!(
            sets.is_power_of_two(),
            "enabled sets {sets} must be a power of two"
        );
        assert!(
            sets >= self.config.min_sets() && sets <= self.config.num_sets(),
            "enabled sets {sets} outside {}..={}",
            self.config.min_sets(),
            self.config.num_sets()
        );
        if sets == self.enabled_sets {
            return ResizeEffect::default();
        }
        let mut effect = ResizeEffect::default();
        if sets < self.enabled_sets {
            // Downsize: flush every block residing in a set that is being
            // disabled. Blocks in the surviving sets keep their mapping
            // because `addr % new_sets == addr % old_sets` whenever
            // `addr % old_sets < new_sets` for power-of-two set counts.
            let lo = sets as usize * self.ways;
            let hi = self.enabled_sets as usize * self.ways;
            for frame in &mut self.frames[lo..hi] {
                if frame.valid() {
                    effect.invalidated += 1;
                    if frame.invalidate() {
                        effect.dirty_writebacks += 1;
                    }
                }
            }
        } else {
            // Upsize: blocks whose index under the larger set count differs
            // from the set they currently occupy must be flushed.
            let new_mask = sets - 1;
            let enabled = self.enabled_sets as usize;
            for (index, set) in self
                .frames
                .chunks_exact_mut(self.ways)
                .take(enabled)
                .enumerate()
            {
                for frame in set {
                    if frame.valid() && (frame.block_addr() & new_mask) as usize != index {
                        effect.invalidated += 1;
                        if frame.invalidate() {
                            effect.dirty_writebacks += 1;
                        }
                    }
                }
            }
        }
        self.enabled_sets = sets;
        self.set_mask = sets - 1;
        self.note_resize(effect);
        effect
    }

    /// Applies a combined geometry change, adjusting ways first when
    /// shrinking and sets first when growing (the order only affects which
    /// flush bucket blocks land in, not correctness).
    pub fn resize(&mut self, sets: u64, ways: u32) -> ResizeEffect {
        let first = self.set_enabled_ways(ways);
        let second = self.set_enabled_sets(sets);
        first.merge(second)
    }

    fn note_resize(&mut self, effect: ResizeEffect) {
        self.stats.resize_invalidations += effect.invalidated;
        self.stats.resize_writebacks += effect.dirty_writebacks;
        self.stats.open_slice(self.enabled_sets, self.enabled_ways);
    }

    /// Flushes the entire cache (writes back dirty blocks, invalidates all),
    /// e.g. at a context switch. Returns the number of dirty blocks.
    pub fn flush_all(&mut self) -> u64 {
        let mut dirty = 0;
        for frame in &mut self.frames {
            if frame.valid() && frame.invalidate() {
                dirty += 1;
            }
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(size_kib: u64, assoc: u32) -> Cache {
        Cache::new(CacheConfig::l1_default(size_kib * 1024, assoc)).unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache(32, 2);
        assert!(!c.access_read(0x1000).hit);
        c.fill(0x1000, false);
        assert!(c.access_read(0x1000).hit);
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn same_block_different_words_hit() {
        let mut c = cache(32, 2);
        c.fill(0x1000, false);
        assert!(c.access_read(0x1008).hit);
        assert!(c.access_read(0x101F).hit);
        assert!(!c.access_read(0x1020).hit, "next block is separate");
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_it() {
        let mut c = cache(32, 2);
        c.fill(0x1000, false);
        assert!(c.access_write(0x1000).hit);
        // Force eviction of 0x1000 by filling two conflicting blocks.
        let conflict1 = 0x1000 + 16 * 1024;
        let conflict2 = 0x1000 + 32 * 1024;
        c.fill(conflict1, false);
        let evicted = c.fill(conflict2, false).expect("set is full, must evict");
        assert_eq!(evicted.block_addr, 0x1000 / 32);
        assert!(evicted.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = cache(32, 2);
        let a = 0x1000u64;
        let b = a + 16 * 1024;
        let d = a + 32 * 1024;
        c.fill(a, false);
        c.fill(b, false);
        // Touch `a` so `b` becomes LRU.
        assert!(c.access_read(a).hit);
        let evicted = c.fill(d, false).unwrap();
        assert_eq!(evicted.block_addr, b / 32);
        assert!(c.contains(a));
        assert!(!c.contains(b));
    }

    #[test]
    fn fill_of_resident_block_does_not_evict() {
        let mut c = cache(32, 2);
        c.fill(0x1000, false);
        assert!(c.fill(0x1000, true).is_none());
        assert_eq!(c.stats().fills, 1, "second fill is a no-op");
    }

    #[test]
    fn way_downsize_flushes_disabled_ways() {
        let mut c = cache(32, 4);
        // Fill all four ways of one set.
        let base = 0x2000u64;
        let way_span = 8 * 1024;
        for i in 0..4 {
            c.fill(base + i * way_span, i % 2 == 0);
        }
        assert_eq!(c.resident_blocks(), 4);
        let effect = c.set_enabled_ways(2);
        assert_eq!(effect.invalidated, 2);
        assert!(effect.dirty_writebacks >= 1);
        assert_eq!(c.enabled_ways(), 2);
        assert_eq!(c.enabled_bytes(), 16 * 1024);
        assert_eq!(c.resident_blocks(), 2);
    }

    #[test]
    fn way_upsize_needs_no_flush() {
        let mut c = cache(32, 4);
        c.set_enabled_ways(2);
        c.fill(0x3000, true);
        let effect = c.set_enabled_ways(4);
        assert_eq!(effect, ResizeEffect::default());
        assert!(c.contains(0x3000), "blocks survive a way upsize");
    }

    #[test]
    fn set_downsize_keeps_low_sets_and_flushes_high_sets() {
        let mut c = cache(32, 2);
        // Block mapping to set 0 and one mapping to a high set.
        let low = 0x0u64;
        let high = 500 * 32; // set 500 of 512
        c.fill(low, false);
        c.fill(high, true);
        let effect = c.set_enabled_sets(256);
        assert_eq!(effect.invalidated, 1);
        assert_eq!(effect.dirty_writebacks, 1);
        assert!(c.contains(low), "low-set blocks keep their mapping");
        assert!(!c.contains(high));
        assert_eq!(c.enabled_bytes(), 16 * 1024);
    }

    #[test]
    fn set_upsize_flushes_remapped_blocks() {
        let mut c = cache(32, 2);
        c.set_enabled_sets(256);
        // Two blocks that map to set 1 with 256 sets but to different sets
        // with 512 sets.
        let a = 32u64; // block 1 -> set 1 under both mappings
        let b = 32 + 256 * 32; // block 257 -> set 1 under 256 sets, set 257 under 512 sets
        c.fill(a, false);
        c.fill(b, false);
        assert!(c.contains(a) && c.contains(b));
        let effect = c.set_enabled_sets(512);
        assert_eq!(effect.invalidated, 1, "only the remapped block is flushed");
        assert!(c.contains(a));
        assert!(!c.contains(b));
    }

    #[test]
    fn masked_sets_redirect_indexing() {
        let mut c = cache(32, 2);
        c.set_enabled_sets(32); // 2 KiB: the minimum for 2-way with 1K subarrays
        assert_eq!(c.enabled_bytes(), 2 * 1024);
        // Two blocks 32 sets apart now collide in the same set.
        let a = 0u64;
        let b = 32 * 32;
        let d = 2 * 32 * 32;
        c.fill(a, false);
        c.fill(b, false);
        let evicted = c.fill(d, false);
        assert!(evicted.is_some(), "three aliasing blocks overflow 2 ways");
    }

    #[test]
    fn resize_combined_changes_both_dimensions() {
        let mut c = cache(32, 4);
        let effect = c.resize(128, 3);
        assert_eq!(c.enabled_sets(), 128);
        assert_eq!(c.enabled_ways(), 3);
        assert_eq!(c.enabled_bytes(), 12 * 1024);
        assert_eq!(
            effect,
            ResizeEffect::default(),
            "empty cache flushes nothing"
        );
        assert_eq!(c.stats().resizes, 2);
    }

    #[test]
    fn resize_noop_does_not_open_slice() {
        let mut c = cache(32, 2);
        let slices_before = c.stats().slices.len();
        c.set_enabled_ways(2);
        c.set_enabled_sets(512);
        assert_eq!(c.stats().slices.len(), slices_before);
        assert_eq!(c.stats().resizes, 0);
    }

    #[test]
    #[should_panic(expected = "enabled ways")]
    fn zero_ways_panics() {
        cache(32, 2).set_enabled_ways(0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        cache(32, 2).set_enabled_sets(300);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn too_few_sets_panics() {
        cache(32, 2).set_enabled_sets(16); // below one 1K subarray per way
    }

    #[test]
    fn flush_all_counts_dirty() {
        let mut c = cache(32, 2);
        c.fill(0x0, true);
        c.fill(0x40, false);
        assert_eq!(c.flush_all(), 1);
        assert_eq!(c.resident_blocks(), 0);
    }

    #[test]
    fn invalidate_single_block() {
        let mut c = cache(32, 2);
        c.fill(0x80, true);
        assert!(c.invalidate(0x80));
        assert!(!c.invalidate(0x80), "already gone");
        assert!(!c.contains(0x80));
    }

    fn mad_cache(size_kib: u64, assoc: u32) -> Cache {
        Cache::with_policy(
            CacheConfig::l1_default(size_kib * 1024, assoc),
            ReplacementPolicy::LruMad,
        )
        .unwrap()
    }

    #[test]
    fn lru_mad_evicts_the_cheapest_block() {
        let mut c = mad_cache(32, 2);
        let a = 0x1000u64;
        let b = a + 16 * 1024;
        let d = a + 32 * 1024;
        // `a` was expensive to fetch (memory), `b` cheap (L2): MAD keeps `a`
        // even though `a` is the least recently used.
        c.fill_costed(a, false, 113);
        c.fill_costed(b, false, 13);
        let evicted = c.fill_costed(d, false, 113).unwrap();
        assert_eq!(evicted.block_addr, b / 32, "cheapest block is the victim");
        assert!(c.contains(a));
        assert!(!c.contains(b));
    }

    #[test]
    fn lru_mad_note_delay_protects_a_block() {
        let mut c = mad_cache(32, 2);
        let a = 0x1000u64;
        let b = a + 16 * 1024;
        let d = a + 32 * 1024;
        c.fill_costed(a, false, 13);
        c.fill_costed(b, false, 13);
        // Equal costs tie-break by LRU stamp (a is older), but delayed-hit
        // stall accrued on `a` makes `b` the cheaper victim.
        c.note_delay(a, 40);
        let evicted = c.fill_costed(d, false, 113).unwrap();
        assert_eq!(evicted.block_addr, b / 32);
        assert!(c.contains(a), "delay-accruing block survives");
    }

    #[test]
    fn lru_mad_with_equal_costs_degrades_to_lru() {
        let mut c = mad_cache(32, 2);
        let a = 0x1000u64;
        let b = a + 16 * 1024;
        let d = a + 32 * 1024;
        c.fill_costed(a, false, 13);
        c.fill_costed(b, false, 13);
        assert!(c.access_read(a).hit, "touch refreshes a's stamp");
        let evicted = c.fill_costed(d, false, 13).unwrap();
        assert_eq!(evicted.block_addr, b / 32, "ties evict the LRU block");
    }

    #[test]
    fn note_delay_is_a_noop_without_a_delay_policy() {
        let mut c = cache(32, 2);
        c.fill(0x1000, false);
        c.note_delay(0x1000, 100);
        c.note_delay(0x9999_0000, 5); // absent block: also a no-op
        assert!(c.contains(0x1000));
    }

    #[test]
    fn reset_stats_preserves_contents_and_geometry() {
        let mut c = cache(32, 2);
        c.set_enabled_sets(256);
        c.fill(0x100, false);
        c.access_read(0x100);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().slices.len(), 1);
        assert_eq!(c.stats().slices[0].enabled_sets, 256);
        assert!(c.contains(0x100));
    }
}
