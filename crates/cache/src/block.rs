//! Per-block tag-store state.

/// Tag-store state for one cache block frame.
///
/// The simulator stores the full block address rather than a truncated tag so
/// that the same frame state is valid under any number of enabled sets; the
/// energy model separately charges for the tag bits a real implementation
/// would need (including the selective-sets "resizing tag bits").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BlockState {
    /// Whether the frame holds a valid block.
    pub valid: bool,
    /// Whether the block has been written since it was filled.
    pub dirty: bool,
    /// Block address (byte address divided by the block size).
    pub block_addr: u64,
    /// Replacement-policy timestamp: last-use time for LRU, fill time for
    /// FIFO.
    pub stamp: u64,
}

impl BlockState {
    /// An invalid (empty) frame.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Fills the frame with a block.
    pub fn fill(&mut self, block_addr: u64, dirty: bool, stamp: u64) {
        self.valid = true;
        self.dirty = dirty;
        self.block_addr = block_addr;
        self.stamp = stamp;
    }

    /// Invalidates the frame, returning `true` if it held a dirty block.
    pub fn invalidate(&mut self) -> bool {
        let was_dirty = self.valid && self.dirty;
        self.valid = false;
        self.dirty = false;
        was_dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_invalid() {
        let b = BlockState::empty();
        assert!(!b.valid);
        assert!(!b.dirty);
    }

    #[test]
    fn fill_and_invalidate() {
        let mut b = BlockState::empty();
        b.fill(0x42, true, 7);
        assert!(b.valid && b.dirty);
        assert_eq!(b.block_addr, 0x42);
        assert_eq!(b.stamp, 7);
        assert!(b.invalidate(), "invalidating a dirty block reports dirty");
        assert!(!b.valid);
        assert!(!b.invalidate(), "second invalidate is clean");
    }

    #[test]
    fn clean_invalidate_reports_clean() {
        let mut b = BlockState::empty();
        b.fill(0x42, false, 1);
        assert!(!b.invalidate());
    }
}
