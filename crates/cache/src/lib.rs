//! Set-associative, subarray-structured, resizable cache hierarchy simulator.
//!
//! This crate is the cache substrate of the `rescache` workspace: it models
//! the L1 instruction cache, L1 data cache and unified L2 of the HPCA 2002
//! resizable-cache study, with the two *mechanisms* resizable caches rely on:
//!
//! * a **way-mask** (`enabled_ways`) that restricts lookups and fills to a
//!   subset of the associative ways (the selective-ways mechanism), and
//! * a **set-mask** (`enabled_sets`) that restricts the index to a power-of-
//!   two subset of the sets (the selective-sets mechanism), including the
//!   flush semantics the paper describes when set mappings change.
//!
//! *Which* mask values an organization offers and *when* they are applied is
//! policy, and lives in `rescache-core`.
//!
//! # Crate map
//!
//! * [`config`] — [`CacheConfig`] and derived geometry.
//! * [`replacement`] — LRU / FIFO / random replacement policies.
//! * [`cache`] — the resizable [`Cache`], its accesses and resize operations
//!   (sets are rows of one flat, packed frame buffer).
//! * [`stats`] — access and resize statistics, split per enabled geometry.
//! * [`mshr`] — miss-status holding registers for non-blocking caches.
//! * [`writeback`] — the write-back buffer.
//! * [`hierarchy`] — the two-level [`MemoryHierarchy`] with main memory.
//!
//! # Example
//!
//! ```
//! use rescache_cache::{Cache, CacheConfig};
//!
//! let mut cache = Cache::new(CacheConfig::l1_default(32 * 1024, 2)).unwrap();
//! assert!(!cache.access_read(0x1000).hit);      // cold miss
//! cache.fill(0x1000, false);
//! assert!(cache.access_read(0x1000).hit);       // now resident
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod mshr;
pub mod replacement;
pub mod stats;
pub mod writeback;

pub use cache::{AccessKind, AccessOutcome, Cache, Eviction, ResizeEffect};
pub use config::{CacheConfig, CacheConfigError};
pub use hierarchy::{
    AccessClass, AccessResult, HierarchyConfig, HierarchySnapshot, HierarchyStats, MemoryHierarchy,
};
pub use mshr::{MshrFile, MshrHit};
pub use replacement::ReplacementPolicy;
pub use stats::{CacheStats, GeometrySlice};
pub use writeback::WritebackBuffer;
