//! One cache set: a row of block frames across the associative ways.

use crate::block::BlockState;
use crate::replacement::ReplacementPolicy;

/// A cache set holding one frame per way (at full associativity).
///
/// Way masking is applied by the [`crate::Cache`]: lookups and fills only
/// consider the first `enabled_ways` frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSet {
    frames: Vec<BlockState>,
}

impl CacheSet {
    /// Creates an empty set with `ways` frames.
    pub fn new(ways: usize) -> Self {
        Self {
            frames: vec![BlockState::empty(); ways],
        }
    }

    /// Total number of frames (full associativity).
    pub fn ways(&self) -> usize {
        self.frames.len()
    }

    /// Read-only view of the frames.
    pub fn frames(&self) -> &[BlockState] {
        &self.frames
    }

    /// Mutable view of the frames (used by resize flushes).
    pub fn frames_mut(&mut self) -> &mut [BlockState] {
        &mut self.frames
    }

    /// Looks up `block_addr` among the first `enabled_ways` frames.
    /// Returns the hit way index.
    pub fn lookup(&self, block_addr: u64, enabled_ways: usize) -> Option<usize> {
        self.frames
            .iter()
            .take(enabled_ways)
            .position(|f| f.valid && f.block_addr == block_addr)
    }

    /// Marks a hit at `way`: updates the replacement stamp (for LRU) and
    /// optionally the dirty bit.
    pub fn touch(&mut self, way: usize, stamp: u64, policy: ReplacementPolicy, write: bool) {
        let frame = &mut self.frames[way];
        if policy.touches_on_hit() {
            frame.stamp = stamp;
        }
        if write {
            frame.dirty = true;
        }
    }

    /// Chooses a victim frame among the first `enabled_ways`, preferring an
    /// invalid frame.
    pub fn choose_victim(
        &self,
        enabled_ways: usize,
        policy: ReplacementPolicy,
        counter: u64,
    ) -> usize {
        if let Some(idx) = self
            .frames
            .iter()
            .take(enabled_ways)
            .position(|f| !f.valid)
        {
            return idx;
        }
        let stamps: Vec<u64> = self
            .frames
            .iter()
            .take(enabled_ways)
            .map(|f| f.stamp)
            .collect();
        policy.choose_victim(&stamps, counter)
    }

    /// Number of valid frames among the first `enabled_ways`.
    pub fn valid_count(&self, enabled_ways: usize) -> usize {
        self.frames
            .iter()
            .take(enabled_ways)
            .filter(|f| f.valid)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_respects_way_mask() {
        let mut set = CacheSet::new(4);
        set.frames_mut()[3].fill(0x10, false, 1);
        assert_eq!(set.lookup(0x10, 4), Some(3));
        assert_eq!(set.lookup(0x10, 2), None, "masked ways are invisible");
    }

    #[test]
    fn victim_prefers_invalid_frames() {
        let mut set = CacheSet::new(2);
        set.frames_mut()[0].fill(0x1, false, 10);
        assert_eq!(set.choose_victim(2, ReplacementPolicy::Lru, 0), 1);
    }

    #[test]
    fn victim_is_lru_when_full() {
        let mut set = CacheSet::new(2);
        set.frames_mut()[0].fill(0x1, false, 10);
        set.frames_mut()[1].fill(0x2, false, 4);
        assert_eq!(set.choose_victim(2, ReplacementPolicy::Lru, 0), 1);
    }

    #[test]
    fn victim_restricted_to_enabled_ways() {
        let mut set = CacheSet::new(4);
        for w in 0..4 {
            set.frames_mut()[w].fill(w as u64, false, 10 - w as u64);
        }
        // Way 3 has the oldest stamp but is disabled.
        assert_eq!(set.choose_victim(2, ReplacementPolicy::Lru, 0), 1);
    }

    #[test]
    fn touch_updates_lru_and_dirty() {
        let mut set = CacheSet::new(2);
        set.frames_mut()[0].fill(0x1, false, 1);
        set.touch(0, 99, ReplacementPolicy::Lru, true);
        assert_eq!(set.frames()[0].stamp, 99);
        assert!(set.frames()[0].dirty);
        // FIFO does not update the stamp on hits.
        set.touch(0, 150, ReplacementPolicy::Fifo, false);
        assert_eq!(set.frames()[0].stamp, 99);
    }

    #[test]
    fn valid_count_respects_mask() {
        let mut set = CacheSet::new(4);
        set.frames_mut()[0].fill(0x1, false, 1);
        set.frames_mut()[3].fill(0x2, false, 1);
        assert_eq!(set.valid_count(4), 2);
        assert_eq!(set.valid_count(2), 1);
    }
}
