//! The write-back buffer between the L1 data cache and the L2.
//!
//! Dirty victims evicted from the L1 are parked in the write-back buffer
//! (8 entries in the paper's base configuration) and drained to the L2 in the
//! background; the processor only stalls if the buffer is full when a new
//! victim arrives.

/// A fixed-capacity write-back buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritebackBuffer {
    capacity: usize,
    /// Completion cycles of in-flight writebacks.
    in_flight: Vec<u64>,
    /// Total writebacks accepted.
    accepted: u64,
    /// Number of times a writeback found the buffer full (stall events).
    full_stalls: u64,
}

impl WritebackBuffer {
    /// Creates a buffer with the given number of entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a write-back buffer needs at least one entry");
        Self {
            capacity,
            in_flight: Vec::with_capacity(capacity),
            accepted: 0,
            full_stalls: 0,
        }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of writebacks currently in flight.
    pub fn occupancy(&self) -> usize {
        self.in_flight.len()
    }

    /// Total writebacks accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of times a push had to wait for a free entry.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Retires every writeback that has completed by `cycle`.
    pub fn drain_completed(&mut self, cycle: u64) {
        self.in_flight.retain(|ready| *ready > cycle);
    }

    /// Pushes a writeback at `cycle` that will complete after `latency`
    /// cycles. Returns the number of stall cycles the processor incurs
    /// (zero unless the buffer was full, in which case it waits for the
    /// earliest in-flight writeback to retire).
    pub fn push(&mut self, cycle: u64, latency: u64) -> u64 {
        self.drain_completed(cycle);
        let mut stall = 0;
        if self.in_flight.len() >= self.capacity {
            let earliest = self
                .in_flight
                .iter()
                .copied()
                .min()
                .expect("full buffer is non-empty");
            stall = earliest.saturating_sub(cycle);
            self.full_stalls += 1;
            self.drain_completed(earliest);
        }
        self.accepted += 1;
        self.in_flight.push(cycle + stall + latency);
        stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_without_pressure_is_free() {
        let mut wb = WritebackBuffer::new(2);
        assert_eq!(wb.push(100, 12), 0);
        assert_eq!(wb.occupancy(), 1);
        assert_eq!(wb.accepted(), 1);
        assert_eq!(wb.full_stalls(), 0);
    }

    #[test]
    fn full_buffer_stalls_until_drain() {
        let mut wb = WritebackBuffer::new(1);
        assert_eq!(wb.push(0, 12), 0);
        // Buffer holds one entry completing at cycle 12; pushing at cycle 5
        // must wait 7 cycles.
        assert_eq!(wb.push(5, 12), 7);
        assert_eq!(wb.full_stalls(), 1);
    }

    #[test]
    fn completed_entries_drain_automatically() {
        let mut wb = WritebackBuffer::new(1);
        wb.push(0, 12);
        assert_eq!(wb.push(20, 12), 0, "first writeback already completed");
        assert_eq!(wb.occupancy(), 1);
    }

    #[test]
    fn capacity_accessor() {
        assert_eq!(WritebackBuffer::new(8).capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = WritebackBuffer::new(0);
    }
}
