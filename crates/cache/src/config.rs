//! Cache configuration and derived geometry.

use std::error::Error;
use std::fmt;

/// Static configuration of one cache level.
///
/// Sizes are in bytes. The cache is organised as `associativity` ways, each
/// split into subarrays of `subarray_bytes` (the resizing granule of the
/// paper: enabling/disabling happens in whole subarrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Number of associative ways.
    pub associativity: u32,
    /// Cache block (line) size in bytes.
    pub block_bytes: u64,
    /// Subarray size in bytes (resizing granule per way).
    pub subarray_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

/// Errors returned when validating a [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheConfigError {
    /// A size parameter was zero or not a power of two.
    NotPowerOfTwo {
        /// Name of the offending parameter.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// The capacity is not divisible into the requested ways and blocks.
    Indivisible {
        /// Human-readable description of the divisibility violation.
        detail: String,
    },
    /// The subarray is larger than one way.
    SubarrayTooLarge {
        /// Requested subarray size in bytes.
        subarray_bytes: u64,
        /// Size of one way in bytes.
        way_bytes: u64,
    },
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a non-zero power of two, got {value}")
            }
            Self::Indivisible { detail } => write!(f, "invalid cache geometry: {detail}"),
            Self::SubarrayTooLarge {
                subarray_bytes,
                way_bytes,
            } => write!(
                f,
                "subarray of {subarray_bytes} bytes exceeds way size of {way_bytes} bytes"
            ),
        }
    }
}

impl Error for CacheConfigError {}

impl CacheConfig {
    /// The paper's L1 defaults: 32-byte blocks, 1 KiB subarrays, 1-cycle hit.
    pub fn l1_default(size_bytes: u64, associativity: u32) -> Self {
        Self {
            size_bytes,
            associativity,
            block_bytes: 32,
            subarray_bytes: 1024,
            hit_latency: 1,
        }
    }

    /// The paper's unified L2: 512 KiB, 4-way, 12-cycle access.
    pub fn l2_default() -> Self {
        Self {
            size_bytes: 512 * 1024,
            associativity: 4,
            block_bytes: 32,
            subarray_bytes: 4096,
            hit_latency: 12,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheConfigError`] if any size is zero or not a power of
    /// two, the capacity does not divide evenly into ways and blocks, or the
    /// subarray exceeds a way.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        let pow2 = |field: &'static str, value: u64| {
            if value == 0 || !value.is_power_of_two() {
                Err(CacheConfigError::NotPowerOfTwo { field, value })
            } else {
                Ok(())
            }
        };
        pow2("size_bytes", self.size_bytes)?;
        pow2("block_bytes", self.block_bytes)?;
        pow2("subarray_bytes", self.subarray_bytes)?;
        if self.associativity == 0 {
            return Err(CacheConfigError::NotPowerOfTwo {
                field: "associativity",
                value: 0,
            });
        }
        let way_bytes = self.size_bytes / u64::from(self.associativity);
        if way_bytes * u64::from(self.associativity) != self.size_bytes {
            return Err(CacheConfigError::Indivisible {
                detail: format!(
                    "size {} not divisible by associativity {}",
                    self.size_bytes, self.associativity
                ),
            });
        }
        if !way_bytes.is_multiple_of(self.block_bytes) || way_bytes < self.block_bytes {
            return Err(CacheConfigError::Indivisible {
                detail: format!(
                    "way size {way_bytes} not divisible by block size {}",
                    self.block_bytes
                ),
            });
        }
        let sets = way_bytes / self.block_bytes;
        if !sets.is_power_of_two() {
            return Err(CacheConfigError::Indivisible {
                detail: format!("number of sets {sets} is not a power of two"),
            });
        }
        if self.subarray_bytes > way_bytes {
            return Err(CacheConfigError::SubarrayTooLarge {
                subarray_bytes: self.subarray_bytes,
                way_bytes,
            });
        }
        Ok(())
    }

    /// Size in bytes of one way.
    pub fn way_bytes(&self) -> u64 {
        self.size_bytes / u64::from(self.associativity)
    }

    /// Total number of sets at full size.
    pub fn num_sets(&self) -> u64 {
        self.way_bytes() / self.block_bytes
    }

    /// Number of sets contained in one subarray of one way.
    pub fn sets_per_subarray(&self) -> u64 {
        (self.subarray_bytes / self.block_bytes).max(1)
    }

    /// Number of subarrays per way.
    pub fn subarrays_per_way(&self) -> u64 {
        (self.num_sets() / self.sets_per_subarray()).max(1)
    }

    /// Total number of data subarrays at full size.
    pub fn total_subarrays(&self) -> u64 {
        self.subarrays_per_way() * u64::from(self.associativity)
    }

    /// Smallest number of sets reachable by set resizing: one subarray per
    /// way.
    pub fn min_sets(&self) -> u64 {
        self.sets_per_subarray().min(self.num_sets())
    }

    /// Number of index bits at full size.
    pub fn index_bits(&self) -> u32 {
        self.num_sets().trailing_zeros()
    }

    /// Number of extra tag bits a selective-sets organization must keep to
    /// support its smallest size (the paper's "resizing tag bits").
    pub fn resizing_tag_bits(&self) -> u32 {
        self.num_sets().trailing_zeros() - self.min_sets().trailing_zeros()
    }

    /// Number of tag bits for a 48-bit physical address at `enabled_sets`.
    pub fn tag_bits(&self, enabled_sets: u64) -> u32 {
        let offset_bits = self.block_bytes.trailing_zeros();
        let index_bits = enabled_sets.max(1).trailing_zeros();
        48u32.saturating_sub(offset_bits + index_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_l1_geometry() {
        let c = CacheConfig::l1_default(32 * 1024, 2);
        c.validate().unwrap();
        assert_eq!(c.way_bytes(), 16 * 1024);
        assert_eq!(c.num_sets(), 512);
        assert_eq!(c.sets_per_subarray(), 32);
        assert_eq!(c.subarrays_per_way(), 16);
        assert_eq!(c.total_subarrays(), 32);
        assert_eq!(c.min_sets(), 32);
        assert_eq!(c.index_bits(), 9);
        assert_eq!(c.resizing_tag_bits(), 4);
    }

    #[test]
    fn four_way_l1_geometry() {
        let c = CacheConfig::l1_default(32 * 1024, 4);
        c.validate().unwrap();
        assert_eq!(c.way_bytes(), 8 * 1024);
        assert_eq!(c.num_sets(), 256);
        assert_eq!(c.total_subarrays(), 32);
        assert_eq!(c.min_sets(), 32);
    }

    #[test]
    fn sixteen_way_l1_geometry() {
        let c = CacheConfig::l1_default(32 * 1024, 16);
        c.validate().unwrap();
        assert_eq!(c.way_bytes(), 2 * 1024);
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.subarrays_per_way(), 2);
    }

    #[test]
    fn l2_geometry() {
        let c = CacheConfig::l2_default();
        c.validate().unwrap();
        assert_eq!(c.num_sets(), 4096);
        assert_eq!(c.hit_latency, 12);
    }

    #[test]
    fn rejects_non_power_of_two_size() {
        let mut c = CacheConfig::l1_default(33 * 1024, 2);
        assert!(matches!(
            c.validate(),
            Err(CacheConfigError::NotPowerOfTwo {
                field: "size_bytes",
                ..
            })
        ));
        c = CacheConfig::l1_default(0, 2);
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_zero_associativity() {
        let c = CacheConfig::l1_default(32 * 1024, 0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_subarray_larger_than_way() {
        let mut c = CacheConfig::l1_default(4 * 1024, 4);
        c.subarray_bytes = 2048;
        assert!(matches!(
            c.validate(),
            Err(CacheConfigError::SubarrayTooLarge { .. })
        ));
    }

    #[test]
    fn rejects_non_power_of_two_sets() {
        // 3-way of a power-of-two size gives a non-integral way size.
        let c = CacheConfig {
            size_bytes: 32 * 1024,
            associativity: 3,
            block_bytes: 32,
            subarray_bytes: 1024,
            hit_latency: 1,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn tag_bits_grow_as_sets_shrink() {
        let c = CacheConfig::l1_default(32 * 1024, 2);
        assert_eq!(c.tag_bits(512) + 4, c.tag_bits(32));
    }

    #[test]
    fn error_display_is_informative() {
        let err = CacheConfigError::NotPowerOfTwo {
            field: "size_bytes",
            value: 3,
        };
        assert!(err.to_string().contains("size_bytes"));
        let err = CacheConfigError::SubarrayTooLarge {
            subarray_bytes: 4096,
            way_bytes: 1024,
        };
        assert!(err.to_string().contains("4096"));
    }
}
