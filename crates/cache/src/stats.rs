//! Cache access and resize statistics.

/// Accesses accumulated while a particular resized geometry was active.
///
/// The energy model charges each access according to the geometry that was
/// enabled when it happened, so the statistics are sliced per geometry; a new
/// slice is opened whenever the cache is resized to a geometry it is not
/// already in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometrySlice {
    /// Number of enabled sets while this slice was active.
    pub enabled_sets: u64,
    /// Number of enabled ways while this slice was active.
    pub enabled_ways: u32,
    /// Accesses (reads + writes) performed in this slice.
    pub accesses: u64,
    /// Fills performed in this slice (each fill reads a block from the next
    /// level and writes it into the array).
    pub fills: u64,
}

impl GeometrySlice {
    /// Enabled capacity in bytes for a cache with the given block size.
    pub fn enabled_bytes(&self, block_bytes: u64) -> u64 {
        self.enabled_sets * u64::from(self.enabled_ways) * block_bytes
    }
}

/// Statistics for one cache.
///
/// Reads and misses are derived ([`CacheStats::reads`],
/// [`CacheStats::misses`]) rather than stored: the access path is the
/// hottest loop of the simulator, and every counter it maintains is a
/// read-modify-write it pays per simulated access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Write accesses.
    pub writes: u64,
    /// Hits.
    pub hits: u64,
    /// Block fills (allocations) performed.
    pub fills: u64,
    /// Dirty blocks evicted by replacement (sent to the next level).
    pub writebacks: u64,
    /// Dirty blocks written back because a resize flushed them.
    pub resize_writebacks: u64,
    /// Blocks (clean or dirty) invalidated by a resize.
    pub resize_invalidations: u64,
    /// Number of resize operations that changed the geometry.
    pub resizes: u64,
    /// Per-geometry access slices, in activation order.
    pub slices: Vec<GeometrySlice>,
}

impl CacheStats {
    /// Creates empty statistics with an initial geometry slice.
    pub fn new(enabled_sets: u64, enabled_ways: u32) -> Self {
        Self {
            slices: vec![GeometrySlice {
                enabled_sets,
                enabled_ways,
                accesses: 0,
                fills: 0,
            }],
            ..Self::default()
        }
    }

    /// Read accesses (derived: accesses minus writes).
    pub fn reads(&self) -> u64 {
        self.accesses - self.writes
    }

    /// Misses (derived: accesses minus hits).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio over all accesses (0 if there were none).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Records an access in the current geometry slice.
    ///
    /// The counters are updated with unconditional arithmetic rather than
    /// branches: `write` and `hit` follow the simulated program's data, so
    /// branching on them is unpredictable for the host — and this runs once
    /// per simulated cache access.
    #[inline(always)]
    pub fn record_access(&mut self, write: bool, hit: bool) {
        self.accesses += 1;
        self.writes += u64::from(write);
        self.hits += u64::from(hit);
        if let Some(slice) = self.slices.last_mut() {
            slice.accesses += 1;
        }
    }

    /// Records a fill in the current geometry slice.
    #[inline]
    pub fn record_fill(&mut self) {
        self.fills += 1;
        if let Some(slice) = self.slices.last_mut() {
            slice.fills += 1;
        }
    }

    /// Opens a new geometry slice (called by the cache on resize).
    pub fn open_slice(&mut self, enabled_sets: u64, enabled_ways: u32) {
        self.resizes += 1;
        self.slices.push(GeometrySlice {
            enabled_sets,
            enabled_ways,
            accesses: 0,
            fills: 0,
        });
    }

    /// Access-weighted mean enabled capacity in bytes.
    ///
    /// This is the "average cache size" metric the paper's Figures 5, 7, 8
    /// and 9 report (there expressed as a *reduction* relative to the full
    /// size).
    pub fn mean_enabled_bytes(&self, block_bytes: u64) -> f64 {
        let total: u64 = self.slices.iter().map(|s| s.accesses).sum();
        if total == 0 {
            return self
                .slices
                .last()
                .map(|s| s.enabled_bytes(block_bytes) as f64)
                .unwrap_or(0.0);
        }
        self.slices
            .iter()
            .map(|s| s.enabled_bytes(block_bytes) as f64 * s.accesses as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero_accesses() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn record_access_updates_counters_and_slice() {
        let mut s = CacheStats::new(512, 2);
        s.record_access(false, true);
        s.record_access(true, false);
        assert_eq!(s.accesses, 2);
        assert_eq!(s.reads(), 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.slices[0].accesses, 2);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn open_slice_partitions_accesses() {
        let mut s = CacheStats::new(512, 2);
        s.record_access(false, true);
        s.open_slice(256, 2);
        s.record_access(false, true);
        s.record_access(false, true);
        assert_eq!(s.resizes, 1);
        assert_eq!(s.slices.len(), 2);
        assert_eq!(s.slices[0].accesses, 1);
        assert_eq!(s.slices[1].accesses, 2);
    }

    #[test]
    fn mean_enabled_bytes_is_access_weighted() {
        let mut s = CacheStats::new(512, 2); // 32 KiB with 32-byte blocks
        s.record_access(false, true);
        s.open_slice(256, 2); // 16 KiB
        s.record_access(false, true);
        s.record_access(false, true);
        s.record_access(false, true);
        let mean = s.mean_enabled_bytes(32);
        let expected = (32.0 * 1024.0 + 3.0 * 16.0 * 1024.0) / 4.0;
        assert!((mean - expected).abs() < 1e-9);
    }

    #[test]
    fn mean_enabled_bytes_without_accesses_uses_current_geometry() {
        let s = CacheStats::new(512, 2);
        assert_eq!(s.mean_enabled_bytes(32), 32.0 * 1024.0);
    }

    #[test]
    fn geometry_slice_bytes() {
        let slice = GeometrySlice {
            enabled_sets: 128,
            enabled_ways: 4,
            accesses: 0,
            fills: 0,
        };
        assert_eq!(slice.enabled_bytes(32), 128 * 4 * 32);
    }
}
