//! Miss-status holding registers (MSHRs) for non-blocking caches.
//!
//! The out-of-order configuration of the paper uses a non-blocking d-cache:
//! multiple misses may be outstanding, and secondary misses to a block that
//! is already being fetched merge into the existing entry. The MSHR file
//! bounds that concurrency (8 entries in the paper's base configuration).

/// One outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MshrEntry {
    block_addr: u64,
    /// Cycle the primary miss was issued (when the fill left for the next
    /// level) — lets a merging secondary miss price itself at the fill's
    /// *remaining* latency, the delayed-hit cost model.
    issue_cycle: u64,
    ready_cycle: u64,
}

/// An outstanding miss found by [`MshrFile::lookup_retire`]: a secondary
/// miss to this block is a *delayed hit* that completes at `ready_cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrHit {
    /// Cycle the covering primary miss was issued.
    pub issue_cycle: u64,
    /// Cycle the in-flight fill completes.
    pub ready_cycle: u64,
}

/// A file of miss-status holding registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<MshrEntry>,
}

impl MshrFile {
    /// Creates an MSHR file with the given number of entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one entry");
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of entries the file can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently outstanding misses.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no more primary misses can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Returns the completion cycle of an outstanding miss covering
    /// `block_addr`, if any (a secondary miss merges into it).
    #[inline]
    pub fn lookup(&self, block_addr: u64) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.block_addr == block_addr)
            .map(|e| e.ready_cycle)
    }

    /// Looks up an outstanding miss covering `block_addr` at `cycle`,
    /// retiring every entry whose fill has completed in the same pass.
    ///
    /// The engines used to pay two linear scans per access — a
    /// `retire_completed` sweep and then a `lookup` over the survivors —
    /// and, worse, a caller that looked up *before* retiring could see a
    /// full file of already-expired entries and take the structural-hazard
    /// stall path for free capacity. Fusing the two makes the single scan
    /// both the retirement and the merge check, so capacity is always
    /// current by construction.
    #[inline]
    pub fn lookup_retire(&mut self, block_addr: u64, cycle: u64) -> Option<MshrHit> {
        let mut found = None;
        self.entries.retain(|e| {
            if e.ready_cycle <= cycle {
                return false;
            }
            if e.block_addr == block_addr {
                found = Some(MshrHit {
                    issue_cycle: e.issue_cycle,
                    ready_cycle: e.ready_cycle,
                });
            }
            true
        });
        found
    }

    /// Allocates an entry for a primary miss issued at `issue_cycle` and
    /// completing at `ready_cycle`.
    ///
    /// Returns `false` (and allocates nothing) if the file is full.
    pub fn allocate(&mut self, block_addr: u64, issue_cycle: u64, ready_cycle: u64) -> bool {
        if self.is_full() {
            return false;
        }
        self.entries.push(MshrEntry {
            block_addr,
            issue_cycle,
            ready_cycle,
        });
        true
    }

    /// Releases every entry whose miss has completed by `cycle`.
    #[inline]
    pub fn retire_completed(&mut self, cycle: u64) {
        if !self.entries.is_empty() {
            self.entries.retain(|e| e.ready_cycle > cycle);
        }
    }

    /// The earliest cycle at which any outstanding miss completes, if any.
    pub fn earliest_completion(&self) -> Option<u64> {
        self.entries.iter().map(|e| e.ready_cycle).min()
    }

    /// Removes all entries (e.g. on a pipeline flush in simplified models).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(1, 2, 10));
        assert!(m.allocate(2, 4, 12));
        assert!(m.is_full());
        assert!(!m.allocate(3, 6, 14), "full file rejects allocation");
        assert_eq!(m.outstanding(), 2);
        assert_eq!(m.capacity(), 2);
    }

    #[test]
    fn secondary_miss_merges() {
        let mut m = MshrFile::new(4);
        m.allocate(7, 30, 42);
        assert_eq!(m.lookup(7), Some(42));
        assert_eq!(m.lookup(8), None);
    }

    #[test]
    fn retire_frees_entries() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 0, 10);
        m.allocate(2, 0, 20);
        m.retire_completed(15);
        assert_eq!(m.outstanding(), 1);
        assert_eq!(m.lookup(1), None);
        assert_eq!(m.lookup(2), Some(20));
        assert_eq!(m.earliest_completion(), Some(20));
    }

    #[test]
    fn lookup_retire_is_one_pass() {
        let mut m = MshrFile::new(4);
        m.allocate(1, 0, 10);
        m.allocate(2, 5, 20);
        // At cycle 15 entry 1 has completed: the fused pass retires it while
        // finding the still-outstanding entry 2 with its issue timestamp.
        let hit = m.lookup_retire(2, 15).expect("entry 2 outstanding");
        assert_eq!(
            hit,
            MshrHit {
                issue_cycle: 5,
                ready_cycle: 20
            }
        );
        assert_eq!(m.outstanding(), 1, "completed entry retired in the pass");
        assert_eq!(m.lookup(1), None);
    }

    #[test]
    fn full_file_of_expired_entries_accepts_a_new_primary_miss() {
        // The retire-ordering hazard the fused pass removes: a full file
        // whose entries have all completed must not stall a new miss behind
        // a separate retire call.
        let mut m = MshrFile::new(2);
        m.allocate(1, 0, 10);
        m.allocate(2, 0, 12);
        assert!(m.is_full());
        assert_eq!(
            m.lookup_retire(3, 20),
            None,
            "block 3 has no outstanding fill"
        );
        assert!(
            !m.is_full(),
            "the lookup itself retired the expired entries"
        );
        assert!(m.allocate(3, 20, 133), "freed capacity accepts the miss");
        assert_eq!(m.outstanding(), 1);
    }

    #[test]
    fn clear_empties_file() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 0, 10);
        m.clear();
        assert_eq!(m.outstanding(), 0);
        assert_eq!(m.earliest_completion(), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
