//! Miss-status holding registers (MSHRs) for non-blocking caches.
//!
//! The out-of-order configuration of the paper uses a non-blocking d-cache:
//! multiple misses may be outstanding, and secondary misses to a block that
//! is already being fetched merge into the existing entry. The MSHR file
//! bounds that concurrency (8 entries in the paper's base configuration).

/// One outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MshrEntry {
    block_addr: u64,
    ready_cycle: u64,
}

/// A file of miss-status holding registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<MshrEntry>,
}

impl MshrFile {
    /// Creates an MSHR file with the given number of entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one entry");
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of entries the file can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently outstanding misses.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no more primary misses can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Returns the completion cycle of an outstanding miss covering
    /// `block_addr`, if any (a secondary miss merges into it).
    #[inline]
    pub fn lookup(&self, block_addr: u64) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.block_addr == block_addr)
            .map(|e| e.ready_cycle)
    }

    /// Allocates an entry for a primary miss completing at `ready_cycle`.
    ///
    /// Returns `false` (and allocates nothing) if the file is full.
    pub fn allocate(&mut self, block_addr: u64, ready_cycle: u64) -> bool {
        if self.is_full() {
            return false;
        }
        self.entries.push(MshrEntry {
            block_addr,
            ready_cycle,
        });
        true
    }

    /// Releases every entry whose miss has completed by `cycle`.
    #[inline]
    pub fn retire_completed(&mut self, cycle: u64) {
        if !self.entries.is_empty() {
            self.entries.retain(|e| e.ready_cycle > cycle);
        }
    }

    /// The earliest cycle at which any outstanding miss completes, if any.
    pub fn earliest_completion(&self) -> Option<u64> {
        self.entries.iter().map(|e| e.ready_cycle).min()
    }

    /// Removes all entries (e.g. on a pipeline flush in simplified models).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(1, 10));
        assert!(m.allocate(2, 12));
        assert!(m.is_full());
        assert!(!m.allocate(3, 14), "full file rejects allocation");
        assert_eq!(m.outstanding(), 2);
        assert_eq!(m.capacity(), 2);
    }

    #[test]
    fn secondary_miss_merges() {
        let mut m = MshrFile::new(4);
        m.allocate(7, 42);
        assert_eq!(m.lookup(7), Some(42));
        assert_eq!(m.lookup(8), None);
    }

    #[test]
    fn retire_frees_entries() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 10);
        m.allocate(2, 20);
        m.retire_completed(15);
        assert_eq!(m.outstanding(), 1);
        assert_eq!(m.lookup(1), None);
        assert_eq!(m.lookup(2), Some(20));
        assert_eq!(m.earliest_completion(), Some(20));
    }

    #[test]
    fn clear_empties_file() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 10);
        m.clear();
        assert_eq!(m.outstanding(), 0);
        assert_eq!(m.earliest_completion(), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
