//! The two-level memory hierarchy: split L1 caches, a unified L2, and main
//! memory, with the paper's base latencies (Table 2).

use crate::cache::Cache;
use crate::config::{CacheConfig, CacheConfigError};
use crate::replacement::ReplacementPolicy;
use crate::writeback::WritebackBuffer;

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierarchyConfig {
    /// L1 instruction cache configuration.
    pub l1i: CacheConfig,
    /// L1 data cache configuration.
    pub l1d: CacheConfig,
    /// Unified L2 configuration.
    pub l2: CacheConfig,
    /// Replacement policy of the L1 data cache (LRU in the paper's base
    /// system; [`ReplacementPolicy::LruMad`] weighs aggregate delay). Part
    /// of this `Hash`/`Eq` config, so memoized simulations keyed by a
    /// system configuration never cross-serve between policies.
    pub l1d_policy: ReplacementPolicy,
    /// Fixed portion of the memory access latency in cycles (80 in Table 2).
    pub memory_base_latency: u64,
    /// Additional cycles per 8 bytes transferred (5 in Table 2).
    pub memory_per_8_bytes: u64,
    /// Write-back buffer entries between L1D and L2 (8 in Table 2).
    pub writeback_entries: usize,
}

impl HierarchyConfig {
    /// The paper's base system: 32K 2-way L1s, 512K 4-way L2, 80 + 5/8B
    /// memory latency, 8 write-back buffer entries, LRU replacement.
    pub fn base() -> Self {
        Self {
            l1i: CacheConfig::l1_default(32 * 1024, 2),
            l1d: CacheConfig::l1_default(32 * 1024, 2),
            l2: CacheConfig::l2_default(),
            l1d_policy: ReplacementPolicy::Lru,
            memory_base_latency: 80,
            memory_per_8_bytes: 5,
            writeback_entries: 8,
        }
    }

    /// The base system with the given L1 size and associativity for both L1s.
    pub fn with_l1(size_bytes: u64, associativity: u32) -> Self {
        Self {
            l1i: CacheConfig::l1_default(size_bytes, associativity),
            l1d: CacheConfig::l1_default(size_bytes, associativity),
            ..Self::base()
        }
    }

    /// This configuration with the given d-cache replacement policy.
    pub fn with_l1d_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.l1d_policy = policy;
        self
    }

    /// Latency in cycles of a main-memory access for one L2 block.
    pub fn memory_latency(&self) -> u64 {
        self.memory_base_latency + self.memory_per_8_bytes * (self.l2.block_bytes / 8)
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::base()
    }
}

/// The outcome of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles, including the L1 access itself.
    pub latency: u64,
    /// Whether the access hit in the L1.
    pub l1_hit: bool,
    /// Whether the access hit in the L2 (only meaningful on an L1 miss).
    pub l2_hit: bool,
}

impl AccessResult {
    /// Classifies this access in the latency domain, given what the MSHR
    /// file knew at `cycle`: the completion cycle of an in-flight fill
    /// covering the block (`outstanding`), if any.
    ///
    /// A miss that merges into an in-flight fill is a **delayed hit**: it
    /// pays the fill's *remaining* latency (at least one cycle — the merge
    /// itself takes a cycle), not zero and not the full miss penalty. That
    /// remaining-latency pricing matches the engines' merge rule
    /// (`outstanding.max(cycle + 1)`), so the classification is exactly the
    /// cost the schedule already charges.
    #[inline]
    pub fn classify(&self, outstanding: Option<u64>, cycle: u64) -> AccessClass {
        if self.l1_hit {
            AccessClass::Hit
        } else if let Some(ready) = outstanding {
            AccessClass::DelayedHit {
                remaining: ready.max(cycle + 1) - cycle,
            }
        } else {
            AccessClass::PrimaryMiss
        }
    }
}

/// Latency-domain classification of one access (see
/// [`AccessResult::classify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// The block was resident: the access pays the L1 hit latency.
    Hit,
    /// The block is in flight: the access pays the fill's remaining cycles.
    DelayedHit {
        /// Remaining cycles until the in-flight fill completes (≥ 1).
        remaining: u64,
    },
    /// The block was neither resident nor in flight: a full miss.
    PrimaryMiss,
}

/// Counters the individual caches cannot track themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Main-memory accesses (L2 misses plus dirty L2 evictions).
    pub memory_accesses: u64,
    /// Dirty L1D victims written to the L2 through the write-back buffer.
    pub l1d_writebacks_to_l2: u64,
    /// Cycles lost because the write-back buffer was full.
    pub writeback_stall_cycles: u64,
    /// Blocks written to the L2 because a resize flushed dirty L1 blocks.
    pub resize_flush_writebacks: u64,
    /// Data accesses that merged into an in-flight fill (delayed hits).
    pub delayed_hits: u64,
    /// Total remaining-latency cycles those delayed hits paid.
    pub delayed_hit_cycles: u64,
}

/// The statistics of a hierarchy after a run, detached from the (large) tag
/// arrays.
///
/// Everything the energy model and the experiment measurements consume lives
/// here, so a finished simulation can be summarised in a few hundred bytes —
/// which is what lets the experiment runner memoize simulations across the
/// sweep arms that share a cache geometry without retaining whole
/// hierarchies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchySnapshot {
    /// L1 instruction cache statistics.
    pub l1i: crate::stats::CacheStats,
    /// L1 data cache statistics.
    pub l1d: crate::stats::CacheStats,
    /// Unified L2 statistics.
    pub l2: crate::stats::CacheStats,
    /// The L2 configuration (needed by the energy model's flush charging).
    pub l2_config: CacheConfig,
    /// Hierarchy-level counters.
    pub stats: HierarchyStats,
}

/// The simulated memory hierarchy.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    writeback: WritebackBuffer,
    stats: HierarchyStats,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if any cache configuration is invalid.
    pub fn new(config: HierarchyConfig) -> Result<Self, CacheConfigError> {
        Ok(Self {
            l1i: Cache::new(config.l1i)?,
            l1d: Cache::with_policy(config.l1d, config.l1d_policy)?,
            l2: Cache::new(config.l2)?,
            writeback: WritebackBuffer::new(config.writeback_entries),
            stats: HierarchyStats::default(),
            config,
        })
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The L1 instruction cache, mutably (used by resizing controllers).
    pub fn l1i_mut(&mut self) -> &mut Cache {
        &mut self.l1i
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L1 data cache, mutably (used by resizing controllers).
    pub fn l1d_mut(&mut self) -> &mut Cache {
        &mut self.l1d
    }

    /// The unified L2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Hierarchy-level statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Captures the post-run statistics of the whole hierarchy (see
    /// [`HierarchySnapshot`]).
    pub fn snapshot(&self) -> HierarchySnapshot {
        HierarchySnapshot {
            l1i: self.l1i.stats().clone(),
            l1d: self.l1d.stats().clone(),
            l2: self.l2.stats().clone(),
            l2_config: self.config.l2,
            stats: self.stats,
        }
    }

    /// Resets all statistics (cache-level and hierarchy-level), keeping
    /// contents and geometry. Used after warm-up.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.stats = HierarchyStats::default();
    }

    /// Fetches the block containing `pc` through the instruction path.
    #[inline]
    pub fn access_instruction(&mut self, pc: u64, cycle: u64) -> AccessResult {
        let l1_latency = self.config.l1i.hit_latency;
        if self.l1i.access_read(pc).hit {
            return AccessResult {
                latency: l1_latency,
                l1_hit: true,
                l2_hit: false,
            };
        }
        let (beyond, l2_hit) = self.refill_from_l2(pc, cycle);
        // Instruction blocks are never dirty, so the L1I fill cannot produce
        // a writeback.
        self.l1i.fill(pc, false);
        AccessResult {
            latency: l1_latency + beyond,
            l1_hit: false,
            l2_hit,
        }
    }

    /// Performs a data access (load if `write` is false, store otherwise).
    #[inline]
    pub fn access_data(&mut self, addr: u64, write: bool, cycle: u64) -> AccessResult {
        let l1_latency = self.config.l1d.hit_latency;
        let outcome = if write {
            self.l1d.access_write(addr)
        } else {
            self.l1d.access_read(addr)
        };
        if outcome.hit {
            return AccessResult {
                latency: l1_latency,
                l1_hit: true,
                l2_hit: false,
            };
        }
        let (beyond, l2_hit) = self.refill_from_l2(addr, cycle);
        let mut latency = l1_latency + beyond;
        if let Some(eviction) = self.l1d.fill_costed(addr, write, beyond) {
            if eviction.dirty {
                latency += self.push_writeback(eviction.block_addr, cycle);
            }
        }
        AccessResult {
            latency,
            l1_hit: false,
            l2_hit,
        }
    }

    /// Records a delayed hit: a data access at `addr` that merged into an
    /// in-flight fill and paid `remaining` cycles of its latency.
    ///
    /// Besides the hierarchy-level counters, the stall accrues onto the
    /// block's aggregate-delay cost when the d-cache policy weighs delay
    /// (the LRU-MAD victim scan), closing the loop between the engines'
    /// MSHR merges and replacement.
    #[inline]
    pub fn note_delayed_hit(&mut self, addr: u64, remaining: u64) {
        self.stats.delayed_hits += 1;
        self.stats.delayed_hit_cycles += remaining;
        self.l1d.note_delay(addr, remaining);
    }

    /// Reads a block from the L2 (refilling it from memory on an L2 miss).
    /// Returns the latency beyond the L1 and whether the L2 hit.
    fn refill_from_l2(&mut self, addr: u64, _cycle: u64) -> (u64, bool) {
        let l2_latency = self.config.l2.hit_latency;
        if self.l2.access_read(addr).hit {
            return (l2_latency, true);
        }
        let mut latency = l2_latency + self.config.memory_latency();
        self.stats.memory_accesses += 1;
        if let Some(eviction) = self.l2.fill(addr, false) {
            if eviction.dirty {
                // Dirty L2 victims drain to memory in the background; charge
                // the access for energy purposes but not for latency.
                self.stats.memory_accesses += 1;
                latency += 0;
            }
        }
        (latency, false)
    }

    /// Pushes a dirty L1D victim into the write-back buffer and performs the
    /// L2 write. Returns stall cycles caused by a full buffer.
    fn push_writeback(&mut self, block_addr: u64, cycle: u64) -> u64 {
        let stall = self.writeback.push(cycle, self.config.l2.hit_latency);
        self.stats.writeback_stall_cycles += stall;
        self.stats.l1d_writebacks_to_l2 += 1;
        let addr = block_addr * self.config.l1d.block_bytes;
        if !self.l2.access_write(addr).hit {
            self.stats.memory_accesses += 1;
            if let Some(eviction) = self.l2.fill(addr, true) {
                if eviction.dirty {
                    self.stats.memory_accesses += 1;
                }
            }
        }
        stall
    }

    /// Records `count` dirty blocks flushed to the L2 by a resize operation.
    ///
    /// Resizing controllers call this after `Cache::resize` so the extra L2
    /// traffic shows up in the energy accounting (the paper notes this
    /// traffic exists but is insignificant; modelling it keeps the claim
    /// checkable).
    pub fn note_resize_flush_writebacks(&mut self, count: u64) {
        self.stats.resize_flush_writebacks += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::base()).unwrap()
    }

    #[test]
    fn base_config_latencies() {
        let c = HierarchyConfig::base();
        assert_eq!(c.memory_latency(), 80 + 5 * 4);
        assert_eq!(c.l2.hit_latency, 12);
        assert_eq!(c.l1d.hit_latency, 1);
    }

    #[test]
    fn instruction_miss_then_hit() {
        let mut h = hierarchy();
        let cold = h.access_instruction(0x40_0000, 0);
        assert!(!cold.l1_hit);
        assert!(!cold.l2_hit);
        assert_eq!(cold.latency, 1 + 12 + 100);
        let warm = h.access_instruction(0x40_0000, 10);
        assert!(warm.l1_hit);
        assert_eq!(warm.latency, 1);
        assert_eq!(h.stats().memory_accesses, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = hierarchy();
        let addr = 0x10_0000;
        h.access_data(addr, false, 0);
        // Evict it from L1 by filling two aliasing blocks (2-way L1).
        h.access_data(addr + 16 * 1024, false, 1);
        h.access_data(addr + 32 * 1024, false, 2);
        assert!(!h.l1d().contains(addr));
        let r = h.access_data(addr, false, 3);
        assert!(!r.l1_hit);
        assert!(r.l2_hit, "block should still be in the L2");
        assert_eq!(r.latency, 1 + 12);
    }

    #[test]
    fn store_miss_write_allocates_dirty() {
        let mut h = hierarchy();
        let addr = 0x20_0000;
        h.access_data(addr, true, 0);
        assert!(h.l1d().contains(addr));
        // Evicting it later must produce a writeback to L2.
        h.access_data(addr + 16 * 1024, false, 1);
        h.access_data(addr + 32 * 1024, false, 2);
        assert_eq!(h.stats().l1d_writebacks_to_l2, 1);
    }

    #[test]
    fn data_hit_is_single_cycle() {
        let mut h = hierarchy();
        h.access_data(0x30_0000, false, 0);
        let r = h.access_data(0x30_0008, false, 1);
        assert!(r.l1_hit);
        assert_eq!(r.latency, 1);
    }

    #[test]
    fn resize_flush_counter() {
        let mut h = hierarchy();
        h.note_resize_flush_writebacks(5);
        assert_eq!(h.stats().resize_flush_writebacks, 5);
    }

    #[test]
    fn delayed_hit_classification_and_counters() {
        let mut h = hierarchy();
        let hit = h.access_data(0x50_0000, false, 0);
        let miss = h.access_data(0x50_0000, false, 1); // now resident: a hit
        assert_eq!(
            hit.classify(None, 0),
            AccessClass::PrimaryMiss,
            "cold access with no in-flight fill is a primary miss"
        );
        assert_eq!(miss.classify(None, 1), AccessClass::Hit);
        // A miss that merges into a fill completing at cycle 40, seen at
        // cycle 10, pays the remaining 30 cycles; one completing this cycle
        // still pays the one-cycle merge.
        assert_eq!(
            hit.classify(Some(40), 10),
            AccessClass::DelayedHit { remaining: 30 }
        );
        assert_eq!(
            hit.classify(Some(5), 10),
            AccessClass::DelayedHit { remaining: 1 }
        );
        h.note_delayed_hit(0x50_0000, 30);
        h.note_delayed_hit(0x50_0000, 1);
        assert_eq!(h.stats().delayed_hits, 2);
        assert_eq!(h.stats().delayed_hit_cycles, 31);
    }

    #[test]
    fn lru_mad_policy_flows_into_the_d_cache() {
        let config = HierarchyConfig::base().with_l1d_policy(ReplacementPolicy::LruMad);
        let h = MemoryHierarchy::new(config).unwrap();
        assert_eq!(h.l1d().policy(), ReplacementPolicy::LruMad);
        assert_eq!(h.l1i().policy(), ReplacementPolicy::Lru);
        assert_eq!(h.l2().policy(), ReplacementPolicy::Lru);
    }

    #[test]
    fn reset_stats_clears_counters_but_not_contents() {
        let mut h = hierarchy();
        h.access_data(0x40_0000, false, 0);
        h.reset_stats();
        assert_eq!(h.stats().memory_accesses, 0);
        assert_eq!(h.l1d().stats().accesses, 0);
        assert!(h.l1d().contains(0x40_0000));
    }

    #[test]
    fn l1_resizing_through_hierarchy_accessors() {
        let mut h = hierarchy();
        h.access_data(0x0, true, 0);
        let effect = h.l1d_mut().set_enabled_sets(256);
        h.note_resize_flush_writebacks(effect.dirty_writebacks);
        assert_eq!(h.l1d().enabled_bytes(), 16 * 1024);
    }
}
