//! The two-level memory hierarchy: split L1 caches, a unified L2, and main
//! memory, with the paper's base latencies (Table 2).

use crate::cache::Cache;
use crate::config::{CacheConfig, CacheConfigError};
use crate::writeback::WritebackBuffer;

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierarchyConfig {
    /// L1 instruction cache configuration.
    pub l1i: CacheConfig,
    /// L1 data cache configuration.
    pub l1d: CacheConfig,
    /// Unified L2 configuration.
    pub l2: CacheConfig,
    /// Fixed portion of the memory access latency in cycles (80 in Table 2).
    pub memory_base_latency: u64,
    /// Additional cycles per 8 bytes transferred (5 in Table 2).
    pub memory_per_8_bytes: u64,
    /// Write-back buffer entries between L1D and L2 (8 in Table 2).
    pub writeback_entries: usize,
}

impl HierarchyConfig {
    /// The paper's base system: 32K 2-way L1s, 512K 4-way L2, 80 + 5/8B
    /// memory latency, 8 write-back buffer entries.
    pub fn base() -> Self {
        Self {
            l1i: CacheConfig::l1_default(32 * 1024, 2),
            l1d: CacheConfig::l1_default(32 * 1024, 2),
            l2: CacheConfig::l2_default(),
            memory_base_latency: 80,
            memory_per_8_bytes: 5,
            writeback_entries: 8,
        }
    }

    /// The base system with the given L1 size and associativity for both L1s.
    pub fn with_l1(size_bytes: u64, associativity: u32) -> Self {
        Self {
            l1i: CacheConfig::l1_default(size_bytes, associativity),
            l1d: CacheConfig::l1_default(size_bytes, associativity),
            ..Self::base()
        }
    }

    /// Latency in cycles of a main-memory access for one L2 block.
    pub fn memory_latency(&self) -> u64 {
        self.memory_base_latency + self.memory_per_8_bytes * (self.l2.block_bytes / 8)
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::base()
    }
}

/// The outcome of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles, including the L1 access itself.
    pub latency: u64,
    /// Whether the access hit in the L1.
    pub l1_hit: bool,
    /// Whether the access hit in the L2 (only meaningful on an L1 miss).
    pub l2_hit: bool,
}

/// Counters the individual caches cannot track themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Main-memory accesses (L2 misses plus dirty L2 evictions).
    pub memory_accesses: u64,
    /// Dirty L1D victims written to the L2 through the write-back buffer.
    pub l1d_writebacks_to_l2: u64,
    /// Cycles lost because the write-back buffer was full.
    pub writeback_stall_cycles: u64,
    /// Blocks written to the L2 because a resize flushed dirty L1 blocks.
    pub resize_flush_writebacks: u64,
}

/// The statistics of a hierarchy after a run, detached from the (large) tag
/// arrays.
///
/// Everything the energy model and the experiment measurements consume lives
/// here, so a finished simulation can be summarised in a few hundred bytes —
/// which is what lets the experiment runner memoize simulations across the
/// sweep arms that share a cache geometry without retaining whole
/// hierarchies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchySnapshot {
    /// L1 instruction cache statistics.
    pub l1i: crate::stats::CacheStats,
    /// L1 data cache statistics.
    pub l1d: crate::stats::CacheStats,
    /// Unified L2 statistics.
    pub l2: crate::stats::CacheStats,
    /// The L2 configuration (needed by the energy model's flush charging).
    pub l2_config: CacheConfig,
    /// Hierarchy-level counters.
    pub stats: HierarchyStats,
}

/// The simulated memory hierarchy.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    writeback: WritebackBuffer,
    stats: HierarchyStats,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if any cache configuration is invalid.
    pub fn new(config: HierarchyConfig) -> Result<Self, CacheConfigError> {
        Ok(Self {
            l1i: Cache::new(config.l1i)?,
            l1d: Cache::new(config.l1d)?,
            l2: Cache::new(config.l2)?,
            writeback: WritebackBuffer::new(config.writeback_entries),
            stats: HierarchyStats::default(),
            config,
        })
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The L1 instruction cache, mutably (used by resizing controllers).
    pub fn l1i_mut(&mut self) -> &mut Cache {
        &mut self.l1i
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L1 data cache, mutably (used by resizing controllers).
    pub fn l1d_mut(&mut self) -> &mut Cache {
        &mut self.l1d
    }

    /// The unified L2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Hierarchy-level statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Captures the post-run statistics of the whole hierarchy (see
    /// [`HierarchySnapshot`]).
    pub fn snapshot(&self) -> HierarchySnapshot {
        HierarchySnapshot {
            l1i: self.l1i.stats().clone(),
            l1d: self.l1d.stats().clone(),
            l2: self.l2.stats().clone(),
            l2_config: self.config.l2,
            stats: self.stats,
        }
    }

    /// Resets all statistics (cache-level and hierarchy-level), keeping
    /// contents and geometry. Used after warm-up.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.stats = HierarchyStats::default();
    }

    /// Fetches the block containing `pc` through the instruction path.
    #[inline]
    pub fn access_instruction(&mut self, pc: u64, cycle: u64) -> AccessResult {
        let l1_latency = self.config.l1i.hit_latency;
        if self.l1i.access_read(pc).hit {
            return AccessResult {
                latency: l1_latency,
                l1_hit: true,
                l2_hit: false,
            };
        }
        let (beyond, l2_hit) = self.refill_from_l2(pc, cycle);
        // Instruction blocks are never dirty, so the L1I fill cannot produce
        // a writeback.
        self.l1i.fill(pc, false);
        AccessResult {
            latency: l1_latency + beyond,
            l1_hit: false,
            l2_hit,
        }
    }

    /// Performs a data access (load if `write` is false, store otherwise).
    #[inline]
    pub fn access_data(&mut self, addr: u64, write: bool, cycle: u64) -> AccessResult {
        let l1_latency = self.config.l1d.hit_latency;
        let outcome = if write {
            self.l1d.access_write(addr)
        } else {
            self.l1d.access_read(addr)
        };
        if outcome.hit {
            return AccessResult {
                latency: l1_latency,
                l1_hit: true,
                l2_hit: false,
            };
        }
        let (beyond, l2_hit) = self.refill_from_l2(addr, cycle);
        let mut latency = l1_latency + beyond;
        if let Some(eviction) = self.l1d.fill(addr, write) {
            if eviction.dirty {
                latency += self.push_writeback(eviction.block_addr, cycle);
            }
        }
        AccessResult {
            latency,
            l1_hit: false,
            l2_hit,
        }
    }

    /// Reads a block from the L2 (refilling it from memory on an L2 miss).
    /// Returns the latency beyond the L1 and whether the L2 hit.
    fn refill_from_l2(&mut self, addr: u64, _cycle: u64) -> (u64, bool) {
        let l2_latency = self.config.l2.hit_latency;
        if self.l2.access_read(addr).hit {
            return (l2_latency, true);
        }
        let mut latency = l2_latency + self.config.memory_latency();
        self.stats.memory_accesses += 1;
        if let Some(eviction) = self.l2.fill(addr, false) {
            if eviction.dirty {
                // Dirty L2 victims drain to memory in the background; charge
                // the access for energy purposes but not for latency.
                self.stats.memory_accesses += 1;
                latency += 0;
            }
        }
        (latency, false)
    }

    /// Pushes a dirty L1D victim into the write-back buffer and performs the
    /// L2 write. Returns stall cycles caused by a full buffer.
    fn push_writeback(&mut self, block_addr: u64, cycle: u64) -> u64 {
        let stall = self.writeback.push(cycle, self.config.l2.hit_latency);
        self.stats.writeback_stall_cycles += stall;
        self.stats.l1d_writebacks_to_l2 += 1;
        let addr = block_addr * self.config.l1d.block_bytes;
        if !self.l2.access_write(addr).hit {
            self.stats.memory_accesses += 1;
            if let Some(eviction) = self.l2.fill(addr, true) {
                if eviction.dirty {
                    self.stats.memory_accesses += 1;
                }
            }
        }
        stall
    }

    /// Records `count` dirty blocks flushed to the L2 by a resize operation.
    ///
    /// Resizing controllers call this after `Cache::resize` so the extra L2
    /// traffic shows up in the energy accounting (the paper notes this
    /// traffic exists but is insignificant; modelling it keeps the claim
    /// checkable).
    pub fn note_resize_flush_writebacks(&mut self, count: u64) {
        self.stats.resize_flush_writebacks += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::base()).unwrap()
    }

    #[test]
    fn base_config_latencies() {
        let c = HierarchyConfig::base();
        assert_eq!(c.memory_latency(), 80 + 5 * 4);
        assert_eq!(c.l2.hit_latency, 12);
        assert_eq!(c.l1d.hit_latency, 1);
    }

    #[test]
    fn instruction_miss_then_hit() {
        let mut h = hierarchy();
        let cold = h.access_instruction(0x40_0000, 0);
        assert!(!cold.l1_hit);
        assert!(!cold.l2_hit);
        assert_eq!(cold.latency, 1 + 12 + 100);
        let warm = h.access_instruction(0x40_0000, 10);
        assert!(warm.l1_hit);
        assert_eq!(warm.latency, 1);
        assert_eq!(h.stats().memory_accesses, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = hierarchy();
        let addr = 0x10_0000;
        h.access_data(addr, false, 0);
        // Evict it from L1 by filling two aliasing blocks (2-way L1).
        h.access_data(addr + 16 * 1024, false, 1);
        h.access_data(addr + 32 * 1024, false, 2);
        assert!(!h.l1d().contains(addr));
        let r = h.access_data(addr, false, 3);
        assert!(!r.l1_hit);
        assert!(r.l2_hit, "block should still be in the L2");
        assert_eq!(r.latency, 1 + 12);
    }

    #[test]
    fn store_miss_write_allocates_dirty() {
        let mut h = hierarchy();
        let addr = 0x20_0000;
        h.access_data(addr, true, 0);
        assert!(h.l1d().contains(addr));
        // Evicting it later must produce a writeback to L2.
        h.access_data(addr + 16 * 1024, false, 1);
        h.access_data(addr + 32 * 1024, false, 2);
        assert_eq!(h.stats().l1d_writebacks_to_l2, 1);
    }

    #[test]
    fn data_hit_is_single_cycle() {
        let mut h = hierarchy();
        h.access_data(0x30_0000, false, 0);
        let r = h.access_data(0x30_0008, false, 1);
        assert!(r.l1_hit);
        assert_eq!(r.latency, 1);
    }

    #[test]
    fn resize_flush_counter() {
        let mut h = hierarchy();
        h.note_resize_flush_writebacks(5);
        assert_eq!(h.stats().resize_flush_writebacks, 5);
    }

    #[test]
    fn reset_stats_clears_counters_but_not_contents() {
        let mut h = hierarchy();
        h.access_data(0x40_0000, false, 0);
        h.reset_stats();
        assert_eq!(h.stats().memory_accesses, 0);
        assert_eq!(h.l1d().stats().accesses, 0);
        assert!(h.l1d().contains(0x40_0000));
    }

    #[test]
    fn l1_resizing_through_hierarchy_accessors() {
        let mut h = hierarchy();
        h.access_data(0x0, true, 0);
        let effect = h.l1d_mut().set_enabled_sets(256);
        h.note_resize_flush_writebacks(effect.dirty_writebacks);
        assert_eq!(h.l1d().enabled_bytes(), 16 * 1024);
    }
}
