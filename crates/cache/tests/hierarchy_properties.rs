//! Property-based tests of the memory hierarchy: latency accounting,
//! inclusion-like behaviour of repeated accesses, and resize bookkeeping.
//! Driven by the in-repo deterministic case runner (`rescache-testutil`).

use rescache_cache::{HierarchyConfig, MemoryHierarchy};
use rescache_testutil::{check_cases, TestRng};

fn block_addresses(rng: &mut TestRng) -> Vec<u64> {
    let len = rng.range_usize(1, 300);
    rng.vec_of(len, |r| 0x10_0000 + r.below(2048) * 32)
}

/// Access latency is always one of the three legal values: L1 hit, L2 hit, or
/// memory access.
#[test]
fn latencies_are_quantised() {
    check_cases(64, |rng| {
        let addrs = block_addresses(rng);
        let writes = rng.bool();
        let config = HierarchyConfig::base();
        let l1 = config.l1d.hit_latency;
        let l2 = l1 + config.l2.hit_latency;
        let mem = l2 + config.memory_latency();
        let mut h = MemoryHierarchy::new(config).unwrap();
        for (i, addr) in addrs.iter().enumerate() {
            let r = h.access_data(*addr, writes && i % 2 == 0, i as u64);
            assert!(
                r.latency == l1 || r.latency >= l2,
                "latency {} is neither an L1 hit nor beyond",
                r.latency
            );
            assert!(
                r.latency <= mem + config.l2.hit_latency,
                "latency {} too large",
                r.latency
            );
            if r.l1_hit {
                assert_eq!(r.latency, l1);
            }
        }
    });
}

/// Re-accessing the same address immediately is always an L1 hit, no matter
/// what happened before.
#[test]
fn immediate_reuse_hits() {
    check_cases(64, |rng| {
        let addrs = block_addresses(rng);
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        for (i, addr) in addrs.iter().enumerate() {
            h.access_data(*addr, false, i as u64);
            let again = h.access_data(*addr, false, i as u64 + 1);
            assert!(again.l1_hit);
        }
    });
}

/// Hierarchy statistics are internally consistent: L1 misses can never exceed
/// L1 accesses, and memory accesses can never exceed total L2 activity (reads
/// plus fills plus writebacks).
#[test]
fn statistics_are_consistent() {
    check_cases(64, |rng| {
        let addrs = block_addresses(rng);
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        for (i, addr) in addrs.iter().enumerate() {
            h.access_data(*addr, i % 5 == 0, i as u64);
        }
        let l1d = h.l1d().stats();
        let l2 = h.l2().stats();
        assert!(l1d.misses() <= l1d.accesses);
        assert!(l1d.hits + l1d.misses() == l1d.accesses);
        assert!(l2.accesses >= l1d.misses(), "every L1 miss reaches the L2");
        assert!(h.stats().memory_accesses <= l2.accesses + l2.fills + 1);
    });
}

/// Resizing an L1 through the hierarchy preserves the invariant that the
/// disabled portion really is unused afterwards (enabled bytes bound the
/// resident blocks), and the L2 still serves the flushed blocks.
#[test]
fn resize_through_hierarchy_is_safe() {
    check_cases(64, |rng| {
        let addrs = block_addresses(rng);
        let sets_exp = rng.range_u32(5, 9);
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        for (i, addr) in addrs.iter().enumerate() {
            h.access_data(*addr, i % 3 == 0, i as u64);
        }
        let new_sets = 1u64 << sets_exp; // 32..256 of 512 sets
        let effect = h.l1d_mut().set_enabled_sets(new_sets);
        h.note_resize_flush_writebacks(effect.dirty_writebacks);
        assert!(h.l1d().resident_blocks() * 32 <= h.l1d().enabled_bytes());
        assert_eq!(h.stats().resize_flush_writebacks, effect.dirty_writebacks);
        // Blocks that were flushed out of the L1 are still in the L2, so a
        // re-access is at worst an L2 hit (never main memory) for recently
        // touched addresses that fit in the L2.
        if let Some(addr) = addrs.last() {
            let r = h.access_data(*addr, false, 10_000);
            assert!(r.l1_hit || r.l2_hit);
        }
    });
}
