//! Length-prefixed binary codec for traces: the persistence format of the
//! experiment trace store.
//!
//! Trace generation is deterministic but not free (it is the slowest single
//! stage of a cold sweep), so multi-process experiment campaigns persist
//! generated traces under `RESCACHE_TRACE_DIR` and replay them from disk. The
//! format is deliberately simple — no compression, no seeking:
//!
//! ```text
//! magic      8 bytes   b"RCTRACE" + version digit (b"RCTRACE1", b"RCTRACE2")
//! name_len   4 bytes   u32 LE, at most MAX_NAME_BYTES
//! name       n bytes   UTF-8 application name
//! records    8 bytes   u64 LE total record count
//! chunk*                repeated until `records` records have been read:
//!   len      4 bytes   u32 LE records in this chunk (1 ..= CHUNK_RECORDS)
//!   data     len × 12  encoded records (see `InstrRecord::encode`)
//! ```
//!
//! The magic's trailing digit is the [`TraceFormat`] version of the records
//! (which generation algorithm produced the bits — see [`crate::format`]).
//! Every known version decodes; a reader that *expects* a particular
//! version ([`TraceFileSource::open_expecting`]) rejects a mismatch with the
//! typed [`CodecError::FormatMismatch`], and an unknown version digit is
//! [`CodecError::UnsupportedVersion`] — mixed-version reads fail loudly and
//! typed, never silently and never by panic.
//!
//! Readers validate everything else they touch the same way and return a
//! [`CodecError`] — never panic — on truncated, corrupt or foreign files, so
//! a store populated by a crashed or concurrent process degrades to
//! regeneration rather than an aborted sweep.
//!
//! The per-chunk framing is what makes the store's streaming and sharing
//! features chunk-granular: [`ChunkedTraceReader`] decodes one chunk at a
//! time (nothing else resident), [`TraceFileSource`] adapts that reader to
//! the [`TraceSource`] pull interface so simulations replay straight from
//! disk (including serving only a leading prefix of a longer entry), and
//! [`save_source`] persists a streaming generator without ever holding the
//! full record array.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::faults::{IoPolicy, PolicedRead, PolicedWrite};
use crate::format::TraceFormat;
use crate::record::{InstrRecord, InvalidRecord, ENCODED_RECORD_BYTES};
use crate::source::{TraceSource, CHUNK_RECORDS};
use crate::trace::Trace;

/// Version-independent prefix of every trace-file magic; the eighth byte is
/// the [`TraceFormat`] version digit (see [`TraceFormat::magic`]).
pub const MAGIC_PREFIX: [u8; 7] = *b"RCTRACE";

/// Upper bound on the encoded application-name length.
pub const MAX_NAME_BYTES: u32 = 4 * 1024;

/// Error produced when decoding a persisted trace.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC_PREFIX`] — not a rescache trace
    /// at all.
    BadMagic,
    /// The magic names a trace-format version this build does not know.
    UnsupportedVersion {
        /// The unrecognized version byte from the magic.
        version: u8,
    },
    /// The file is a valid trace of a *different* [`TraceFormat`] than the
    /// reader asked for: the two bit streams must never mix, so the read is
    /// rejected rather than silently served.
    FormatMismatch {
        /// The version the reader required.
        expected: TraceFormat,
        /// The version the file's magic carries.
        found: TraceFormat,
    },
    /// The application name is over-long or not UTF-8.
    BadName,
    /// A chunk header is impossible (zero, over-long, or exceeding the
    /// remaining record count).
    BadChunk {
        /// The rejected chunk length.
        len: u32,
        /// Records still expected when the chunk header was read.
        remaining: u64,
    },
    /// A record payload failed to decode.
    BadRecord(InvalidRecord),
    /// The file ended before the promised record count was delivered.
    Truncated {
        /// Records promised by the header.
        expected: u64,
        /// Records successfully decoded before the end of the file.
        got: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "trace codec i/o error: {e}"),
            CodecError::BadMagic => write!(f, "not a rescache trace file (bad magic)"),
            CodecError::UnsupportedVersion { version } => write!(
                f,
                "trace file has an unsupported format version byte {version:#04x}"
            ),
            CodecError::FormatMismatch { expected, found } => write!(
                f,
                "trace file is format {found} but the reader requires {expected}"
            ),
            CodecError::BadName => write!(f, "trace file has an invalid application name"),
            CodecError::BadChunk { len, remaining } => write!(
                f,
                "trace file has an invalid chunk header (len {len}, {remaining} records remaining)"
            ),
            CodecError::BadRecord(e) => write!(f, "trace file has a corrupt record: {e}"),
            CodecError::Truncated { expected, got } => write!(
                f,
                "trace file is truncated: expected {expected} records, decoded {got}"
            ),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            CodecError::BadRecord(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

impl From<InvalidRecord> for CodecError {
    fn from(e: InvalidRecord) -> Self {
        CodecError::BadRecord(e)
    }
}

/// Writes `trace` to `w` in the format described at module level, with the
/// magic carrying the trace's own [`TraceFormat`] version.
///
/// # Errors
///
/// Besides writer errors, returns `InvalidInput` for a trace whose name
/// exceeds [`MAX_NAME_BYTES`] — a reader would reject such a file, so it
/// must never be produced.
pub fn write_trace<W: Write>(w: &mut W, trace: &Trace) -> io::Result<()> {
    w.write_all(&trace.format().magic())?;
    let name = trace.name().as_bytes();
    if name.len() as u64 > u64::from(MAX_NAME_BYTES) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "trace name of {} bytes exceeds {MAX_NAME_BYTES}",
                name.len()
            ),
        ));
    }
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;

    let mut bytes = Vec::with_capacity(CHUNK_RECORDS * ENCODED_RECORD_BYTES);
    for chunk in trace.records().chunks(CHUNK_RECORDS) {
        w.write_all(&(chunk.len() as u32).to_le_bytes())?;
        bytes.clear();
        for record in chunk {
            bytes.extend_from_slice(&record.encode());
        }
        w.write_all(&bytes)?;
    }
    Ok(())
}

/// An incremental reader over the persisted trace format: the header is
/// validated on construction, then [`ChunkedTraceReader::next_chunk`] decodes
/// one chunk at a time into an internal buffer, so a consumer that never
/// needs the whole trace resident (the store's streaming replay path) keeps
/// at most [`CHUNK_RECORDS`] decoded records alive.
#[derive(Debug)]
pub struct ChunkedTraceReader<R: Read> {
    r: R,
    name: String,
    format: TraceFormat,
    total: u64,
    delivered: u64,
    buf: Vec<InstrRecord>,
    raw: Vec<u8>,
}

impl<R: Read> ChunkedTraceReader<R> {
    /// Reads and validates the stream header. Any known [`TraceFormat`]
    /// version is accepted and reported via [`ChunkedTraceReader::format`];
    /// callers that require one specific version check it (or use
    /// [`TraceFileSource::open_expecting`]).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for a missing magic, an unknown format
    /// version, an invalid name, or a reader failure.
    pub fn new(mut r: R) -> Result<Self, CodecError> {
        let mut magic = [0u8; 8];
        read_exact_or_truncated(&mut r, &mut magic, 0, 0)?;
        if magic[..7] != MAGIC_PREFIX {
            return Err(CodecError::BadMagic);
        }
        let format = TraceFormat::from_version_byte(magic[7])
            .ok_or(CodecError::UnsupportedVersion { version: magic[7] })?;

        let mut len4 = [0u8; 4];
        read_exact_or_truncated(&mut r, &mut len4, 0, 0)?;
        let name_len = u32::from_le_bytes(len4);
        if name_len > MAX_NAME_BYTES {
            return Err(CodecError::BadName);
        }
        let mut name_bytes = vec![0u8; name_len as usize];
        read_exact_or_truncated(&mut r, &mut name_bytes, 0, 0)?;
        let name = String::from_utf8(name_bytes).map_err(|_| CodecError::BadName)?;

        let mut len8 = [0u8; 8];
        read_exact_or_truncated(&mut r, &mut len8, 0, 0)?;
        let total = u64::from_le_bytes(len8);

        Ok(Self {
            r,
            name,
            format,
            total,
            delivered: 0,
            buf: Vec::new(),
            raw: Vec::new(),
        })
    }

    /// The application name recorded in the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The [`TraceFormat`] version the header's magic carries.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// The total record count promised by the header.
    pub fn total_records(&self) -> u64 {
        self.total
    }

    /// Records decoded so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Decodes the next chunk, or returns an empty slice once every promised
    /// record has been delivered.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation, an impossible chunk header or
    /// a corrupt record; the reader must not be used further after an error.
    pub fn next_chunk(&mut self) -> Result<&[InstrRecord], CodecError> {
        let remaining = self.total - self.delivered;
        if remaining == 0 {
            return Ok(&[]);
        }
        let mut len4 = [0u8; 4];
        read_exact_or_truncated(&mut self.r, &mut len4, self.total, self.delivered)?;
        let len = u32::from_le_bytes(len4);
        if len == 0 || len as usize > CHUNK_RECORDS || u64::from(len) > remaining {
            return Err(CodecError::BadChunk { len, remaining });
        }
        let byte_len = len as usize * ENCODED_RECORD_BYTES;
        // Allocate lazily (bounded by what the file actually delivers) so a
        // corrupt record count cannot force an absurd up-front allocation.
        self.raw.resize(byte_len.max(self.raw.len()), 0);
        read_exact_or_truncated(
            &mut self.r,
            &mut self.raw[..byte_len],
            self.total,
            self.delivered,
        )?;
        self.buf.clear();
        self.buf.reserve(len as usize);
        for encoded in self.raw[..byte_len].chunks_exact(ENCODED_RECORD_BYTES) {
            let mut bytes = [0u8; ENCODED_RECORD_BYTES];
            bytes.copy_from_slice(encoded);
            self.buf.push(InstrRecord::decode(&bytes)?);
        }
        self.delivered += u64::from(len);
        Ok(&self.buf)
    }
}

/// Reads a trace from `r`, validating the format end to end.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream is not a well-formed trace file;
/// truncation, unknown record tags and impossible chunk headers are all
/// reported as errors rather than panics.
pub fn read_trace<R: Read>(r: &mut R) -> Result<Trace, CodecError> {
    let mut reader = ChunkedTraceReader::new(r)?;
    let mut records: Vec<InstrRecord> = Vec::new();
    loop {
        let chunk = reader.next_chunk()?;
        if chunk.is_empty() {
            break;
        }
        records.extend_from_slice(chunk);
    }
    Ok(Trace::with_format(
        reader.name().to_string(),
        records,
        reader.format(),
    ))
}

/// A [`TraceSource`] replaying a persisted trace chunk by chunk from disk:
/// the streaming twin of [`load_trace`], keeping one decoded chunk resident
/// instead of the whole record array. Opening with a `take` shorter than the
/// file is chunk-granular prefix serving — decoding stops with the chunk
/// that covers the request, so corruption *beyond* the prefix is never even
/// read; this is how the experiment trace store serves a short trace request
/// from a longer persisted entry.
///
/// The pull interface has no error channel, so a decode failure mid-stream
/// (a truncated or corrupted store entry) is recorded in
/// [`TraceFileSource::fault`] and the source reports exhaustion; callers
/// that must be robust check the fault after the run and fall back to
/// regeneration (as the experiment runner does).
#[derive(Debug)]
pub struct TraceFileSource {
    path: std::path::PathBuf,
    reader: ChunkedTraceReader<BufReader<PolicedRead<File>>>,
    /// Records of the file this source serves (a prefix of the file when the
    /// entry is longer than the request).
    take: usize,
    pos: usize,
    fence: usize,
    chunk: Vec<InstrRecord>,
    chunk_pos: usize,
    fault: Option<CodecError>,
}

impl TraceFileSource {
    /// Opens the trace at `path`, serving its first `take` records (`None` =
    /// the whole file). Any known [`TraceFormat`] version is accepted; use
    /// [`TraceFileSource::open_expecting`] when the caller's bit stream is
    /// version-pinned.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the file cannot be opened, its header is
    /// invalid, or it promises fewer than `take` records.
    pub fn open(path: &Path, take: Option<usize>) -> Result<Self, CodecError> {
        Self::open_with(path, take, &IoPolicy::none())
    }

    /// [`TraceFileSource::open`] with the open and every subsequent read
    /// routed through `policy` — the fault-injectable variant the experiment
    /// trace store uses. A fault injected mid-stream surfaces through
    /// [`TraceFileSource::fault`] exactly like real disk trouble.
    ///
    /// # Errors
    ///
    /// Everything [`TraceFileSource::open`] reports, plus whatever `policy`
    /// injects.
    pub fn open_with(
        path: &Path,
        take: Option<usize>,
        policy: &IoPolicy,
    ) -> Result<Self, CodecError> {
        let file = policy.open(path)?;
        let reader = ChunkedTraceReader::new(BufReader::new(policy.reader(file)))?;
        let take = take.unwrap_or(reader.total_records() as usize);
        if (take as u64) > reader.total_records() {
            return Err(CodecError::Truncated {
                expected: take as u64,
                got: reader.total_records(),
            });
        }
        Ok(Self {
            path: path.to_path_buf(),
            reader,
            take,
            pos: 0,
            fence: take,
            chunk: Vec::new(),
            chunk_pos: 0,
            fault: None,
        })
    }

    /// [`TraceFileSource::open`] that additionally requires the file to be
    /// of the `expected` [`TraceFormat`].
    ///
    /// # Errors
    ///
    /// Everything [`TraceFileSource::open`] reports, plus
    /// [`CodecError::FormatMismatch`] when the file is a valid trace of a
    /// different version — a v1 entry must never quietly serve a v2 request
    /// (or vice versa), because the two bit streams differ by design.
    pub fn open_expecting(
        path: &Path,
        take: Option<usize>,
        expected: TraceFormat,
    ) -> Result<Self, CodecError> {
        Self::open_expecting_with(path, take, expected, &IoPolicy::none())
    }

    /// [`TraceFileSource::open_expecting`] routed through `policy` (see
    /// [`TraceFileSource::open_with`]).
    ///
    /// # Errors
    ///
    /// Everything [`TraceFileSource::open_expecting`] reports, plus whatever
    /// `policy` injects.
    pub fn open_expecting_with(
        path: &Path,
        take: Option<usize>,
        expected: TraceFormat,
        policy: &IoPolicy,
    ) -> Result<Self, CodecError> {
        let source = Self::open_with(path, take, policy)?;
        let found = source.format();
        if found != expected {
            return Err(CodecError::FormatMismatch { expected, found });
        }
        Ok(source)
    }

    /// The file this source replays (callers that detect a fault use it to
    /// invalidate the entry).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The record count the file's header promises — the whole entry, not
    /// the served prefix ([`TraceSource::total_records`] reports `take`).
    /// Store-layer callers compare this against the count implied by the
    /// entry's key to reject foreign or stale files.
    pub fn file_records(&self) -> usize {
        self.reader.total_records() as usize
    }

    /// The decode error that interrupted this source, if any. When a fault is
    /// set the source under-delivers: the simulation that consumed it must be
    /// discarded and retried from another producer.
    pub fn fault(&self) -> Option<&CodecError> {
        self.fault.as_ref()
    }

    /// Refills the staging chunk from the reader; false on fault/end.
    fn refill(&mut self) -> bool {
        match self.reader.next_chunk() {
            Ok([]) => {
                // `take` was validated against the header, so running dry
                // early means the file lied; record it as truncation.
                self.fault = Some(CodecError::Truncated {
                    expected: self.take as u64,
                    got: self.pos as u64,
                });
                false
            }
            Ok(chunk) => {
                self.chunk.clear();
                self.chunk.extend_from_slice(chunk);
                self.chunk_pos = 0;
                true
            }
            Err(e) => {
                self.fault = Some(e);
                false
            }
        }
    }
}

impl TraceSource for TraceFileSource {
    fn name(&self) -> &str {
        self.reader.name()
    }

    fn format(&self) -> TraceFormat {
        self.reader.format()
    }

    fn total_records(&self) -> usize {
        self.take
    }

    fn next_chunk(&mut self) -> &[InstrRecord] {
        let limit = self.fence.min(self.take);
        if self.fault.is_some() || self.pos >= limit {
            return &[];
        }
        if self.chunk_pos >= self.chunk.len() && !self.refill() {
            return &[];
        }
        // A file chunk that straddles the fence (or the prefix end) is
        // delivered piecewise: the remainder stays staged for the next
        // region, which is what makes the split chunk-boundary-agnostic.
        let n = (self.chunk.len() - self.chunk_pos).min(limit - self.pos);
        let start = self.chunk_pos;
        self.chunk_pos += n;
        self.pos += n;
        &self.chunk[start..start + n]
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn split_at(&mut self, at: usize) {
        self.fence = at.clamp(self.pos, self.take);
    }

    fn skip(&mut self, n: usize) {
        let target = self.pos.saturating_add(n).min(self.take);
        while self.pos < target && self.fault.is_none() {
            if self.chunk_pos >= self.chunk.len() && !self.refill() {
                break;
            }
            let step = (self.chunk.len() - self.chunk_pos).min(target - self.pos);
            self.chunk_pos += step;
            self.pos += step;
        }
        self.fence = self.fence.max(self.pos);
    }
}

/// `read_exact` that maps an early end-of-file to [`CodecError::Truncated`]
/// with the given progress context.
fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    expected: u64,
    got: u64,
) -> Result<(), CodecError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CodecError::Truncated { expected, got }
        } else {
            CodecError::Io(e)
        }
    })
}

/// Writes to `path` atomically (via a same-directory temporary file and
/// rename), so concurrent writers — processes *or* threads — sharing a trace
/// store never expose a half-written file at the final path. The create,
/// every buffered write, and the committing rename all go through `policy`;
/// on any failure the temporary file is cleaned up (best effort, un-policed
/// — injecting on the cleanup of an already-failed save would only leave the
/// same debris a crashed process leaves, which readers already ignore).
fn atomic_save(
    path: &Path,
    policy: &IoPolicy,
    write: impl FnOnce(&mut BufWriter<PolicedWrite<File>>) -> io::Result<()>,
) -> io::Result<()> {
    // The temporary name must be unique per writer, not just per process:
    // two threads saving the same store entry would otherwise share the
    // temporary file and could rename a half-rewritten inode into place.
    static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let writer = WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{writer}", std::process::id()));
    let result = (|| {
        let mut w = BufWriter::new(policy.writer(policy.create(&tmp)?));
        match write(&mut w).and_then(|()| w.flush()) {
            Ok(()) => policy.rename(&tmp, path),
            Err(e) => {
                // Discard the buffered tail: `BufWriter`'s drop would
                // silently retry writing it to a file this function is
                // about to delete.
                let _ = w.into_parts();
                Err(e)
            }
        }
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Writes `trace` to `path` atomically (see [`atomic_save`]).
pub fn save_trace(path: &Path, trace: &Trace) -> io::Result<()> {
    save_trace_with(path, trace, &IoPolicy::none())
}

/// [`save_trace`] with every filesystem operation routed through `policy`.
pub fn save_trace_with(path: &Path, trace: &Trace, policy: &IoPolicy) -> io::Result<()> {
    atomic_save(path, policy, |w| write_trace(w, trace))
}

/// Drains `source` to `path` atomically, chunk by chunk: the streaming twin
/// of [`save_trace`], persisting (for example) a resumable
/// [`TraceStream`](crate::TraceStream) without ever materializing the full
/// record array. Oversized producer chunks (a materialized cursor yields its
/// whole window as one chunk) are re-framed to the format's
/// [`CHUNK_RECORDS`] bound.
///
/// # Errors
///
/// Besides writer errors, returns `InvalidData` if the source delivers fewer
/// records than [`TraceSource::total_records`] promised (the partial file is
/// discarded, never renamed into place), and `InvalidInput` for an over-long
/// name as [`write_trace`] does.
pub fn save_source<S: TraceSource>(path: &Path, source: &mut S) -> io::Result<()> {
    save_source_with(path, source, &IoPolicy::none())
}

/// [`save_source`] with every filesystem operation routed through `policy`.
///
/// # Errors
///
/// Everything [`save_source`] reports, plus whatever `policy` injects.
pub fn save_source_with<S: TraceSource>(
    path: &Path,
    source: &mut S,
    policy: &IoPolicy,
) -> io::Result<()> {
    atomic_save(path, policy, |w| {
        w.write_all(&source.format().magic())?;
        let name = source.name().as_bytes().to_vec();
        if name.len() as u64 > u64::from(MAX_NAME_BYTES) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "trace name of {} bytes exceeds {MAX_NAME_BYTES}",
                    name.len()
                ),
            ));
        }
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(&name)?;
        let promised = source.total_records() as u64;
        w.write_all(&promised.to_le_bytes())?;

        let mut written = 0u64;
        let mut bytes = Vec::with_capacity(CHUNK_RECORDS * ENCODED_RECORD_BYTES);
        loop {
            let chunk = source.next_chunk();
            if chunk.is_empty() {
                break;
            }
            for frame in chunk.chunks(CHUNK_RECORDS) {
                w.write_all(&(frame.len() as u32).to_le_bytes())?;
                bytes.clear();
                for record in frame {
                    bytes.extend_from_slice(&record.encode());
                }
                w.write_all(&bytes)?;
                written += frame.len() as u64;
            }
        }
        if written != promised {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("source promised {promised} records but delivered {written}"),
            ));
        }
        Ok(())
    })
}

/// Reads a trace from `path` (see [`read_trace`]).
///
/// # Errors
///
/// Returns a [`CodecError`] if the file is missing, unreadable or malformed.
pub fn load_trace(path: &Path) -> Result<Trace, CodecError> {
    load_trace_with(path, &IoPolicy::none())
}

/// [`load_trace`] with the open and every read routed through `policy`.
///
/// # Errors
///
/// Everything [`load_trace`] reports, plus whatever `policy` injects
/// (surfacing as [`CodecError::Io`]).
pub fn load_trace_with(path: &Path, policy: &IoPolicy) -> Result<Trace, CodecError> {
    let mut r = BufReader::new(policy.reader(policy.open(path)?));
    read_trace(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::spec;

    fn sample(n: usize) -> Trace {
        TraceGenerator::new(spec::compress(), 11).generate(n)
    }

    fn encode(trace: &Trace) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, trace).expect("vec writes cannot fail");
        bytes
    }

    #[test]
    fn round_trips_through_memory() {
        // Cover the empty, sub-chunk and multi-chunk cases.
        for n in [0usize, 1, 1000, CHUNK_RECORDS + 17] {
            let trace = sample(n);
            let decoded = read_trace(&mut encode(&trace).as_slice()).expect("round trip");
            assert_eq!(decoded, trace, "{n} records");
        }
    }

    #[test]
    fn both_format_versions_round_trip_and_are_preserved() {
        for format in TraceFormat::ALL {
            let trace = TraceGenerator::new(spec::compress(), 11)
                .with_format(format)
                .generate(500);
            assert_eq!(trace.format(), format);
            let bytes = encode(&trace);
            assert_eq!(&bytes[..8], &format.magic(), "magic carries the version");
            let decoded = read_trace(&mut bytes.as_slice()).expect("round trip");
            assert_eq!(decoded.format(), format);
            assert_eq!(decoded, trace);
        }
    }

    #[test]
    fn unknown_version_is_a_typed_error() {
        let mut bytes = encode(&sample(100));
        bytes[7] = b'9';
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::UnsupportedVersion { version: b'9' })
        ));
        // A broken prefix is still BadMagic, not UnsupportedVersion.
        bytes[0] ^= 0xff;
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn mixed_version_open_is_rejected_with_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("rescache-codec-mixed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        for (written, requested) in [
            (TraceFormat::V1, TraceFormat::V2),
            (TraceFormat::V2, TraceFormat::V1),
        ] {
            let path = dir.join(format!("{written}.rctrace"));
            let trace = TraceGenerator::new(spec::compress(), 11)
                .with_format(written)
                .generate(300);
            save_trace(&path, &trace).expect("save");
            // The matching expectation opens fine...
            let src = TraceFileSource::open_expecting(&path, None, written).expect("same version");
            assert_eq!(src.format(), written);
            // ...the mixed one is a typed rejection, not a panic or a
            // silently-wrong stream.
            let err = TraceFileSource::open_expecting(&path, None, requested).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::FormatMismatch { expected, found }
                        if expected == requested && found == written
                ),
                "{written}->{requested}: {err}"
            );
            // The version-agnostic open still works and reports the version.
            assert_eq!(
                TraceFileSource::open(&path, None)
                    .expect("any version")
                    .format(),
                written
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn round_trips_through_a_file() {
        let dir = std::env::temp_dir().join(format!("rescache-codec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("compress.rctrace");
        let trace = sample(5_000);
        save_trace(&path, &trace).expect("save");
        let decoded = load_trace(&path).expect("load");
        assert_eq!(decoded, trace);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = load_trace(Path::new("/nonexistent/rescache.rctrace")).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));
    }

    #[test]
    fn bad_magic_is_an_error() {
        let mut bytes = encode(&sample(100));
        bytes[0] ^= 0xff;
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = encode(&sample(1000));
        // Cut the file at every structurally interesting prefix length.
        for cut in [0, 4, 8, 10, 20, 30, bytes.len() / 2, bytes.len() - 1] {
            let err = read_trace(&mut &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_record_tag_is_an_error() {
        let trace = sample(100);
        let mut bytes = encode(&trace);
        // Locate the first record's tag byte: magic(8) + name_len(4) +
        // name + count(8) + chunk_len(4) + 8 bytes into the record.
        let offset = 8 + 4 + trace.name().len() + 8 + 4 + 8;
        bytes[offset] = 0xee;
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadRecord(_))
        ));
    }

    #[test]
    fn impossible_chunk_header_is_an_error() {
        let trace = sample(100);
        let mut bytes = encode(&trace);
        let chunk_header = 8 + 4 + trace.name().len() + 8;
        bytes[chunk_header..chunk_header + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadChunk { .. })
        ));
    }

    #[test]
    fn over_long_name_is_rejected_at_write_time() {
        use crate::record::{InstrRecord, Op};
        let trace = Trace::new(
            "n".repeat(MAX_NAME_BYTES as usize + 1),
            vec![InstrRecord::new(0x400, Op::Int)],
        );
        let mut bytes = Vec::new();
        let err = write_trace(&mut bytes, &trace).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn concurrent_saves_of_one_entry_never_expose_a_torn_file() {
        let dir = std::env::temp_dir().join(format!("rescache-codec-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("entry.rctrace");
        let trace = sample(2_000);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        save_trace(&path, &trace).expect("save");
                        let loaded = load_trace(&path).expect("load during races");
                        assert_eq!(loaded, trace);
                    }
                });
            }
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_name_is_an_error() {
        let mut bytes = encode(&sample(10));
        bytes[8..12].copy_from_slice(&(MAX_NAME_BYTES + 1).to_le_bytes());
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadName)
        ));
    }

    #[test]
    fn chunked_reader_delivers_the_exact_sequence() {
        let trace = sample(2 * CHUNK_RECORDS + 321);
        let bytes = encode(&trace);
        let mut reader = ChunkedTraceReader::new(bytes.as_slice()).expect("header");
        assert_eq!(reader.name(), trace.name());
        assert_eq!(reader.total_records(), trace.len() as u64);
        let mut records = Vec::new();
        loop {
            let chunk = reader.next_chunk().expect("chunk");
            if chunk.is_empty() {
                break;
            }
            assert!(chunk.len() <= CHUNK_RECORDS);
            records.extend_from_slice(chunk);
        }
        assert_eq!(records, trace.records());
        assert_eq!(reader.delivered(), trace.len() as u64);
        // Exhausted readers keep returning empty chunks.
        assert!(reader.next_chunk().expect("past end").is_empty());
    }

    #[test]
    fn prefix_serving_is_chunk_granular() {
        let dir =
            std::env::temp_dir().join(format!("rescache-codec-prefix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("compress.rctrace");
        let trace = sample(2 * CHUNK_RECORDS + 100);
        save_trace(&path, &trace).expect("save");

        let drain_prefix = |n: usize| {
            let mut source = TraceFileSource::open(&path, Some(n)).expect("open prefix");
            let mut records = Vec::with_capacity(n);
            loop {
                let chunk = source.next_chunk();
                if chunk.is_empty() {
                    break;
                }
                records.extend_from_slice(chunk);
            }
            assert!(source.fault().is_none(), "{:?}", source.fault());
            records
        };

        // A mid-chunk prefix delivers exactly the requested records.
        let n = CHUNK_RECORDS + 17;
        assert_eq!(drain_prefix(n), &trace.records()[..n]);

        // Corruption *beyond* the requested prefix is never read: flip a
        // record tag in the last chunk and the prefix still serves cleanly.
        let mut bytes = std::fs::read(&path).expect("read");
        let tail_record = bytes.len() - ENCODED_RECORD_BYTES + 8;
        bytes[tail_record] = 0xee;
        std::fs::write(&path, &bytes).expect("corrupt tail");
        assert_eq!(drain_prefix(n), &trace.records()[..n]);
        // ... but the full load now fails.
        assert!(matches!(load_trace(&path), Err(CodecError::BadRecord(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_source_replays_and_splits_across_chunk_boundaries() {
        let dir = std::env::temp_dir().join(format!("rescache-codec-fsrc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("compress.rctrace");
        let trace = sample(2 * CHUNK_RECORDS + 50);
        save_trace(&path, &trace).expect("save");

        // Whole-file replay.
        let mut src = TraceFileSource::open(&path, None).expect("open");
        assert_eq!(src.name(), trace.name());
        assert_eq!(src.total_records(), trace.len());
        let mut records = Vec::new();
        loop {
            let chunk = src.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records.extend_from_slice(chunk);
        }
        assert_eq!(records, trace.records());
        assert!(src.fault().is_none());

        // Prefix serving plus a split point that lands mid-chunk: the two
        // regions concatenate to the exact prefix.
        let take = CHUNK_RECORDS + 300;
        let split = CHUNK_RECORDS / 2 + 3;
        let mut src = TraceFileSource::open(&path, Some(take)).expect("open prefix");
        assert_eq!(src.total_records(), take);
        src.split_at(split);
        let mut records = Vec::new();
        loop {
            let chunk = src.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records.extend_from_slice(chunk);
        }
        assert_eq!(src.position(), split);
        src.split_at(take);
        loop {
            let chunk = src.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records.extend_from_slice(chunk);
        }
        assert_eq!(records, &trace.records()[..take]);

        // skip() drops records and keeps delivering the right suffix.
        let mut src = TraceFileSource::open(&path, None).expect("open for skip");
        src.skip(split);
        assert_eq!(src.next_chunk()[0], trace.records()[split]);

        // A request longer than the file is rejected at open time.
        assert!(matches!(
            TraceFileSource::open(&path, Some(trace.len() + 1)),
            Err(CodecError::Truncated { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_source_records_a_fault_instead_of_panicking() {
        let dir = std::env::temp_dir().join(format!("rescache-codec-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("compress.rctrace");
        let trace = sample(2 * CHUNK_RECORDS);
        save_trace(&path, &trace).expect("save");

        // Corrupt a record tag in the second chunk: the source delivers the
        // first chunk, then faults and under-delivers.
        let mut bytes = std::fs::read(&path).expect("read");
        let second_chunk_record =
            8 + 4 + trace.name().len() + 8 + 4 + CHUNK_RECORDS * ENCODED_RECORD_BYTES + 4 + 8;
        bytes[second_chunk_record] = 0xee;
        std::fs::write(&path, &bytes).expect("corrupt");

        let mut src = TraceFileSource::open(&path, None).expect("header is intact");
        let mut delivered = 0;
        loop {
            let chunk = src.next_chunk();
            if chunk.is_empty() {
                break;
            }
            delivered += chunk.len();
        }
        assert_eq!(delivered, CHUNK_RECORDS, "only the intact chunk arrives");
        assert!(matches!(src.fault(), Some(CodecError::BadRecord(_))));
        // Once faulted, the source stays exhausted.
        assert!(src.next_chunk().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_source_streams_a_generator_to_the_identical_file_contents() {
        let dir =
            std::env::temp_dir().join(format!("rescache-codec-savesrc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let n = CHUNK_RECORDS + 999;
        let generator = TraceGenerator::new(spec::compress(), 11);

        let streamed_path = dir.join("streamed.rctrace");
        let mut stream = generator.stream(n);
        save_source(&streamed_path, &mut stream).expect("stream to disk");

        let materialized_path = dir.join("materialized.rctrace");
        save_trace(&materialized_path, &generator.generate(n)).expect("save");

        assert_eq!(
            std::fs::read(&streamed_path).expect("streamed bytes"),
            std::fs::read(&materialized_path).expect("materialized bytes"),
            "byte-identical persistence either way"
        );

        // An under-delivering source (fenced short) must not produce a file.
        let missing = dir.join("underdelivered.rctrace");
        let mut fenced = generator.stream(n);
        fenced.split_at(100);
        let err = save_source(&missing, &mut fenced).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!missing.exists(), "partial file never renamed into place");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_faults_surface_through_the_policed_codec_paths() {
        use crate::faults::{FaultInjector, FaultKind, IoOp, ScriptedFault};
        use std::sync::Arc;

        let dir =
            std::env::temp_dir().join(format!("rescache-codec-inject-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("entry.rctrace");
        let trace = sample(2 * CHUNK_RECORDS);

        // A write fault aborts the save and leaves no file (and no debris at
        // the final path).
        let injector = Arc::new(FaultInjector::scripted([ScriptedFault {
            op: IoOp::Write,
            kind: FaultKind::Transient,
        }]));
        let policy = IoPolicy::with_injector(Arc::clone(&injector));
        let err = save_trace_with(&path, &trace, &policy).unwrap_err();
        assert!(crate::faults::is_transient(&err));
        assert!(!path.exists(), "failed save leaves nothing at the path");

        // A rename fault likewise: the payload was fully written to the
        // temporary file, but it is never committed.
        injector.push(ScriptedFault {
            op: IoOp::Rename,
            kind: FaultKind::DiskFull,
        });
        let err = save_trace_with(&path, &trace, &policy).unwrap_err();
        assert!(crate::faults::is_disk_full(&err));
        assert!(!path.exists());

        // With the script drained the same policy saves cleanly, and a read
        // fault mid-replay surfaces as a recorded source fault — the same
        // degradation path a truncated entry takes.
        save_trace_with(&path, &trace, &policy).expect("clean save");
        // Open first (the header read passes), then inject: the fault lands
        // mid-replay rather than at open time.
        let mut src = TraceFileSource::open_with(&path, None, &policy).expect("open");
        injector.push(ScriptedFault {
            op: IoOp::Read,
            kind: FaultKind::Transient,
        });
        let mut delivered = 0;
        loop {
            let chunk = src.next_chunk();
            if chunk.is_empty() {
                break;
            }
            delivered += chunk.len();
        }
        assert!(
            delivered < trace.len(),
            "the injected read cut replay short"
        );
        assert!(
            matches!(src.fault(), Some(CodecError::Io(e)) if crate::faults::is_transient(e)),
            "{:?}",
            src.fault()
        );

        // load_trace_with reports the injected error as CodecError::Io.
        injector.push(ScriptedFault {
            op: IoOp::Open,
            kind: FaultKind::Transient,
        });
        assert!(matches!(
            load_trace_with(&path, &policy),
            Err(CodecError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_format_and_chain() {
        let err = CodecError::from(io::Error::other("boom"));
        assert!(err.to_string().contains("boom"));
        assert!(std::error::Error::source(&err).is_some());
        let err = CodecError::Truncated {
            expected: 10,
            got: 3,
        };
        assert!(err.to_string().contains("truncated"));
    }
}
