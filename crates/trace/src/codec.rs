//! Length-prefixed binary codec for traces: the persistence format of the
//! experiment trace store.
//!
//! Trace generation is deterministic but not free (it is the slowest single
//! stage of a cold sweep), so multi-process experiment campaigns persist
//! generated traces under `RESCACHE_TRACE_DIR` and replay them from disk. The
//! format is deliberately simple — no compression, no seeking:
//!
//! ```text
//! magic      8 bytes   b"RCTRACE1"
//! name_len   4 bytes   u32 LE, at most MAX_NAME_BYTES
//! name       n bytes   UTF-8 application name
//! records    8 bytes   u64 LE total record count
//! chunk*                repeated until `records` records have been read:
//!   len      4 bytes   u32 LE records in this chunk (1 ..= CHUNK_RECORDS)
//!   data     len × 12  encoded records (see `InstrRecord::encode`)
//! ```
//!
//! Readers validate everything they touch and return a [`CodecError`] —
//! never panic — on truncated, corrupt or foreign files, so a store
//! populated by a crashed or concurrent process degrades to regeneration
//! rather than an aborted sweep.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::record::{InstrRecord, InvalidRecord, ENCODED_RECORD_BYTES};
use crate::source::CHUNK_RECORDS;
use crate::trace::Trace;

/// File magic identifying the trace format (and its version).
pub const MAGIC: [u8; 8] = *b"RCTRACE1";

/// Upper bound on the encoded application-name length.
pub const MAX_NAME_BYTES: u32 = 4 * 1024;

/// Error produced when decoding a persisted trace.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The application name is over-long or not UTF-8.
    BadName,
    /// A chunk header is impossible (zero, over-long, or exceeding the
    /// remaining record count).
    BadChunk {
        /// The rejected chunk length.
        len: u32,
        /// Records still expected when the chunk header was read.
        remaining: u64,
    },
    /// A record payload failed to decode.
    BadRecord(InvalidRecord),
    /// The file ended before the promised record count was delivered.
    Truncated {
        /// Records promised by the header.
        expected: u64,
        /// Records successfully decoded before the end of the file.
        got: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "trace codec i/o error: {e}"),
            CodecError::BadMagic => write!(f, "not a rescache trace file (bad magic)"),
            CodecError::BadName => write!(f, "trace file has an invalid application name"),
            CodecError::BadChunk { len, remaining } => write!(
                f,
                "trace file has an invalid chunk header (len {len}, {remaining} records remaining)"
            ),
            CodecError::BadRecord(e) => write!(f, "trace file has a corrupt record: {e}"),
            CodecError::Truncated { expected, got } => write!(
                f,
                "trace file is truncated: expected {expected} records, decoded {got}"
            ),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            CodecError::BadRecord(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

impl From<InvalidRecord> for CodecError {
    fn from(e: InvalidRecord) -> Self {
        CodecError::BadRecord(e)
    }
}

/// Writes `trace` to `w` in the format described at module level.
///
/// # Errors
///
/// Besides writer errors, returns `InvalidInput` for a trace whose name
/// exceeds [`MAX_NAME_BYTES`] — a reader would reject such a file, so it
/// must never be produced.
pub fn write_trace<W: Write>(w: &mut W, trace: &Trace) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    let name = trace.name().as_bytes();
    if name.len() as u64 > u64::from(MAX_NAME_BYTES) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "trace name of {} bytes exceeds {MAX_NAME_BYTES}",
                name.len()
            ),
        ));
    }
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;

    let mut bytes = Vec::with_capacity(CHUNK_RECORDS * ENCODED_RECORD_BYTES);
    for chunk in trace.records().chunks(CHUNK_RECORDS) {
        w.write_all(&(chunk.len() as u32).to_le_bytes())?;
        bytes.clear();
        for record in chunk {
            bytes.extend_from_slice(&record.encode());
        }
        w.write_all(&bytes)?;
    }
    Ok(())
}

/// Reads a trace from `r`, validating the format end to end.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream is not a well-formed trace file;
/// truncation, unknown record tags and impossible chunk headers are all
/// reported as errors rather than panics.
pub fn read_trace<R: Read>(r: &mut R) -> Result<Trace, CodecError> {
    let mut magic = [0u8; 8];
    read_header(r, &mut magic, 0, 0)?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic);
    }

    let mut len4 = [0u8; 4];
    read_header(r, &mut len4, 0, 0)?;
    let name_len = u32::from_le_bytes(len4);
    if name_len > MAX_NAME_BYTES {
        return Err(CodecError::BadName);
    }
    let mut name_bytes = vec![0u8; name_len as usize];
    read_header(r, &mut name_bytes, 0, 0)?;
    let name = String::from_utf8(name_bytes).map_err(|_| CodecError::BadName)?;

    let mut len8 = [0u8; 8];
    read_header(r, &mut len8, 0, 0)?;
    let expected = u64::from_le_bytes(len8);

    let mut records: Vec<InstrRecord> = Vec::new();
    let mut chunk_bytes = vec![0u8; CHUNK_RECORDS * ENCODED_RECORD_BYTES];
    let mut remaining = expected;
    while remaining > 0 {
        read_header(r, &mut len4, expected, expected - remaining)?;
        let len = u32::from_le_bytes(len4);
        if len == 0 || len as usize > CHUNK_RECORDS || u64::from(len) > remaining {
            return Err(CodecError::BadChunk { len, remaining });
        }
        let byte_len = len as usize * ENCODED_RECORD_BYTES;
        read_header(
            r,
            &mut chunk_bytes[..byte_len],
            expected,
            expected - remaining,
        )?;
        // Grow lazily (bounded by what the file actually delivers) so a
        // corrupt record count cannot force an absurd up-front allocation.
        records.reserve(len as usize);
        for encoded in chunk_bytes[..byte_len].chunks_exact(ENCODED_RECORD_BYTES) {
            let bytes: &[u8; ENCODED_RECORD_BYTES] = encoded
                .try_into()
                .expect("chunks_exact yields exact arrays");
            records.push(InstrRecord::decode(bytes)?);
        }
        remaining -= u64::from(len);
    }
    Ok(Trace::new(name, records))
}

/// `read_exact` that maps an early end-of-file to [`CodecError::Truncated`]
/// with the given progress context.
fn read_header<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    expected: u64,
    got: u64,
) -> Result<(), CodecError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CodecError::Truncated { expected, got }
        } else {
            CodecError::Io(e)
        }
    })
}

/// Writes `trace` to `path` atomically (via a same-directory temporary file
/// and rename), so concurrent writers — processes *or* threads — sharing a
/// trace store never expose a half-written file at the final path.
pub fn save_trace(path: &Path, trace: &Trace) -> io::Result<()> {
    // The temporary name must be unique per writer, not just per process:
    // two threads saving the same store entry would otherwise share the
    // temporary file and could rename a half-rewritten inode into place.
    static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let writer = WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{writer}", std::process::id()));
    let result = (|| {
        let mut w = BufWriter::new(File::create(&tmp)?);
        write_trace(&mut w, trace)?;
        w.flush()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads a trace from `path` (see [`read_trace`]).
///
/// # Errors
///
/// Returns a [`CodecError`] if the file is missing, unreadable or malformed.
pub fn load_trace(path: &Path) -> Result<Trace, CodecError> {
    let mut r = BufReader::new(File::open(path)?);
    read_trace(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::spec;

    fn sample(n: usize) -> Trace {
        TraceGenerator::new(spec::compress(), 11).generate(n)
    }

    fn encode(trace: &Trace) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, trace).expect("vec writes cannot fail");
        bytes
    }

    #[test]
    fn round_trips_through_memory() {
        // Cover the empty, sub-chunk and multi-chunk cases.
        for n in [0usize, 1, 1000, CHUNK_RECORDS + 17] {
            let trace = sample(n);
            let decoded = read_trace(&mut encode(&trace).as_slice()).expect("round trip");
            assert_eq!(decoded, trace, "{n} records");
        }
    }

    #[test]
    fn round_trips_through_a_file() {
        let dir = std::env::temp_dir().join(format!("rescache-codec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("compress.rctrace");
        let trace = sample(5_000);
        save_trace(&path, &trace).expect("save");
        let decoded = load_trace(&path).expect("load");
        assert_eq!(decoded, trace);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = load_trace(Path::new("/nonexistent/rescache.rctrace")).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));
    }

    #[test]
    fn bad_magic_is_an_error() {
        let mut bytes = encode(&sample(100));
        bytes[0] ^= 0xff;
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = encode(&sample(1000));
        // Cut the file at every structurally interesting prefix length.
        for cut in [0, 4, 8, 10, 20, 30, bytes.len() / 2, bytes.len() - 1] {
            let err = read_trace(&mut &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_record_tag_is_an_error() {
        let trace = sample(100);
        let mut bytes = encode(&trace);
        // Locate the first record's tag byte: magic(8) + name_len(4) +
        // name + count(8) + chunk_len(4) + 8 bytes into the record.
        let offset = 8 + 4 + trace.name().len() + 8 + 4 + 8;
        bytes[offset] = 0xee;
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadRecord(_))
        ));
    }

    #[test]
    fn impossible_chunk_header_is_an_error() {
        let trace = sample(100);
        let mut bytes = encode(&trace);
        let chunk_header = 8 + 4 + trace.name().len() + 8;
        bytes[chunk_header..chunk_header + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadChunk { .. })
        ));
    }

    #[test]
    fn over_long_name_is_rejected_at_write_time() {
        use crate::record::{InstrRecord, Op};
        let trace = Trace::new(
            "n".repeat(MAX_NAME_BYTES as usize + 1),
            vec![InstrRecord::new(0x400, Op::Int)],
        );
        let mut bytes = Vec::new();
        let err = write_trace(&mut bytes, &trace).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn concurrent_saves_of_one_entry_never_expose_a_torn_file() {
        let dir = std::env::temp_dir().join(format!("rescache-codec-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("entry.rctrace");
        let trace = sample(2_000);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        save_trace(&path, &trace).expect("save");
                        let loaded = load_trace(&path).expect("load during races");
                        assert_eq!(loaded, trace);
                    }
                });
            }
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_name_is_an_error() {
        let mut bytes = encode(&sample(10));
        bytes[8..12].copy_from_slice(&(MAX_NAME_BYTES + 1).to_le_bytes());
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadName)
        ));
    }

    #[test]
    fn errors_format_and_chain() {
        let err = CodecError::from(io::Error::other("boom"));
        assert!(err.to_string().contains("boom"));
        assert!(std::error::Error::source(&err).is_some());
        let err = CodecError::Truncated {
            expected: 10,
            got: 3,
        };
        assert!(err.to_string().contains("truncated"));
    }
}
