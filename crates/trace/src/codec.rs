//! Length-prefixed binary codec for traces: the persistence format of the
//! experiment trace store.
//!
//! Trace generation is deterministic but not free (it is the slowest single
//! stage of a cold sweep), so multi-process experiment campaigns persist
//! generated traces under `RESCACHE_TRACE_DIR` and replay them from disk.
//! The v1/v2 container is deliberately simple — no compression, no seeking:
//!
//! ```text
//! magic      8 bytes   b"RCTRACE" + version digit (b"RCTRACE1", b"RCTRACE2")
//! name_len   4 bytes   u32 LE, at most MAX_NAME_BYTES
//! name       n bytes   UTF-8 application name
//! records    8 bytes   u64 LE total record count
//! chunk*                repeated until `records` records have been read:
//!   len      4 bytes   u32 LE records in this chunk (1 ..= CHUNK_RECORDS)
//!   data     len × 12  encoded records (see `InstrRecord::encode`)
//! ```
//!
//! The v3 container (`b"RCTRACE3"`) adds one `flags` byte after the magic
//! and, when its compression bit is set (the default — see [`Compression`]
//! and the `RESCACHE_STORE_COMPRESS` override), frames each chunk with an
//! explicit byte length over a delta-compressed payload (see [`crate::compress`]
//! internals for the per-record layout):
//!
//! ```text
//! magic      8 bytes   b"RCTRACE3"
//! flags      1 byte    bit 0: chunks are delta compressed;
//!                      any other bit set is UnsupportedFlags
//! name_len   4 bytes   u32 LE, at most MAX_NAME_BYTES
//! name       n bytes   UTF-8 application name
//! records    8 bytes   u64 LE total record count
//! chunk*                repeated until `records` records have been read:
//!   len      4 bytes   u32 LE records in this chunk (1 ..= CHUNK_RECORDS)
//!   bytes    4 bytes   u32 LE payload length (3×len ..= 13×len)
//!   data     bytes     compressed records, delta bases reset per chunk
//! ```
//!
//! The magic's trailing digit is the [`TraceFormat`] version of the records
//! (which generation algorithm produced the bits — see [`crate::format`]).
//! Every known version decodes; a reader that *expects* a particular
//! version ([`TraceFileSource::open_expecting`]) rejects a mismatch with the
//! typed [`CodecError::FormatMismatch`], and an unknown version digit is
//! [`CodecError::UnsupportedVersion`] — mixed-version reads fail loudly and
//! typed, never silently and never by panic.
//!
//! Readers validate everything else they touch the same way and return a
//! [`CodecError`] — never panic — on truncated, corrupt or foreign files, so
//! a store populated by a crashed or concurrent process degrades to
//! regeneration rather than an aborted sweep.
//!
//! The per-chunk framing is what makes the store's streaming and sharing
//! features chunk-granular: [`ChunkedTraceReader`] decodes one chunk at a
//! time (nothing else resident), [`TraceFileSource`] adapts that reader to
//! the [`TraceSource`] pull interface so simulations replay straight from
//! disk (including serving only a leading prefix of a longer entry), and
//! [`save_source`] persists a streaming generator without ever holding the
//! full record array.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::compress;
use crate::faults::{IoPolicy, PolicedRead, PolicedWrite};
use crate::format::TraceFormat;
use crate::record::{InstrRecord, InvalidRecord, ENCODED_RECORD_BYTES};
use crate::source::{TraceSource, CHUNK_RECORDS};
use crate::trace::Trace;

pub use crate::compress::{CorruptChunk, UnencodableRecord};

/// Version-independent prefix of every trace-file magic; the eighth byte is
/// the [`TraceFormat`] version digit (see [`TraceFormat::magic`]).
pub const MAGIC_PREFIX: [u8; 7] = *b"RCTRACE";

/// Upper bound on the encoded application-name length.
pub const MAX_NAME_BYTES: u32 = 4 * 1024;

/// Chunk-payload encoding of a persisted v3 trace.
///
/// v1/v2 containers are always raw (their layout predates the flags byte);
/// a v3 writer chooses per file, recording the choice in the header's flags
/// byte so readers self-describe — the two encodings decode to identical
/// records and identical chunk boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Delta-compressed chunk payloads (the default): ≥2× smaller
    /// files and record decode straight into the consumer's batch lanes.
    #[default]
    Delta,
    /// Raw 12-byte records, framed exactly as the v1/v2 container.
    Raw,
}

impl Compression {
    /// Reads the `RESCACHE_STORE_COMPRESS` override used by the experiment
    /// trace store: `0`, `off` or `raw` selects [`Compression::Raw`];
    /// anything else — including unset — keeps the default
    /// [`Compression::Delta`].
    pub fn from_env() -> Self {
        match std::env::var("RESCACHE_STORE_COMPRESS").as_deref() {
            Ok("0") | Ok("off") | Ok("raw") => Compression::Raw,
            _ => Compression::Delta,
        }
    }

    /// The v3 header flags byte announcing this encoding.
    fn flags(self) -> u8 {
        match self {
            Compression::Delta => 1,
            Compression::Raw => 0,
        }
    }

    /// Decodes a v3 header flags byte; `None` for any unknown bit.
    fn from_flags(flags: u8) -> Option<Self> {
        match flags {
            0 => Some(Compression::Raw),
            1 => Some(Compression::Delta),
            _ => None,
        }
    }
}

/// Error produced when decoding a persisted trace.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC_PREFIX`] — not a rescache trace
    /// at all.
    BadMagic,
    /// The magic names a trace-format version this build does not know.
    UnsupportedVersion {
        /// The unrecognized version byte from the magic.
        version: u8,
    },
    /// The file is a valid trace of a *different* [`TraceFormat`] than the
    /// reader asked for: the two bit streams must never mix, so the read is
    /// rejected rather than silently served.
    FormatMismatch {
        /// The version the reader required.
        expected: TraceFormat,
        /// The version the file's magic carries.
        found: TraceFormat,
    },
    /// The v3 header's flags byte sets a bit this build does not know —
    /// a future encoding must be regenerated, not half-decoded.
    UnsupportedFlags {
        /// The rejected flags byte.
        flags: u8,
    },
    /// The application name is over-long or not UTF-8.
    BadName,
    /// A chunk header is impossible (zero, over-long, or exceeding the
    /// remaining record count).
    BadChunk {
        /// The rejected chunk length.
        len: u32,
        /// Records still expected when the chunk header was read.
        remaining: u64,
    },
    /// A compressed chunk's byte length is impossible for its record count
    /// (the chunk directory points at the wrong place).
    BadChunkBytes {
        /// Records the chunk header promises.
        len: u32,
        /// The impossible payload byte length.
        byte_len: u32,
    },
    /// A compressed chunk payload failed to decode.
    BadPayload(CorruptChunk),
    /// A record payload failed to decode.
    BadRecord(InvalidRecord),
    /// The file ended before the promised record count was delivered.
    Truncated {
        /// Records promised by the header.
        expected: u64,
        /// Records successfully decoded before the end of the file.
        got: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "trace codec i/o error: {e}"),
            CodecError::BadMagic => write!(f, "not a rescache trace file (bad magic)"),
            CodecError::UnsupportedVersion { version } => write!(
                f,
                "trace file has an unsupported format version byte {version:#04x}"
            ),
            CodecError::FormatMismatch { expected, found } => write!(
                f,
                "trace file is format {found} but the reader requires {expected}"
            ),
            CodecError::UnsupportedFlags { flags } => write!(
                f,
                "trace file header has unsupported flags byte {flags:#04x}"
            ),
            CodecError::BadName => write!(f, "trace file has an invalid application name"),
            CodecError::BadChunk { len, remaining } => write!(
                f,
                "trace file has an invalid chunk header (len {len}, {remaining} records remaining)"
            ),
            CodecError::BadChunkBytes { len, byte_len } => write!(
                f,
                "trace file has an impossible compressed chunk ({len} records in {byte_len} bytes)"
            ),
            CodecError::BadPayload(e) => {
                write!(f, "trace file has a corrupt compressed chunk: {e}")
            }
            CodecError::BadRecord(e) => write!(f, "trace file has a corrupt record: {e}"),
            CodecError::Truncated { expected, got } => write!(
                f,
                "trace file is truncated: expected {expected} records, decoded {got}"
            ),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            CodecError::BadRecord(e) => Some(e),
            CodecError::BadPayload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CorruptChunk> for CodecError {
    fn from(e: CorruptChunk) -> Self {
        CodecError::BadPayload(e)
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

impl From<InvalidRecord> for CodecError {
    fn from(e: InvalidRecord) -> Self {
        CodecError::BadRecord(e)
    }
}

/// Writes `trace` to `w` in the format described at module level, with the
/// magic carrying the trace's own [`TraceFormat`] version.
///
/// # Errors
///
/// Besides writer errors, returns `InvalidInput` for a trace whose name
/// exceeds [`MAX_NAME_BYTES`] — a reader would reject such a file, so it
/// must never be produced.
pub fn write_trace<W: Write>(w: &mut W, trace: &Trace) -> io::Result<()> {
    write_trace_opts(w, trace, Compression::default())
}

/// [`write_trace`] with an explicit chunk-payload [`Compression`] (only
/// meaningful for v3 traces; v1/v2 containers are raw by definition).
///
/// # Errors
///
/// Everything [`write_trace`] reports, plus `InvalidInput` for a record the
/// compressed payload cannot represent (see [`UnencodableRecord`]).
pub fn write_trace_opts<W: Write>(
    w: &mut W,
    trace: &Trace,
    compression: Compression,
) -> io::Result<()> {
    write_header(
        w,
        trace.format(),
        compression,
        trace.name(),
        trace.len() as u64,
    )?;
    let mut chunks = ChunkWriter::new(trace.format(), compression);
    for chunk in trace.records().chunks(CHUNK_RECORDS) {
        chunks.write_chunk(w, chunk)?;
    }
    Ok(())
}

/// Writes the container header: magic, the v3 flags byte, name and record
/// count. Shared by the materialized and streaming save paths so the two
/// always produce byte-identical files.
fn write_header<W: Write>(
    w: &mut W,
    format: TraceFormat,
    compression: Compression,
    name: &str,
    records: u64,
) -> io::Result<()> {
    w.write_all(&format.magic())?;
    if format == TraceFormat::V3 {
        w.write_all(&[compression.flags()])?;
    }
    let name = name.as_bytes();
    if name.len() as u64 > u64::from(MAX_NAME_BYTES) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "trace name of {} bytes exceeds {MAX_NAME_BYTES}",
                name.len()
            ),
        ));
    }
    w.write_all(&(name.len() as u32).to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&records.to_le_bytes())?;
    Ok(())
}

/// Frames and writes record chunks in whichever encoding the header
/// announced, reusing one scratch buffer across chunks.
struct ChunkWriter {
    compressed: bool,
    bytes: Vec<u8>,
}

impl ChunkWriter {
    fn new(format: TraceFormat, compression: Compression) -> Self {
        Self {
            compressed: format == TraceFormat::V3 && compression == Compression::Delta,
            bytes: Vec::with_capacity(CHUNK_RECORDS * ENCODED_RECORD_BYTES),
        }
    }

    fn write_chunk<W: Write>(&mut self, w: &mut W, chunk: &[InstrRecord]) -> io::Result<()> {
        w.write_all(&(chunk.len() as u32).to_le_bytes())?;
        self.bytes.clear();
        if self.compressed {
            compress::encode_chunk(chunk, &mut self.bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            w.write_all(&(self.bytes.len() as u32).to_le_bytes())?;
        } else {
            for record in chunk {
                self.bytes.extend_from_slice(&record.encode());
            }
        }
        w.write_all(&self.bytes)
    }
}

/// An incremental reader over the persisted trace format: the header is
/// validated on construction, then [`ChunkedTraceReader::next_chunk`] decodes
/// one chunk at a time into an internal buffer, so a consumer that never
/// needs the whole trace resident (the store's streaming replay path) keeps
/// at most [`CHUNK_RECORDS`] decoded records alive.
#[derive(Debug)]
pub struct ChunkedTraceReader<R: Read> {
    r: R,
    name: String,
    format: TraceFormat,
    compression: Compression,
    total: u64,
    delivered: u64,
    buf: Vec<InstrRecord>,
    raw: Vec<u8>,
}

impl<R: Read> ChunkedTraceReader<R> {
    /// Reads and validates the stream header. Any known [`TraceFormat`]
    /// version is accepted and reported via [`ChunkedTraceReader::format`];
    /// callers that require one specific version check it (or use
    /// [`TraceFileSource::open_expecting`]).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for a missing magic, an unknown format
    /// version, an invalid name, or a reader failure.
    pub fn new(mut r: R) -> Result<Self, CodecError> {
        let mut magic = [0u8; 8];
        read_exact_or_truncated(&mut r, &mut magic, 0, 0)?;
        if magic[..7] != MAGIC_PREFIX {
            return Err(CodecError::BadMagic);
        }
        let format = TraceFormat::from_version_byte(magic[7])
            .ok_or(CodecError::UnsupportedVersion { version: magic[7] })?;
        let compression = if format == TraceFormat::V3 {
            let mut flags = [0u8; 1];
            read_exact_or_truncated(&mut r, &mut flags, 0, 0)?;
            Compression::from_flags(flags[0])
                .ok_or(CodecError::UnsupportedFlags { flags: flags[0] })?
        } else {
            Compression::Raw
        };

        let mut len4 = [0u8; 4];
        read_exact_or_truncated(&mut r, &mut len4, 0, 0)?;
        let name_len = u32::from_le_bytes(len4);
        if name_len > MAX_NAME_BYTES {
            return Err(CodecError::BadName);
        }
        let mut name_bytes = vec![0u8; name_len as usize];
        read_exact_or_truncated(&mut r, &mut name_bytes, 0, 0)?;
        let name = String::from_utf8(name_bytes).map_err(|_| CodecError::BadName)?;

        let mut len8 = [0u8; 8];
        read_exact_or_truncated(&mut r, &mut len8, 0, 0)?;
        let total = u64::from_le_bytes(len8);

        Ok(Self {
            r,
            name,
            format,
            compression,
            total,
            delivered: 0,
            buf: Vec::new(),
            raw: Vec::new(),
        })
    }

    /// The application name recorded in the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The [`TraceFormat`] version the header's magic carries.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// The chunk-payload encoding the header announced ([`Compression::Raw`]
    /// for every v1/v2 file).
    pub fn compression(&self) -> Compression {
        self.compression
    }

    /// The total record count promised by the header.
    pub fn total_records(&self) -> u64 {
        self.total
    }

    /// Records decoded so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Decodes the next chunk, or returns an empty slice once every promised
    /// record has been delivered.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation, an impossible chunk header or
    /// a corrupt record; the reader must not be used further after an error.
    pub fn next_chunk(&mut self) -> Result<&[InstrRecord], CodecError> {
        // The decode buffer is swapped out for the call so the borrow-free
        // decode can write into it, then swapped back; `current` keeps
        // serving the decoded records without any copy.
        let mut buf = std::mem::take(&mut self.buf);
        let result = self.next_chunk_reusing(&mut buf);
        self.buf = buf;
        result?;
        Ok(&self.buf)
    }

    /// [`ChunkedTraceReader::next_chunk_into`] that *overwrites* `out`
    /// instead of appending: steady-state chunks are all the same length,
    /// so after the first chunk the resize is a no-op and the decode writes
    /// straight over last chunk's records — the clear-then-grow cycle would
    /// re-zero the whole buffer every chunk. `out` is left empty once every
    /// promised record has been delivered.
    fn next_chunk_reusing(&mut self, out: &mut Vec<InstrRecord>) -> Result<usize, CodecError> {
        let remaining = self.total - self.delivered;
        if remaining == 0 {
            out.clear();
            return Ok(0);
        }
        let (len, byte_len) = read_chunk_frame(
            &mut self.r,
            self.compression,
            self.total,
            self.delivered,
            remaining,
        )?;
        self.raw.resize(byte_len.max(self.raw.len()), 0);
        read_exact_or_truncated(
            &mut self.r,
            &mut self.raw[..byte_len],
            self.total,
            self.delivered,
        )?;
        out.resize(len, InstrRecord::zeroed());
        decode_payload_into(self.compression, &self.raw[..byte_len], &mut out[..])?;
        self.delivered += len as u64;
        Ok(len)
    }

    /// The most recently decoded chunk, as [`ChunkedTraceReader::next_chunk`]
    /// returned it. This is the zero-copy serve surface: a streaming consumer
    /// (the store's [`TraceFileSource`]) hands out sub-slices of this buffer
    /// directly instead of staging records through a second copy.
    pub fn current(&self) -> &[InstrRecord] {
        &self.buf
    }

    /// Decodes the next chunk straight into `out` (appending), returning the
    /// record count — 0 once every promised record has been delivered. This
    /// is the one-pass load path: [`read_trace`] decodes every chunk into
    /// the final record vector with no intermediate per-chunk staging.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation, an impossible chunk header or
    /// a corrupt record; the reader must not be used further after an error,
    /// and `out` holds an unspecified tail that must be discarded.
    pub fn next_chunk_into(&mut self, out: &mut Vec<InstrRecord>) -> Result<usize, CodecError> {
        let remaining = self.total - self.delivered;
        if remaining == 0 {
            return Ok(0);
        }
        let (len, byte_len) = read_chunk_frame(
            &mut self.r,
            self.compression,
            self.total,
            self.delivered,
            remaining,
        )?;
        // Allocate lazily (bounded by what the file actually delivers) so a
        // corrupt record count cannot force an absurd up-front allocation.
        self.raw.resize(byte_len.max(self.raw.len()), 0);
        read_exact_or_truncated(
            &mut self.r,
            &mut self.raw[..byte_len],
            self.total,
            self.delivered,
        )?;
        match self.compression {
            Compression::Raw => decode_raw_payload(&self.raw[..byte_len], len, out)?,
            Compression::Delta => compress::decode_chunk(&self.raw[..byte_len], len, out)?,
        }
        self.delivered += len as u64;
        Ok(len)
    }
}

impl<'a> ChunkedTraceReader<&'a [u8]> {
    /// The borrowed-image twin of [`ChunkedTraceReader::next_chunk_into`]:
    /// when the whole file is already in memory, each chunk payload decodes
    /// straight out of the image with no staging copy. This is the
    /// [`read_trace`] fast path.
    ///
    /// # Errors
    ///
    /// Exactly as [`ChunkedTraceReader::next_chunk_into`].
    pub fn next_chunk_into_borrowed(
        &mut self,
        out: &mut Vec<InstrRecord>,
    ) -> Result<usize, CodecError> {
        let remaining = self.total - self.delivered;
        if remaining == 0 {
            return Ok(0);
        }
        let (len, byte_len) = read_chunk_frame(
            &mut self.r,
            self.compression,
            self.total,
            self.delivered,
            remaining,
        )?;
        let Some(payload) = self.r.get(..byte_len) else {
            return Err(CodecError::Truncated {
                expected: self.total,
                got: self.delivered,
            });
        };
        self.r = &self.r[byte_len..];
        match self.compression {
            Compression::Raw => decode_raw_payload(payload, len, out)?,
            Compression::Delta => compress::decode_chunk(payload, len, out)?,
        }
        self.delivered += len as u64;
        Ok(len)
    }

    /// Walks and validates every remaining chunk frame — record count, byte
    /// length, and payload presence — without decoding any records, returning
    /// each chunk's record count and its payload borrowed from the image.
    ///
    /// This is the front half of [`read_trace`]: because v3 delta bases reset
    /// per chunk, the frames it returns are independent decode units, so the
    /// load path can fan them out across worker threads.
    ///
    /// # Errors
    ///
    /// Returns the same structural [`CodecError`]s the chunk-by-chunk decode
    /// loop reports (impossible headers, lying directories, truncation).
    fn frames(&mut self) -> Result<Vec<(usize, &'a [u8])>, CodecError> {
        let mut frames = Vec::new();
        loop {
            let remaining = self.total - self.delivered;
            if remaining == 0 {
                return Ok(frames);
            }
            let (len, byte_len) = read_chunk_frame(
                &mut self.r,
                self.compression,
                self.total,
                self.delivered,
                remaining,
            )?;
            // Copy the reference out of `self` so the payload borrows the
            // image's lifetime, not this call's borrow of the reader.
            let image: &'a [u8] = self.r;
            let Some(payload) = image.get(..byte_len) else {
                return Err(CodecError::Truncated {
                    expected: self.total,
                    got: self.delivered,
                });
            };
            self.r = &image[byte_len..];
            frames.push((len, payload));
            self.delivered += len as u64;
        }
    }
}

/// Reads and validates one chunk's frame (record count, and for compressed
/// payloads the directory's byte length), leaving `r` positioned at the
/// payload. Shared by the staged and borrowed-image decode paths.
fn read_chunk_frame<R: Read>(
    r: &mut R,
    compression: Compression,
    total: u64,
    delivered: u64,
    remaining: u64,
) -> Result<(usize, usize), CodecError> {
    let mut len4 = [0u8; 4];
    read_exact_or_truncated(r, &mut len4, total, delivered)?;
    let len = u32::from_le_bytes(len4);
    if len == 0 || len as usize > CHUNK_RECORDS || u64::from(len) > remaining {
        return Err(CodecError::BadChunk { len, remaining });
    }
    let byte_len = match compression {
        Compression::Raw => len as usize * ENCODED_RECORD_BYTES,
        Compression::Delta => {
            read_exact_or_truncated(r, &mut len4, total, delivered)?;
            let byte_len = u32::from_le_bytes(len4);
            // The payload bounds are a structural invariant (3 layout and
            // head bytes plus two bounded delta fields per record);
            // anything outside them
            // means the chunk directory is lying, so reject before trusting
            // it for an allocation or a read.
            if (byte_len as usize) < compress::MIN_RECORD_BYTES * len as usize
                || byte_len as usize > compress::MAX_RECORD_BYTES * len as usize
            {
                return Err(CodecError::BadChunkBytes { len, byte_len });
            }
            byte_len as usize
        }
    };
    Ok((len as usize, byte_len))
}

/// Decodes a raw chunk payload (fixed 12-byte records) into `out` through a
/// pre-sized slice — per-record `Vec` pushes keep the vector's bookkeeping
/// hot in the loop; see [`compress::decode_chunk`] for the same discipline
/// on the compressed path.
fn decode_raw_payload(
    payload: &[u8],
    len: usize,
    out: &mut Vec<InstrRecord>,
) -> Result<(), CodecError> {
    let start = out.len();
    out.resize(start + len, InstrRecord::zeroed());
    decode_payload_into(Compression::Raw, payload, &mut out[start..])
}

/// Decodes one chunk payload, in whichever encoding the header announced,
/// into an exactly-sized slice of the final record vector. This is the unit
/// of work of the parallel whole-trace load path: the frame walk hands each
/// worker disjoint `(payload, slice)` pairs, so workers share nothing.
fn decode_payload_into(
    compression: Compression,
    payload: &[u8],
    out: &mut [InstrRecord],
) -> Result<(), CodecError> {
    match compression {
        Compression::Raw => {
            for (slot, encoded) in out
                .iter_mut()
                .zip(payload.chunks_exact(ENCODED_RECORD_BYTES))
            {
                let mut bytes = [0u8; ENCODED_RECORD_BYTES];
                bytes.copy_from_slice(encoded);
                *slot = InstrRecord::decode(&bytes)?;
            }
            Ok(())
        }
        Compression::Delta => compress::decode_chunk_into(payload, out).map_err(CodecError::from),
    }
}

/// Reads a trace from `r`, validating the format end to end.
///
/// # Errors
///
/// Returns a [`CodecError`] if the stream is not a well-formed trace file;
/// truncation, unknown record tags and impossible chunk headers are all
/// reported as errors rather than panics.
pub fn read_trace<R: Read>(r: &mut R) -> Result<Trace, CodecError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes).map_err(CodecError::Io)?;
    read_trace_bytes(&bytes)
}

/// [`read_trace`] over an image already in memory: every chunk payload
/// decodes borrowed straight out of `bytes` with no staging copy. This is
/// the whole-load fast path [`load_trace`] uses after one pre-sized file
/// read.
///
/// # Errors
///
/// Exactly as [`read_trace`].
pub fn read_trace_bytes(bytes: &[u8]) -> Result<Trace, CodecError> {
    let mut reader = ChunkedTraceReader::new(bytes)?;
    let compression = reader.compression();

    // Pre-size the record vector from the header's claim, bounded by the
    // most records the image's bytes could possibly encode, so an honest
    // file never pays a growth copy and a lying record count cannot force
    // an absurd up-front allocation.
    let min_record_bytes = match compression {
        Compression::Raw => ENCODED_RECORD_BYTES,
        Compression::Delta => compress::MIN_RECORD_BYTES,
    };
    let claimed = usize::try_from(reader.total_records()).unwrap_or(usize::MAX);
    let capacity = claimed.min(bytes.len() / min_record_bytes);

    let workers = decode_workers(claimed.div_ceil(CHUNK_RECORDS));
    if workers <= 1 {
        // Fused streaming decode: validate each chunk frame and decode its
        // payload immediately, while the frame's bytes and the freshly
        // grown stretch of the record vector are still cache-hot. Chunk
        // errors surface in stream order by construction.
        let mut records = Vec::with_capacity(capacity);
        while reader.next_chunk_into_borrowed(&mut records)? != 0 {}
        return Ok(Trace::with_format(
            reader.name().to_string(),
            records,
            reader.format(),
        ));
    }

    read_trace_bytes_parallel(bytes, workers)
}

/// The parallel half of [`read_trace_bytes`]: walk and validate the whole
/// chunk directory first, then fan the payloads out across `workers`
/// threads. Split out with an explicit worker count so the fan-out, the
/// disjoint slice hand-off and the earliest-chunk error selection stay
/// testable on single-core hosts, where [`decode_workers`] never exceeds 1.
fn read_trace_bytes_parallel(bytes: &[u8], workers: usize) -> Result<Trace, CodecError> {
    let mut reader = ChunkedTraceReader::new(bytes)?;
    let compression = reader.compression();
    // The record vector is sized from the *validated* frames — every
    // payload was checked to exist in the image — so a corrupt record
    // count cannot force an absurd up-front allocation.
    let frames = match reader.frames() {
        Ok(frames) => frames,
        // The directory walk failed partway through. Chunk-by-chunk order
        // may blame an *earlier* chunk's payload (a lying byte length
        // derails every later frame), so re-decode serially and report
        // exactly what the streaming reader would.
        Err(walk) => {
            let mut reader = ChunkedTraceReader::new(bytes)?;
            let mut records = Vec::new();
            loop {
                if reader.next_chunk_into_borrowed(&mut records)? == 0 {
                    // Unreachable in practice: the serial pass re-checks the
                    // same directory the walk just rejected.
                    return Err(walk);
                }
            }
        }
    };
    let total: usize = frames.iter().map(|&(len, _)| len).sum();
    let mut records = vec![InstrRecord::zeroed(); total];

    // Delta bases reset per chunk, so frames decode independently. Workers
    // write disjoint sub-slices of the one record vector — the result is
    // bit-identical to the serial decode, whatever the count.
    let workers = workers.min(frames.len()).max(1);
    let mut slices = Vec::with_capacity(frames.len());
    let mut rest: &mut [InstrRecord] = &mut records;
    for &(len, payload) in &frames {
        let (head, tail) = rest.split_at_mut(len);
        slices.push((payload, head));
        rest = tail;
    }
    if workers <= 1 {
        for (payload, out) in slices {
            decode_payload_into(compression, payload, out)?;
        }
    } else {
        let per = slices.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut slices = slices;
            let mut base = 0usize;
            while !slices.is_empty() {
                let group: Vec<_> = slices.drain(..per.min(slices.len())).collect();
                let group_base = base;
                base += group.len();
                handles.push(scope.spawn(move || {
                    for (i, (payload, out)) in group.into_iter().enumerate() {
                        decode_payload_into(compression, payload, out)
                            .map_err(|e| (group_base + i, e))?;
                    }
                    Ok(())
                }));
            }
            // Report the error of the *earliest* corrupt chunk so parallel
            // and serial decode fail identically on a multi-corrupt file.
            let mut first: Option<(usize, CodecError)> = None;
            for handle in handles {
                let outcome: Result<(), (usize, CodecError)> = handle
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
                if let Err((chunk, e)) = outcome {
                    if first.as_ref().is_none_or(|(c, _)| chunk < *c) {
                        first = Some((chunk, e));
                    }
                }
            }
            match first {
                Some((_, e)) => Err(e),
                None => Ok(()),
            }
        })?;
    }
    Ok(Trace::with_format(
        reader.name().to_string(),
        records,
        reader.format(),
    ))
}

/// Worker-thread count for the parallel whole-trace decode: one worker per
/// available core (capped — decode saturates memory bandwidth well before
/// high core counts), and strictly serial for short traces, where thread
/// spawns would cost more than they recover.
fn decode_workers(chunks: usize) -> usize {
    const MIN_PARALLEL_CHUNKS: usize = 4;
    const MAX_WORKERS: usize = 8;
    if chunks < MIN_PARALLEL_CHUNKS {
        return 1;
    }
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(MAX_WORKERS)
        .min(chunks)
}

/// A [`TraceSource`] replaying a persisted trace chunk by chunk from disk:
/// the streaming twin of [`load_trace`], keeping one decoded chunk resident
/// instead of the whole record array — and serving it as sub-slices of the
/// reader's decode buffer, so records reach the engines in one decode pass
/// with no staging copy. Opening with a `take` shorter than the
/// file is chunk-granular prefix serving — decoding stops with the chunk
/// that covers the request, so corruption *beyond* the prefix is never even
/// read; this is how the experiment trace store serves a short trace request
/// from a longer persisted entry.
///
/// The pull interface has no error channel, so a decode failure mid-stream
/// (a truncated or corrupted store entry) is recorded in
/// [`TraceFileSource::fault`] and the source reports exhaustion; callers
/// that must be robust check the fault after the run and fall back to
/// regeneration (as the experiment runner does).
#[derive(Debug)]
pub struct TraceFileSource {
    path: std::path::PathBuf,
    reader: ChunkedTraceReader<BufReader<PolicedRead<File>>>,
    /// Records of the file this source serves (a prefix of the file when the
    /// entry is longer than the request).
    take: usize,
    pos: usize,
    fence: usize,
    /// Extent and cursor into the reader's current decoded chunk: the source
    /// serves sub-slices of [`ChunkedTraceReader::current`] directly, so
    /// records flow from the decode buffer to the consumer without a second
    /// staging copy.
    chunk_len: usize,
    chunk_pos: usize,
    fault: Option<CodecError>,
}

impl TraceFileSource {
    /// Opens the trace at `path`, serving its first `take` records (`None` =
    /// the whole file). Any known [`TraceFormat`] version is accepted; use
    /// [`TraceFileSource::open_expecting`] when the caller's bit stream is
    /// version-pinned.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the file cannot be opened, its header is
    /// invalid, or it promises fewer than `take` records.
    pub fn open(path: &Path, take: Option<usize>) -> Result<Self, CodecError> {
        Self::open_with(path, take, &IoPolicy::none())
    }

    /// [`TraceFileSource::open`] with the open and every subsequent read
    /// routed through `policy` — the fault-injectable variant the experiment
    /// trace store uses. A fault injected mid-stream surfaces through
    /// [`TraceFileSource::fault`] exactly like real disk trouble.
    ///
    /// # Errors
    ///
    /// Everything [`TraceFileSource::open`] reports, plus whatever `policy`
    /// injects.
    pub fn open_with(
        path: &Path,
        take: Option<usize>,
        policy: &IoPolicy,
    ) -> Result<Self, CodecError> {
        let file = policy.open(path)?;
        let reader = ChunkedTraceReader::new(BufReader::new(policy.reader(file)))?;
        let take = take.unwrap_or(reader.total_records() as usize);
        if (take as u64) > reader.total_records() {
            return Err(CodecError::Truncated {
                expected: take as u64,
                got: reader.total_records(),
            });
        }
        Ok(Self {
            path: path.to_path_buf(),
            reader,
            take,
            pos: 0,
            fence: take,
            chunk_len: 0,
            chunk_pos: 0,
            fault: None,
        })
    }

    /// [`TraceFileSource::open`] that additionally requires the file to be
    /// of the `expected` [`TraceFormat`].
    ///
    /// # Errors
    ///
    /// Everything [`TraceFileSource::open`] reports, plus
    /// [`CodecError::FormatMismatch`] when the file is a valid trace of a
    /// different version — a v1 entry must never quietly serve a v2 request
    /// (or vice versa), because the two bit streams differ by design.
    pub fn open_expecting(
        path: &Path,
        take: Option<usize>,
        expected: TraceFormat,
    ) -> Result<Self, CodecError> {
        Self::open_expecting_with(path, take, expected, &IoPolicy::none())
    }

    /// [`TraceFileSource::open_expecting`] routed through `policy` (see
    /// [`TraceFileSource::open_with`]).
    ///
    /// # Errors
    ///
    /// Everything [`TraceFileSource::open_expecting`] reports, plus whatever
    /// `policy` injects.
    pub fn open_expecting_with(
        path: &Path,
        take: Option<usize>,
        expected: TraceFormat,
        policy: &IoPolicy,
    ) -> Result<Self, CodecError> {
        let source = Self::open_with(path, take, policy)?;
        let found = source.format();
        if found != expected {
            return Err(CodecError::FormatMismatch { expected, found });
        }
        Ok(source)
    }

    /// The file this source replays (callers that detect a fault use it to
    /// invalidate the entry).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The record count the file's header promises — the whole entry, not
    /// the served prefix ([`TraceSource::total_records`] reports `take`).
    /// Store-layer callers compare this against the count implied by the
    /// entry's key to reject foreign or stale files.
    pub fn file_records(&self) -> usize {
        self.reader.total_records() as usize
    }

    /// The decode error that interrupted this source, if any. When a fault is
    /// set the source under-delivers: the simulation that consumed it must be
    /// discarded and retried from another producer.
    pub fn fault(&self) -> Option<&CodecError> {
        self.fault.as_ref()
    }

    /// Advances the reader to its next decoded chunk (no copy — the records
    /// stay in the reader's buffer); false on fault/end.
    fn refill(&mut self) -> bool {
        match self.reader.next_chunk() {
            Ok([]) => {
                // `take` was validated against the header, so running dry
                // early means the file lied; record it as truncation.
                self.fault = Some(CodecError::Truncated {
                    expected: self.take as u64,
                    got: self.pos as u64,
                });
                false
            }
            Ok(chunk) => {
                self.chunk_len = chunk.len();
                self.chunk_pos = 0;
                true
            }
            Err(e) => {
                self.fault = Some(e);
                false
            }
        }
    }
}

impl TraceSource for TraceFileSource {
    fn name(&self) -> &str {
        self.reader.name()
    }

    fn format(&self) -> TraceFormat {
        self.reader.format()
    }

    fn total_records(&self) -> usize {
        self.take
    }

    fn next_chunk(&mut self) -> &[InstrRecord] {
        let limit = self.fence.min(self.take);
        if self.fault.is_some() || self.pos >= limit {
            return &[];
        }
        if self.chunk_pos >= self.chunk_len && !self.refill() {
            return &[];
        }
        // A file chunk that straddles the fence (or the prefix end) is
        // delivered piecewise: the remainder stays staged for the next
        // region, which is what makes the split chunk-boundary-agnostic.
        let n = (self.chunk_len - self.chunk_pos).min(limit - self.pos);
        let start = self.chunk_pos;
        self.chunk_pos += n;
        self.pos += n;
        &self.reader.current()[start..start + n]
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn split_at(&mut self, at: usize) {
        self.fence = at.clamp(self.pos, self.take);
    }

    fn skip(&mut self, n: usize) {
        let target = self.pos.saturating_add(n).min(self.take);
        while self.pos < target && self.fault.is_none() {
            if self.chunk_pos >= self.chunk_len && !self.refill() {
                break;
            }
            let step = (self.chunk_len - self.chunk_pos).min(target - self.pos);
            self.chunk_pos += step;
            self.pos += step;
        }
        self.fence = self.fence.max(self.pos);
    }
}

/// `read_exact` that maps an early end-of-file to [`CodecError::Truncated`]
/// with the given progress context.
fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    expected: u64,
    got: u64,
) -> Result<(), CodecError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CodecError::Truncated { expected, got }
        } else {
            CodecError::Io(e)
        }
    })
}

/// Writes to `path` atomically (via a same-directory temporary file and
/// rename), so concurrent writers — processes *or* threads — sharing a trace
/// store never expose a half-written file at the final path. The create,
/// every buffered write, and the committing rename all go through `policy`;
/// on any failure the temporary file is cleaned up (best effort, un-policed
/// — injecting on the cleanup of an already-failed save would only leave the
/// same debris a crashed process leaves, which readers already ignore).
fn atomic_save(
    path: &Path,
    policy: &IoPolicy,
    write: impl FnOnce(&mut BufWriter<PolicedWrite<File>>) -> io::Result<()>,
) -> io::Result<()> {
    // The temporary name must be unique per writer, not just per process:
    // two threads saving the same store entry would otherwise share the
    // temporary file and could rename a half-rewritten inode into place.
    static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let writer = WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{writer}", std::process::id()));
    let result = (|| {
        let mut w = BufWriter::new(policy.writer(policy.create(&tmp)?));
        match write(&mut w).and_then(|()| w.flush()) {
            Ok(()) => policy.rename(&tmp, path),
            Err(e) => {
                // Discard the buffered tail: `BufWriter`'s drop would
                // silently retry writing it to a file this function is
                // about to delete.
                let _ = w.into_parts();
                Err(e)
            }
        }
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Writes `trace` to `path` atomically (see [`atomic_save`]).
pub fn save_trace(path: &Path, trace: &Trace) -> io::Result<()> {
    save_trace_with(path, trace, &IoPolicy::none())
}

/// [`save_trace`] with every filesystem operation routed through `policy`.
pub fn save_trace_with(path: &Path, trace: &Trace, policy: &IoPolicy) -> io::Result<()> {
    save_trace_opts(path, trace, policy, Compression::default())
}

/// [`save_trace_with`] with an explicit chunk-payload [`Compression`] — the
/// variant the experiment trace store calls with
/// [`Compression::from_env`].
pub fn save_trace_opts(
    path: &Path,
    trace: &Trace,
    policy: &IoPolicy,
    compression: Compression,
) -> io::Result<()> {
    atomic_save(path, policy, |w| write_trace_opts(w, trace, compression))
}

/// Drains `source` to `path` atomically, chunk by chunk: the streaming twin
/// of [`save_trace`], persisting (for example) a resumable
/// [`TraceStream`](crate::TraceStream) without ever materializing the full
/// record array. Oversized producer chunks (a materialized cursor yields its
/// whole window as one chunk) are re-framed to the format's
/// [`CHUNK_RECORDS`] bound.
///
/// # Errors
///
/// Besides writer errors, returns `InvalidData` if the source delivers fewer
/// records than [`TraceSource::total_records`] promised (the partial file is
/// discarded, never renamed into place), and `InvalidInput` for an over-long
/// name as [`write_trace`] does.
pub fn save_source<S: TraceSource>(path: &Path, source: &mut S) -> io::Result<()> {
    save_source_with(path, source, &IoPolicy::none())
}

/// [`save_source`] with every filesystem operation routed through `policy`.
///
/// # Errors
///
/// Everything [`save_source`] reports, plus whatever `policy` injects.
pub fn save_source_with<S: TraceSource>(
    path: &Path,
    source: &mut S,
    policy: &IoPolicy,
) -> io::Result<()> {
    save_source_opts(path, source, policy, Compression::default())
}

/// [`save_source_with`] with an explicit chunk-payload [`Compression`] — the
/// variant the experiment trace store calls with
/// [`Compression::from_env`].
///
/// # Errors
///
/// Everything [`save_source_with`] reports.
pub fn save_source_opts<S: TraceSource>(
    path: &Path,
    source: &mut S,
    policy: &IoPolicy,
    compression: Compression,
) -> io::Result<()> {
    atomic_save(path, policy, |w| {
        let name = source.name().to_string();
        let promised = source.total_records() as u64;
        write_header(w, source.format(), compression, &name, promised)?;

        let mut written = 0u64;
        let mut chunks = ChunkWriter::new(source.format(), compression);
        loop {
            let chunk = source.next_chunk();
            if chunk.is_empty() {
                break;
            }
            for frame in chunk.chunks(CHUNK_RECORDS) {
                chunks.write_chunk(w, frame)?;
                written += frame.len() as u64;
            }
        }
        if written != promised {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("source promised {promised} records but delivered {written}"),
            ));
        }
        Ok(())
    })
}

/// Reads a trace from `path` (see [`read_trace`]).
///
/// # Errors
///
/// Returns a [`CodecError`] if the file is missing, unreadable or malformed.
pub fn load_trace(path: &Path) -> Result<Trace, CodecError> {
    load_trace_with(path, &IoPolicy::none())
}

/// [`load_trace`] with the open and every read routed through `policy`.
///
/// # Errors
///
/// Everything [`load_trace`] reports, plus whatever `policy` injects
/// (surfacing as [`CodecError::Io`]).
pub fn load_trace_with(path: &Path, policy: &IoPolicy) -> Result<Trace, CodecError> {
    // No BufReader: the image is slurped in large reads anyway, so an 8 KiB
    // staging buffer would only add copies. Pre-sizing from the file's
    // length makes the slurp one allocation and one read — `read_to_end`'s
    // doubling growth would copy a multi-megabyte image several times over.
    let file = policy.open(path)?;
    let size_hint = file.metadata().map(|m| m.len() as usize).unwrap_or(0);
    let mut bytes = Vec::with_capacity(size_hint);
    let mut r = policy.reader(file);
    r.read_to_end(&mut bytes).map_err(CodecError::Io)?;
    read_trace_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::spec;

    fn sample(n: usize) -> Trace {
        TraceGenerator::new(spec::compress(), 11).generate(n)
    }

    /// A sample pinned to a specific format: the raw-layout byte-surgery
    /// tests operate on v2 files, whose record offsets are fixed.
    fn sample_with(n: usize, format: TraceFormat) -> Trace {
        TraceGenerator::new(spec::compress(), 11)
            .with_format(format)
            .generate(n)
    }

    fn encode(trace: &Trace) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, trace).expect("vec writes cannot fail");
        bytes
    }

    /// Byte offsets of each chunk header in a compressed v3 file, walked
    /// via the chunk directory's explicit byte lengths.
    fn v3_chunk_offsets(bytes: &[u8], name_len: usize) -> Vec<usize> {
        let mut off = 9 + 4 + name_len + 8;
        let mut offsets = Vec::new();
        while off < bytes.len() {
            offsets.push(off);
            let byte_len =
                u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes")) as usize;
            off += 8 + byte_len;
        }
        offsets
    }

    #[test]
    fn round_trips_through_memory() {
        // Cover the empty, sub-chunk and multi-chunk cases.
        for n in [0usize, 1, 1000, CHUNK_RECORDS + 17] {
            let trace = sample(n);
            let decoded = read_trace(&mut encode(&trace).as_slice()).expect("round trip");
            assert_eq!(decoded, trace, "{n} records");
        }
    }

    #[test]
    fn both_format_versions_round_trip_and_are_preserved() {
        for format in TraceFormat::ALL {
            let trace = TraceGenerator::new(spec::compress(), 11)
                .with_format(format)
                .generate(500);
            assert_eq!(trace.format(), format);
            let bytes = encode(&trace);
            assert_eq!(&bytes[..8], &format.magic(), "magic carries the version");
            let decoded = read_trace(&mut bytes.as_slice()).expect("round trip");
            assert_eq!(decoded.format(), format);
            assert_eq!(decoded, trace);
        }
    }

    #[test]
    fn unknown_version_is_a_typed_error() {
        let mut bytes = encode(&sample(100));
        bytes[7] = b'9';
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::UnsupportedVersion { version: b'9' })
        ));
        // A broken prefix is still BadMagic, not UnsupportedVersion.
        bytes[0] ^= 0xff;
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn mixed_version_open_is_rejected_with_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("rescache-codec-mixed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        for (written, requested) in [
            (TraceFormat::V1, TraceFormat::V2),
            (TraceFormat::V2, TraceFormat::V1),
        ] {
            let path = dir.join(format!("{written}.rctrace"));
            let trace = TraceGenerator::new(spec::compress(), 11)
                .with_format(written)
                .generate(300);
            save_trace(&path, &trace).expect("save");
            // The matching expectation opens fine...
            let src = TraceFileSource::open_expecting(&path, None, written).expect("same version");
            assert_eq!(src.format(), written);
            // ...the mixed one is a typed rejection, not a panic or a
            // silently-wrong stream.
            let err = TraceFileSource::open_expecting(&path, None, requested).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::FormatMismatch { expected, found }
                        if expected == requested && found == written
                ),
                "{written}->{requested}: {err}"
            );
            // The version-agnostic open still works and reports the version.
            assert_eq!(
                TraceFileSource::open(&path, None)
                    .expect("any version")
                    .format(),
                written
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn round_trips_through_a_file() {
        let dir = std::env::temp_dir().join(format!("rescache-codec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("compress.rctrace");
        let trace = sample(5_000);
        save_trace(&path, &trace).expect("save");
        let decoded = load_trace(&path).expect("load");
        assert_eq!(decoded, trace);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = load_trace(Path::new("/nonexistent/rescache.rctrace")).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));
    }

    #[test]
    fn bad_magic_is_an_error() {
        let mut bytes = encode(&sample(100));
        bytes[0] ^= 0xff;
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = encode(&sample(1000));
        // Cut the file at every structurally interesting prefix length.
        for cut in [0, 4, 8, 10, 20, 30, bytes.len() / 2, bytes.len() - 1] {
            let err = read_trace(&mut &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_record_tag_is_an_error() {
        let trace = sample_with(100, TraceFormat::V2);
        let mut bytes = encode(&trace);
        // Locate the first record's tag byte: magic(8) + name_len(4) +
        // name + count(8) + chunk_len(4) + 8 bytes into the record.
        let offset = 8 + 4 + trace.name().len() + 8 + 4 + 8;
        bytes[offset] = 0xee;
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadRecord(_))
        ));
    }

    #[test]
    fn impossible_chunk_header_is_an_error() {
        // Raw v2 layout: the chunk length field directly follows the count.
        let trace = sample_with(100, TraceFormat::V2);
        let mut bytes = encode(&trace);
        let chunk_header = 8 + 4 + trace.name().len() + 8;
        bytes[chunk_header..chunk_header + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadChunk { .. })
        ));
        // Compressed v3 layout: same rejection, one flags byte later.
        let trace = sample(100);
        let mut bytes = encode(&trace);
        let chunk_header = v3_chunk_offsets(&bytes, trace.name().len())[0];
        bytes[chunk_header..chunk_header + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadChunk { .. })
        ));
    }

    #[test]
    fn over_long_name_is_rejected_at_write_time() {
        use crate::record::{InstrRecord, Op};
        let trace = Trace::new(
            "n".repeat(MAX_NAME_BYTES as usize + 1),
            vec![InstrRecord::new(0x400, Op::Int)],
        );
        let mut bytes = Vec::new();
        let err = write_trace(&mut bytes, &trace).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn concurrent_saves_of_one_entry_never_expose_a_torn_file() {
        let dir = std::env::temp_dir().join(format!("rescache-codec-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("entry.rctrace");
        let trace = sample(2_000);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        save_trace(&path, &trace).expect("save");
                        let loaded = load_trace(&path).expect("load during races");
                        assert_eq!(loaded, trace);
                    }
                });
            }
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_name_is_an_error() {
        // The name-length field sits at 8 in v1/v2 and at 9 in v3 (after
        // the flags byte); both containers must reject an absurd value.
        for (bytes, offset) in [
            (encode(&sample_with(10, TraceFormat::V2)), 8usize),
            (encode(&sample(10)), 9),
        ] {
            let mut bytes = bytes;
            bytes[offset..offset + 4].copy_from_slice(&(MAX_NAME_BYTES + 1).to_le_bytes());
            assert!(matches!(
                read_trace(&mut bytes.as_slice()),
                Err(CodecError::BadName)
            ));
        }
    }

    #[test]
    fn chunked_reader_delivers_the_exact_sequence() {
        let trace = sample(2 * CHUNK_RECORDS + 321);
        let bytes = encode(&trace);
        let mut reader = ChunkedTraceReader::new(bytes.as_slice()).expect("header");
        assert_eq!(reader.name(), trace.name());
        assert_eq!(reader.total_records(), trace.len() as u64);
        let mut records = Vec::new();
        loop {
            let chunk = reader.next_chunk().expect("chunk");
            if chunk.is_empty() {
                break;
            }
            assert!(chunk.len() <= CHUNK_RECORDS);
            records.extend_from_slice(chunk);
        }
        assert_eq!(records, trace.records());
        assert_eq!(reader.delivered(), trace.len() as u64);
        // Exhausted readers keep returning empty chunks.
        assert!(reader.next_chunk().expect("past end").is_empty());
    }

    #[test]
    fn prefix_serving_is_chunk_granular() {
        let dir =
            std::env::temp_dir().join(format!("rescache-codec-prefix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("compress.rctrace");
        let trace = sample_with(2 * CHUNK_RECORDS + 100, TraceFormat::V2);
        save_trace(&path, &trace).expect("save");

        let drain_prefix = |n: usize| {
            let mut source = TraceFileSource::open(&path, Some(n)).expect("open prefix");
            let mut records = Vec::with_capacity(n);
            loop {
                let chunk = source.next_chunk();
                if chunk.is_empty() {
                    break;
                }
                records.extend_from_slice(chunk);
            }
            assert!(source.fault().is_none(), "{:?}", source.fault());
            records
        };

        // A mid-chunk prefix delivers exactly the requested records.
        let n = CHUNK_RECORDS + 17;
        assert_eq!(drain_prefix(n), &trace.records()[..n]);

        // Corruption *beyond* the requested prefix is never read: flip a
        // record tag in the last chunk and the prefix still serves cleanly.
        let mut bytes = std::fs::read(&path).expect("read");
        let tail_record = bytes.len() - ENCODED_RECORD_BYTES + 8;
        bytes[tail_record] = 0xee;
        std::fs::write(&path, &bytes).expect("corrupt tail");
        assert_eq!(drain_prefix(n), &trace.records()[..n]);
        // ... but the full load now fails.
        assert!(matches!(load_trace(&path), Err(CodecError::BadRecord(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_source_replays_and_splits_across_chunk_boundaries() {
        let dir = std::env::temp_dir().join(format!("rescache-codec-fsrc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("compress.rctrace");
        let trace = sample(2 * CHUNK_RECORDS + 50);
        save_trace(&path, &trace).expect("save");

        // Whole-file replay.
        let mut src = TraceFileSource::open(&path, None).expect("open");
        assert_eq!(src.name(), trace.name());
        assert_eq!(src.total_records(), trace.len());
        let mut records = Vec::new();
        loop {
            let chunk = src.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records.extend_from_slice(chunk);
        }
        assert_eq!(records, trace.records());
        assert!(src.fault().is_none());

        // Prefix serving plus a split point that lands mid-chunk: the two
        // regions concatenate to the exact prefix.
        let take = CHUNK_RECORDS + 300;
        let split = CHUNK_RECORDS / 2 + 3;
        let mut src = TraceFileSource::open(&path, Some(take)).expect("open prefix");
        assert_eq!(src.total_records(), take);
        src.split_at(split);
        let mut records = Vec::new();
        loop {
            let chunk = src.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records.extend_from_slice(chunk);
        }
        assert_eq!(src.position(), split);
        src.split_at(take);
        loop {
            let chunk = src.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records.extend_from_slice(chunk);
        }
        assert_eq!(records, &trace.records()[..take]);

        // skip() drops records and keeps delivering the right suffix.
        let mut src = TraceFileSource::open(&path, None).expect("open for skip");
        src.skip(split);
        assert_eq!(src.next_chunk()[0], trace.records()[split]);

        // A request longer than the file is rejected at open time.
        assert!(matches!(
            TraceFileSource::open(&path, Some(trace.len() + 1)),
            Err(CodecError::Truncated { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_source_records_a_fault_instead_of_panicking() {
        let dir = std::env::temp_dir().join(format!("rescache-codec-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("compress.rctrace");
        let trace = sample_with(2 * CHUNK_RECORDS, TraceFormat::V2);
        save_trace(&path, &trace).expect("save");

        // Corrupt a record tag in the second chunk: the source delivers the
        // first chunk, then faults and under-delivers.
        let mut bytes = std::fs::read(&path).expect("read");
        let second_chunk_record =
            8 + 4 + trace.name().len() + 8 + 4 + CHUNK_RECORDS * ENCODED_RECORD_BYTES + 4 + 8;
        bytes[second_chunk_record] = 0xee;
        std::fs::write(&path, &bytes).expect("corrupt");

        let mut src = TraceFileSource::open(&path, None).expect("header is intact");
        let mut delivered = 0;
        loop {
            let chunk = src.next_chunk();
            if chunk.is_empty() {
                break;
            }
            delivered += chunk.len();
        }
        assert_eq!(delivered, CHUNK_RECORDS, "only the intact chunk arrives");
        assert!(matches!(src.fault(), Some(CodecError::BadRecord(_))));
        // Once faulted, the source stays exhausted.
        assert!(src.next_chunk().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_source_streams_a_generator_to_the_identical_file_contents() {
        let dir =
            std::env::temp_dir().join(format!("rescache-codec-savesrc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let n = CHUNK_RECORDS + 999;
        let generator = TraceGenerator::new(spec::compress(), 11);

        let streamed_path = dir.join("streamed.rctrace");
        let mut stream = generator.stream(n);
        save_source(&streamed_path, &mut stream).expect("stream to disk");

        let materialized_path = dir.join("materialized.rctrace");
        save_trace(&materialized_path, &generator.generate(n)).expect("save");

        assert_eq!(
            std::fs::read(&streamed_path).expect("streamed bytes"),
            std::fs::read(&materialized_path).expect("materialized bytes"),
            "byte-identical persistence either way"
        );

        // An under-delivering source (fenced short) must not produce a file.
        let missing = dir.join("underdelivered.rctrace");
        let mut fenced = generator.stream(n);
        fenced.split_at(100);
        let err = save_source(&missing, &mut fenced).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!missing.exists(), "partial file never renamed into place");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_faults_surface_through_the_policed_codec_paths() {
        use crate::faults::{FaultInjector, FaultKind, IoOp, ScriptedFault};
        use std::sync::Arc;

        let dir =
            std::env::temp_dir().join(format!("rescache-codec-inject-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("entry.rctrace");
        let trace = sample(2 * CHUNK_RECORDS);

        // A write fault aborts the save and leaves no file (and no debris at
        // the final path).
        let injector = Arc::new(FaultInjector::scripted([ScriptedFault {
            op: IoOp::Write,
            kind: FaultKind::Transient,
        }]));
        let policy = IoPolicy::with_injector(Arc::clone(&injector));
        let err = save_trace_with(&path, &trace, &policy).unwrap_err();
        assert!(crate::faults::is_transient(&err));
        assert!(!path.exists(), "failed save leaves nothing at the path");

        // A rename fault likewise: the payload was fully written to the
        // temporary file, but it is never committed.
        injector.push(ScriptedFault {
            op: IoOp::Rename,
            kind: FaultKind::DiskFull,
        });
        let err = save_trace_with(&path, &trace, &policy).unwrap_err();
        assert!(crate::faults::is_disk_full(&err));
        assert!(!path.exists());

        // With the script drained the same policy saves cleanly, and a read
        // fault mid-replay surfaces as a recorded source fault — the same
        // degradation path a truncated entry takes.
        save_trace_with(&path, &trace, &policy).expect("clean save");
        // Open first (the header read passes), then inject: the fault lands
        // mid-replay rather than at open time.
        let mut src = TraceFileSource::open_with(&path, None, &policy).expect("open");
        injector.push(ScriptedFault {
            op: IoOp::Read,
            kind: FaultKind::Transient,
        });
        let mut delivered = 0;
        loop {
            let chunk = src.next_chunk();
            if chunk.is_empty() {
                break;
            }
            delivered += chunk.len();
        }
        assert!(
            delivered < trace.len(),
            "the injected read cut replay short"
        );
        assert!(
            matches!(src.fault(), Some(CodecError::Io(e)) if crate::faults::is_transient(e)),
            "{:?}",
            src.fault()
        );

        // load_trace_with reports the injected error as CodecError::Io.
        injector.push(ScriptedFault {
            op: IoOp::Open,
            kind: FaultKind::Transient,
        });
        assert!(matches!(
            load_trace_with(&path, &policy),
            Err(CodecError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v3_default_is_compressed_and_at_least_halves_the_file() {
        let trace = sample(20_000);
        assert_eq!(trace.format(), TraceFormat::V3);
        let bytes = encode(&trace);
        assert_eq!(&bytes[..8], b"RCTRACE3");
        assert_eq!(bytes[8], 1, "flags byte announces compression");
        assert!(
            bytes.len() * 2 <= trace.len() * ENCODED_RECORD_BYTES,
            "{} bytes for {} records is under 2x compression",
            bytes.len(),
            trace.len()
        );
        let mut reader = ChunkedTraceReader::new(bytes.as_slice()).expect("header");
        assert_eq!(reader.compression(), Compression::Delta);
        let mut records = Vec::new();
        while reader.next_chunk_into(&mut records).expect("chunk") > 0 {}
        assert_eq!(records, trace.records());
    }

    #[test]
    fn v3_raw_override_round_trips_the_same_records() {
        let trace = sample(CHUNK_RECORDS + 500);
        let mut raw = Vec::new();
        write_trace_opts(&mut raw, &trace, Compression::Raw).expect("raw write");
        assert_eq!(raw[8], 0, "flags byte announces raw chunks");
        let decoded = read_trace(&mut raw.as_slice()).expect("raw round trip");
        assert_eq!(decoded, trace);
        assert_eq!(decoded.format(), TraceFormat::V3);
        let compressed = encode(&trace);
        assert!(
            compressed.len() * 2 <= raw.len(),
            "compressed {} vs raw {}",
            compressed.len(),
            raw.len()
        );
    }

    #[test]
    fn unknown_flags_byte_is_a_typed_error() {
        let mut bytes = encode(&sample(100));
        bytes[8] = 0x82;
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::UnsupportedFlags { flags: 0x82 })
        ));
    }

    #[test]
    fn compress_env_knob_parses_every_spelling() {
        // No other test in this binary reads the knob, so the process-global
        // mutation cannot race; the var is cleared again before returning.
        for (value, expected) in [
            (Some("0"), Compression::Raw),
            (Some("off"), Compression::Raw),
            (Some("raw"), Compression::Raw),
            (Some("1"), Compression::Delta),
            (Some("delta"), Compression::Delta),
            (Some("anything-else"), Compression::Delta),
            (None, Compression::Delta),
        ] {
            match value {
                Some(v) => std::env::set_var("RESCACHE_STORE_COMPRESS", v),
                None => std::env::remove_var("RESCACHE_STORE_COMPRESS"),
            }
            assert_eq!(Compression::from_env(), expected, "value {value:?}");
        }
        std::env::remove_var("RESCACHE_STORE_COMPRESS");
    }

    #[test]
    fn compressed_chunk_corruption_is_typed_never_a_panic() {
        let trace = sample(2 * CHUNK_RECORDS);
        let bytes = encode(&trace);
        let chunk = v3_chunk_offsets(&bytes, trace.name().len())[0];
        let byte_len = u32::from_le_bytes(bytes[chunk + 4..chunk + 8].try_into().expect("4 bytes"));

        // An impossible chunk-directory byte length (pointing the payload
        // frame at the wrong place) is rejected before anything is decoded.
        let mut b = bytes.clone();
        b[chunk + 4..chunk + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_trace(&mut b.as_slice()),
            Err(CodecError::BadChunkBytes {
                byte_len: u32::MAX,
                ..
            })
        ));

        // A lying-but-in-bounds byte length cuts the last record's delta
        // field: truncation inside the payload, reported typed.
        let mut b = bytes.clone();
        b[chunk + 4..chunk + 8].copy_from_slice(&(byte_len - 1).to_le_bytes());
        assert!(matches!(
            read_trace(&mut b.as_slice()),
            Err(CodecError::BadPayload(CorruptChunk::Truncated))
        ));

        // One byte too long: the payload keeps going after the last record.
        let mut b = bytes.clone();
        b[chunk + 4..chunk + 8].copy_from_slice(&(byte_len + 1).to_le_bytes());
        assert!(matches!(
            read_trace(&mut b.as_slice()),
            Err(CodecError::BadPayload(CorruptChunk::TrailingBytes {
                extra: 1
            }))
        ));

        // A reserved bit in the first record's head (payload byte 2: the
        // layout byte leads, then the little-endian head).
        let mut b = bytes.clone();
        b[chunk + 10] |= 0x80;
        assert!(matches!(
            read_trace(&mut b.as_slice()),
            Err(CodecError::BadPayload(CorruptChunk::BadHead { .. }))
        ));
    }

    #[test]
    fn parallel_decode_matches_serial_and_reports_corruption_typed() {
        // Enough chunks that `read_trace` takes its fan-out path (the
        // threshold in `decode_workers`); the streaming reader is the
        // always-serial reference.
        let trace = sample(6 * CHUNK_RECORDS + 123);
        let bytes = encode(&trace);
        let decoded = read_trace(&mut bytes.as_slice()).expect("parallel load");
        assert_eq!(decoded, trace);

        // A reserved head bit deep in a middle chunk surfaces as the same
        // typed error the serial path reports, never a panic.
        let mut b = bytes.clone();
        let chunk = v3_chunk_offsets(&bytes, trace.name().len())[3];
        b[chunk + 10] |= 0x80;
        assert!(matches!(
            read_trace(&mut b.as_slice()),
            Err(CodecError::BadPayload(CorruptChunk::BadHead { .. }))
        ));
    }

    #[test]
    fn explicit_worker_fan_out_is_bit_identical_and_blames_the_earliest_chunk() {
        // `decode_workers` is capped by the host's parallelism (1 on a
        // single-core runner), so drive the fan-out with explicit worker
        // counts: every count must reproduce the streaming decode bit for
        // bit, including the trailing partial chunk.
        let trace = sample(6 * CHUNK_RECORDS + 123);
        let bytes = encode(&trace);
        for workers in [2usize, 3, 8] {
            let decoded = read_trace_bytes_parallel(&bytes, workers).expect("parallel decode");
            assert_eq!(decoded, trace, "{workers} workers");
        }

        // Corrupt two chunks so different worker groups each hit an error:
        // the fan-out must blame the *earliest* corrupt chunk, exactly as
        // the streaming reader does.
        let offsets = v3_chunk_offsets(&bytes, trace.name().len());
        let mut b = bytes.clone();
        b[offsets[2] + 10] |= 0x80;
        b[offsets[4] + 10] |= 0x80;
        let serial = {
            let mut reader = ChunkedTraceReader::new(b.as_slice()).expect("header intact");
            let mut records = Vec::new();
            loop {
                match reader.next_chunk_into_borrowed(&mut records) {
                    Ok(0) => unreachable!("streaming decode must hit the corrupt chunk"),
                    Ok(_) => {}
                    Err(e) => break e,
                }
            }
        };
        for workers in [2usize, 3, 8] {
            let parallel = read_trace_bytes_parallel(&b, workers).expect_err("corrupt chunk");
            assert_eq!(
                format!("{parallel:?}"),
                format!("{serial:?}"),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn bad_delta_base_is_a_typed_error() {
        // Hand-assemble a v3 file whose single record steps the PC stream
        // below zero — the "bad delta base" shape a resequenced or
        // bit-flipped chunk produces.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RCTRACE3");
        bytes.push(1); // flags: compressed
        bytes.extend_from_slice(&1u32.to_le_bytes()); // name_len
        bytes.push(b'x');
        bytes.extend_from_slice(&1u64.to_le_bytes()); // records
        bytes.extend_from_slice(&1u32.to_le_bytes()); // chunk len
        let payload: &[u8] = &[0x01, 0, 0, 0x01]; // layout: 1 PC byte; head = Int; pc delta = -1
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(payload);
        assert!(matches!(
            read_trace(&mut bytes.as_slice()),
            Err(CodecError::BadPayload(CorruptChunk::DeltaOutOfRange))
        ));
    }

    #[test]
    fn v3_prefix_serving_never_reads_corruption_beyond_the_prefix() {
        let dir =
            std::env::temp_dir().join(format!("rescache-codec-v3prefix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("compress.v3.rctrace");
        let trace = sample(2 * CHUNK_RECORDS + 100);
        save_trace(&path, &trace).expect("save");

        // Scribble over the *last* chunk's directory entry.
        let mut bytes = std::fs::read(&path).expect("read");
        let last = *v3_chunk_offsets(&bytes, trace.name().len())
            .last()
            .expect("chunks");
        bytes[last + 4..last + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).expect("corrupt tail");

        // A prefix covered by the intact chunks serves cleanly...
        let n = CHUNK_RECORDS + 17;
        let mut source = TraceFileSource::open(&path, Some(n)).expect("open prefix");
        let mut records = Vec::with_capacity(n);
        loop {
            let chunk = source.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records.extend_from_slice(chunk);
        }
        assert!(source.fault().is_none(), "{:?}", source.fault());
        assert_eq!(records, &trace.records()[..n]);
        // ...while the full read reports the corruption typed.
        assert!(matches!(
            load_trace(&path),
            Err(CodecError::BadChunkBytes { .. })
        ));

        // A full-file source faults mid-stream instead of panicking, after
        // delivering every intact chunk.
        let mut source = TraceFileSource::open(&path, None).expect("open full");
        let mut delivered = 0;
        loop {
            let chunk = source.next_chunk();
            if chunk.is_empty() {
                break;
            }
            delivered += chunk.len();
        }
        assert_eq!(delivered, 2 * CHUNK_RECORDS, "intact chunks arrive");
        assert!(matches!(
            source.fault(),
            Some(CodecError::BadChunkBytes { .. })
        ));
        assert!(source.next_chunk().is_empty(), "faulted source stays dry");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_format_and_chain() {
        let err = CodecError::from(io::Error::other("boom"));
        assert!(err.to_string().contains("boom"));
        assert!(std::error::Error::source(&err).is_some());
        let err = CodecError::Truncated {
            expected: 10,
            got: 3,
        };
        assert!(err.to_string().contains("truncated"));
    }
}
