//! The twelve SPEC-like application profiles used by the paper's evaluation.
//!
//! The paper runs `ammp`, `vortex` and `vpr` from SPEC2000 and nine SPEC95
//! applications. SPEC binaries and reference inputs are proprietary, so these
//! profiles are synthetic stand-ins that encode the properties the paper's
//! per-application discussion attributes to each benchmark:
//!
//! * the **data working-set size** and whether it is constant, varying or
//!   periodic (Section 4.2.1 groups the applications into exactly these
//!   classes),
//! * the **instruction footprint** and its phase behaviour (Section 4.2.2),
//! * **conflict-miss propensity** — how many mutually aliasing hot segments
//!   the working set has, i.e. how much associativity the application needs
//!   (the paper's explanation of why `apsi`, `gcc`, `su2cor`, `vortex` and
//!   `vpr` prefer selective-sets),
//! * whether the required size falls **between** sizes offered by an
//!   organization (`compress`, `ijpeg` — the paper's "unavailable-size"
//!   class),
//! * instruction mix, branch behaviour and ILP (which determine how much of
//!   the miss latency each processor configuration can hide).

use crate::address::AccessMix;
use crate::branch::BranchBehavior;
use crate::code::CodeShape;
use crate::ilp::IlpBehavior;
use crate::mix::InstructionMix;
use crate::phase::{Phase, PhaseSchedule};
use crate::profile::{AppProfile, CodeBehavior, DataBehavior};
use crate::working_set::WorkingSetSpec;

/// Base address used for instruction footprints (disjoint from data).
const CODE_BASE: u64 = 0x0040_0000;

/// Period (in dynamic instructions) used by periodic phase schedules.
const PERIOD: u64 = 800_000;

const KIB: u64 = 1024;

fn data_ws(bytes_kib: f64, conflict_ways: u32) -> WorkingSetSpec {
    WorkingSetSpec::conflicting((bytes_kib * KIB as f64) as u64, conflict_ways)
}

fn code_ws(bytes_kib: f64, conflict_ways: u32) -> WorkingSetSpec {
    WorkingSetSpec::conflicting((bytes_kib * KIB as f64) as u64, conflict_ways).at_base(CODE_BASE)
}

/// Names of all twelve applications, in the order the paper's figures use.
pub const APP_NAMES: [&str; 12] = [
    "ammp", "applu", "apsi", "compress", "gcc", "ijpeg", "m88ksim", "su2cor", "swim", "tomcatv",
    "vortex", "vpr",
];

/// Returns the profile for the named application, or `None` if the name is
/// not one of [`APP_NAMES`].
pub fn profile(name: &str) -> Option<AppProfile> {
    let p = match name {
        "ammp" => ammp(),
        "applu" => applu(),
        "apsi" => apsi(),
        "compress" => compress(),
        "gcc" => gcc(),
        "ijpeg" => ijpeg(),
        "m88ksim" => m88ksim(),
        "su2cor" => su2cor(),
        "swim" => swim(),
        "tomcatv" => tomcatv(),
        "vortex" => vortex(),
        "vpr" => vpr(),
        _ => return None,
    };
    Some(p)
}

/// Returns all twelve profiles in the order of [`APP_NAMES`].
pub fn all_profiles() -> Vec<AppProfile> {
    APP_NAMES
        .iter()
        .map(|n| profile(n).expect("all APP_NAMES have profiles"))
        .collect()
}

/// `ammp` (SPEC2000 FP): small, constant data working set and a tiny
/// instruction footprint; benefits from the smallest offered sizes.
pub fn ammp() -> AppProfile {
    AppProfile::new(
        "ammp",
        DataBehavior::new(PhaseSchedule::constant(data_ws(3.0, 1)))
            .with_access_mix(AccessMix::new(0.35, 0.62, 0.03)),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(2.0, 1)))
            .with_shape(CodeShape::tight_loops()),
    )
    .with_mix(InstructionMix::new(0.27, 0.09, 0.22))
    .with_branch(BranchBehavior::new(0.12, 0.9))
    .with_ilp(IlpBehavior::new(3.0, 0.45, 0.15))
}

/// `applu` (SPEC95 FP): small constant data working set, periodically varying
/// instruction footprint, highly parallel loops.
pub fn applu() -> AppProfile {
    AppProfile::new(
        "applu",
        DataBehavior::new(PhaseSchedule::constant(data_ws(3.5, 1)))
            .with_access_mix(AccessMix::new(0.6, 0.37, 0.03))
            .with_stride(8),
        CodeBehavior::new(PhaseSchedule::periodic(
            PERIOD,
            vec![
                Phase::new(0.55, code_ws(3.0, 1)),
                Phase::new(0.45, code_ws(12.0, 1)),
            ],
        ))
        .with_shape(CodeShape {
            inner_iters: 24,
            ..CodeShape::tight_loops()
        }),
    )
    .with_mix(InstructionMix::floating_point())
    .with_branch(BranchBehavior::predictable())
    .with_ilp(IlpBehavior::parallel())
}

/// `apsi` (SPEC95 FP): medium working set with strong conflict structure
/// (needs its associativity) and mild variation; periodic instruction
/// footprint that also needs associativity.
pub fn apsi() -> AppProfile {
    AppProfile::new(
        "apsi",
        DataBehavior::new(PhaseSchedule::sequence(vec![
            Phase::new(0.5, data_ws(8.0, 3)),
            Phase::new(0.5, data_ws(12.0, 3)),
        ]))
        .with_access_mix(AccessMix::new(0.5, 0.47, 0.03)),
        CodeBehavior::new(PhaseSchedule::periodic(
            PERIOD,
            vec![
                Phase::new(0.5, code_ws(6.0, 3)),
                Phase::new(0.5, code_ws(14.0, 3)),
            ],
        )),
    )
    .with_mix(InstructionMix::floating_point())
    .with_branch(BranchBehavior::new(0.10, 0.92))
    .with_ilp(IlpBehavior::new(7.0, 0.5, 0.3))
}

/// `compress` (SPEC95 INT): data working set of ~20 KiB, which falls between
/// the 16 KiB and 32 KiB points offered by selective-sets but is covered by
/// selective-ways' 24 KiB point; tiny instruction footprint.
pub fn compress() -> AppProfile {
    AppProfile::new(
        "compress",
        DataBehavior::new(PhaseSchedule::sequence(vec![
            Phase::new(0.35, data_ws(8.0, 1)),
            Phase::new(0.65, data_ws(20.0, 1)),
        ]))
        .with_access_mix(AccessMix::new(0.30, 0.66, 0.04)),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(2.0, 1)))
            .with_shape(CodeShape::tight_loops()),
    )
    .with_mix(InstructionMix::new(0.28, 0.14, 0.02))
    .with_branch(BranchBehavior::new(0.25, 0.85))
    .with_ilp(IlpBehavior::moderate())
}

/// `gcc` (SPEC95 INT): strongly varying data working set with conflict
/// structure, and an instruction footprint larger than the 32 KiB L1.
pub fn gcc() -> AppProfile {
    AppProfile::new(
        "gcc",
        DataBehavior::new(PhaseSchedule::sequence(vec![
            Phase::new(0.35, data_ws(8.0, 4)),
            Phase::new(0.35, data_ws(16.0, 4)),
            Phase::new(0.30, data_ws(24.0, 4)),
        ]))
        .with_access_mix(AccessMix::new(0.35, 0.6, 0.05)),
        CodeBehavior::new(PhaseSchedule::sequence(vec![
            Phase::new(0.5, code_ws(36.0, 2)),
            Phase::new(0.5, code_ws(42.0, 2)),
        ]))
        .with_shape(CodeShape::call_heavy()),
    )
    .with_mix(InstructionMix::integer())
    .with_branch(BranchBehavior::irregular())
    .with_ilp(IlpBehavior::new(3.5, 0.45, 0.15))
}

/// `ijpeg` (SPEC95 INT): small data working set that sits between offered
/// sizes (~6 KiB) with conflict structure; small, periodically varying
/// instruction footprint.
pub fn ijpeg() -> AppProfile {
    AppProfile::new(
        "ijpeg",
        DataBehavior::new(PhaseSchedule::periodic(
            PERIOD,
            vec![
                Phase::new(0.5, data_ws(5.0, 2)),
                Phase::new(0.5, data_ws(7.0, 2)),
            ],
        ))
        .with_access_mix(AccessMix::new(0.55, 0.42, 0.03)),
        CodeBehavior::new(PhaseSchedule::periodic(
            PERIOD,
            vec![
                Phase::new(0.5, code_ws(3.0, 1)),
                Phase::new(0.5, code_ws(6.0, 1)),
            ],
        ))
        .with_shape(CodeShape {
            inner_iters: 16,
            ..CodeShape::default()
        }),
    )
    .with_mix(InstructionMix::new(0.25, 0.10, 0.08))
    .with_branch(BranchBehavior::new(0.15, 0.9))
    .with_ilp(IlpBehavior::moderate())
}

/// `m88ksim` (SPEC95 INT): small constant data working set and instruction
/// footprint (a CPU simulator's hot interpreter loop).
pub fn m88ksim() -> AppProfile {
    AppProfile::new(
        "m88ksim",
        DataBehavior::new(PhaseSchedule::constant(data_ws(2.5, 1)))
            .with_access_mix(AccessMix::new(0.35, 0.63, 0.02)),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(4.0, 1))).with_shape(CodeShape {
            inner_iters: 12,
            ..CodeShape::default()
        }),
    )
    .with_mix(InstructionMix::integer())
    .with_branch(BranchBehavior::new(0.12, 0.9))
    .with_ilp(IlpBehavior::moderate())
}

/// `su2cor` (SPEC95 FP): periodically varying data working set (repeating
/// execution phases) with conflict structure; modest instruction footprint
/// that needs associativity.
pub fn su2cor() -> AppProfile {
    AppProfile::new(
        "su2cor",
        DataBehavior::new(PhaseSchedule::periodic(
            PERIOD,
            vec![
                Phase::new(0.5, data_ws(5.0, 3)),
                Phase::new(0.5, data_ws(20.0, 3)),
            ],
        ))
        .with_access_mix(AccessMix::new(0.55, 0.42, 0.03)),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(8.0, 3))),
    )
    .with_mix(InstructionMix::floating_point())
    .with_branch(BranchBehavior::predictable())
    .with_ilp(IlpBehavior::parallel())
}

/// `swim` (SPEC95 FP): data working set that just about fills the 32 KiB L1
/// (array sweeps) — any downsizing adds a large number of misses, so the
/// paper reports no downsizing for it; tiny instruction footprint.
pub fn swim() -> AppProfile {
    AppProfile::new(
        "swim",
        DataBehavior::new(PhaseSchedule::constant(data_ws(28.0, 1)))
            .with_access_mix(AccessMix::new(0.50, 0.45, 0.05))
            .with_stride(8),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(2.0, 1)))
            .with_shape(CodeShape::tight_loops()),
    )
    .with_mix(InstructionMix::floating_point())
    .with_branch(BranchBehavior::predictable())
    .with_ilp(IlpBehavior::new(4.0, 0.5, 0.2))
}

/// `tomcatv` (SPEC95 FP): moderate constant data working set with conflict
/// structure (vectorised mesh code); instruction footprint larger than 32 KiB.
pub fn tomcatv() -> AppProfile {
    AppProfile::new(
        "tomcatv",
        DataBehavior::new(PhaseSchedule::constant(data_ws(14.0, 3)))
            .with_access_mix(AccessMix::new(0.6, 0.36, 0.04)),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(38.0, 2)))
            .with_shape(CodeShape::call_heavy()),
    )
    .with_mix(InstructionMix::floating_point())
    .with_branch(BranchBehavior::predictable())
    .with_ilp(IlpBehavior::parallel())
}

/// `vortex` (SPEC2000 INT): object-database code with a varying data working
/// set, strong conflict structure and a large, varying instruction footprint
/// that falls between offered sizes.
pub fn vortex() -> AppProfile {
    AppProfile::new(
        "vortex",
        DataBehavior::new(PhaseSchedule::sequence(vec![
            Phase::new(0.35, data_ws(10.0, 4)),
            Phase::new(0.35, data_ws(18.0, 4)),
            Phase::new(0.30, data_ws(26.0, 4)),
        ]))
        .with_access_mix(AccessMix::new(0.35, 0.6, 0.05)),
        CodeBehavior::new(PhaseSchedule::sequence(vec![
            Phase::new(0.5, code_ws(20.0, 2)),
            Phase::new(0.5, code_ws(26.0, 2)),
        ]))
        .with_shape(CodeShape::call_heavy()),
    )
    .with_mix(InstructionMix::integer())
    .with_branch(BranchBehavior::new(0.2, 0.88))
    .with_ilp(IlpBehavior::moderate())
}

/// `vpr` (SPEC2000 INT): place-and-route code with a conflict-heavy working
/// set around 12 KiB and an instruction footprint between offered sizes.
pub fn vpr() -> AppProfile {
    AppProfile::new(
        "vpr",
        DataBehavior::new(PhaseSchedule::sequence(vec![
            Phase::new(0.5, data_ws(10.0, 3)),
            Phase::new(0.5, data_ws(14.0, 3)),
        ]))
        .with_access_mix(AccessMix::new(0.4, 0.56, 0.04)),
        CodeBehavior::new(PhaseSchedule::sequence(vec![
            Phase::new(0.5, code_ws(12.0, 3)),
            Phase::new(0.5, code_ws(15.0, 3)),
        ])),
    )
    .with_mix(InstructionMix::integer())
    .with_branch(BranchBehavior::irregular())
    .with_ilp(IlpBehavior::new(3.5, 0.45, 0.15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_resolve() {
        for name in APP_NAMES {
            let p = profile(name).expect("named profile exists");
            assert_eq!(p.name, name);
        }
        assert!(profile("does-not-exist").is_none());
    }

    #[test]
    fn all_profiles_returns_twelve() {
        let all = all_profiles();
        assert_eq!(all.len(), 12);
        let names: Vec<_> = all.iter().map(|p| p.name).collect();
        assert_eq!(names, APP_NAMES.to_vec());
    }

    #[test]
    fn code_and_data_regions_are_disjoint() {
        for p in all_profiles() {
            for dp in p.data.schedule.phases() {
                for cp in p.code.schedule.phases() {
                    let code_end = cp.spec.base + 64 * 1024 * 1024;
                    assert!(
                        dp.spec.base >= code_end || dp.spec.base >= 0x1000_0000,
                        "{}: data and code regions overlap",
                        p.name
                    );
                }
            }
        }
    }

    #[test]
    fn small_working_set_apps_are_small() {
        for name in ["ammp", "applu", "m88ksim"] {
            let p = profile(name).unwrap();
            assert!(
                p.mean_data_working_set() <= 4.0 * 1024.0,
                "{name} should have a small data working set"
            );
        }
    }

    #[test]
    fn swim_fills_the_l1_capacity() {
        let ws = swim().mean_data_working_set();
        assert!(
            ws > 24.0 * 1024.0,
            "swim's working set should be close to the 32K L1 so downsizing hurts, got {ws}"
        );
    }

    #[test]
    fn gcc_and_tomcatv_instruction_footprints_exceed_l1() {
        assert!(gcc().mean_code_footprint() > 32.0 * 1024.0);
        assert!(tomcatv().mean_code_footprint() > 32.0 * 1024.0);
    }

    #[test]
    fn conflict_apps_need_associativity() {
        for name in ["apsi", "gcc", "su2cor", "vortex", "vpr"] {
            let p = profile(name).unwrap();
            let max_conflict = p
                .data
                .schedule
                .phases()
                .iter()
                .map(|ph| ph.spec.conflict_ways)
                .max()
                .unwrap();
            assert!(
                max_conflict >= 2,
                "{name} should have conflict-heavy data references"
            );
        }
    }

    #[test]
    fn compress_needs_a_size_between_sets_points_in_its_large_phase() {
        let p = compress();
        let max = p.data.schedule.max_bytes();
        assert!(
            max > 16 * 1024 && max < 32 * 1024,
            "compress's large phase should fall between 16K and 32K, got {max}"
        );
        // ... while also exhibiting working-set variation (the paper lists it
        // in both the variation and unavailable-size classes).
        let min = p
            .data
            .schedule
            .phases()
            .iter()
            .map(|ph| ph.spec.bytes)
            .min()
            .unwrap();
        assert!(
            min <= 8 * 1024,
            "compress should also have a small phase, got {min}"
        );
    }
}
