//! Application profiles: everything needed to generate one application's
//! trace.

use crate::address::AccessMix;
use crate::branch::BranchBehavior;
use crate::code::CodeShape;
use crate::ilp::IlpBehavior;
use crate::mix::InstructionMix;
use crate::phase::PhaseSchedule;

/// Data-reference behaviour of an application.
#[derive(Debug, Clone, PartialEq)]
pub struct DataBehavior {
    /// How the data working set evolves over the trace.
    pub schedule: PhaseSchedule,
    /// Relative weights of sequential / random-in-set / streaming accesses.
    pub access_mix: AccessMix,
    /// Byte stride of sequential accesses.
    pub stride: u64,
}

impl DataBehavior {
    /// Creates a data behaviour with a default access mix and an 8-byte
    /// stride.
    pub fn new(schedule: PhaseSchedule) -> Self {
        Self {
            schedule,
            access_mix: AccessMix::default(),
            stride: 8,
        }
    }

    /// Overrides the access mix.
    pub fn with_access_mix(mut self, mix: AccessMix) -> Self {
        self.access_mix = mix;
        self
    }

    /// Overrides the sequential stride.
    pub fn with_stride(mut self, stride: u64) -> Self {
        self.stride = stride.max(1);
        self
    }
}

/// Instruction-reference behaviour of an application.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeBehavior {
    /// How the instruction footprint evolves over the trace.
    pub schedule: PhaseSchedule,
    /// Shape of the loop/call structure over that footprint.
    pub shape: CodeShape,
}

impl CodeBehavior {
    /// Creates a code behaviour with the default shape.
    pub fn new(schedule: PhaseSchedule) -> Self {
        Self {
            schedule,
            shape: CodeShape::default(),
        }
    }

    /// Overrides the code shape.
    pub fn with_shape(mut self, shape: CodeShape) -> Self {
        self.shape = shape;
        self
    }
}

/// A complete synthetic application profile.
///
/// The twelve profiles shipped in [`crate::spec`] stand in for the SPEC95 /
/// SPEC2000 applications of the paper; see the crate-level documentation for
/// the substitution rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Application name (matches the paper's benchmark name).
    pub name: &'static str,
    /// Data-reference behaviour.
    pub data: DataBehavior,
    /// Instruction-reference behaviour.
    pub code: CodeBehavior,
    /// Instruction mix.
    pub mix: InstructionMix,
    /// Branch behaviour.
    pub branch: BranchBehavior,
    /// Instruction-level parallelism behaviour.
    pub ilp: IlpBehavior,
}

impl AppProfile {
    /// Creates a profile with default mix, branch and ILP behaviour.
    pub fn new(name: &'static str, data: DataBehavior, code: CodeBehavior) -> Self {
        Self {
            name,
            data,
            code,
            mix: InstructionMix::default(),
            branch: BranchBehavior::default(),
            ilp: IlpBehavior::default(),
        }
    }

    /// Overrides the instruction mix.
    pub fn with_mix(mut self, mix: InstructionMix) -> Self {
        self.mix = mix;
        self
    }

    /// Overrides the branch behaviour.
    pub fn with_branch(mut self, branch: BranchBehavior) -> Self {
        self.branch = branch;
        self
    }

    /// Overrides the ILP behaviour.
    pub fn with_ilp(mut self, ilp: IlpBehavior) -> Self {
        self.ilp = ilp;
        self
    }

    /// A stable fingerprint of the profile's full contents (FNV-1a over the
    /// `Debug` rendering, which covers every field including float exacts).
    ///
    /// Profiles are usually identified by [`AppProfile::name`], but the
    /// builder methods allow two differing profiles to share a name; caches
    /// keyed per profile (like the experiment runner's trace cache) include
    /// this fingerprint so such profiles never alias.
    pub fn fingerprint(&self) -> u64 {
        let repr = format!("{self:?}");
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in repr.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Returns `true` when this profile expands to the same record at every
    /// index regardless of the requested trace length, i.e. a generated trace
    /// of `N` records is a bit-exact prefix of the profile's `M > N`-record
    /// trace.
    ///
    /// The generator's code walk, address walk, RNG sub-streams and
    /// dependency sampler all advance strictly per record; the only
    /// length-dependent input is the pair of phase schedules, so the profile
    /// is prefix-stable exactly when both schedules are
    /// [`PhaseSchedule::length_invariant`]. The experiment trace store uses
    /// this to serve short trace requests from longer persisted entries
    /// without regenerating.
    pub fn length_invariant(&self) -> bool {
        self.data.schedule.length_invariant() && self.code.schedule.length_invariant()
    }

    /// Instruction-weighted mean data working-set size in bytes.
    pub fn mean_data_working_set(&self) -> f64 {
        self.data.schedule.mean_bytes()
    }

    /// Instruction-weighted mean instruction footprint in bytes.
    pub fn mean_code_footprint(&self) -> f64 {
        self.code.schedule.mean_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::working_set::WorkingSetSpec;

    fn profile() -> AppProfile {
        AppProfile::new(
            "test",
            DataBehavior::new(PhaseSchedule::constant(WorkingSetSpec::uniform(4096))),
            CodeBehavior::new(PhaseSchedule::constant(WorkingSetSpec::uniform(2048))),
        )
    }

    #[test]
    fn builder_chain() {
        let p = profile()
            .with_mix(InstructionMix::floating_point())
            .with_branch(BranchBehavior::predictable())
            .with_ilp(IlpBehavior::parallel());
        assert_eq!(p.mix, InstructionMix::floating_point());
        assert_eq!(p.branch, BranchBehavior::predictable());
        assert_eq!(p.ilp, IlpBehavior::parallel());
    }

    #[test]
    fn mean_working_sets() {
        let p = profile();
        assert_eq!(p.mean_data_working_set(), 4096.0);
        assert_eq!(p.mean_code_footprint(), 2048.0);
    }

    #[test]
    fn data_behavior_builders() {
        let d = DataBehavior::new(PhaseSchedule::constant(WorkingSetSpec::uniform(1024)))
            .with_stride(0)
            .with_access_mix(AccessMix::new(1.0, 0.0, 0.0));
        assert_eq!(d.stride, 1);
        assert!((d.access_mix.sequential - 1.0).abs() < 1e-12);
    }
}
