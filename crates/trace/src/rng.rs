//! A small, fast, deterministic pseudo-random number generator.
//!
//! The simulation pipeline must be bit-for-bit reproducible across platforms
//! and library versions, and trace generation sits on the hot path of every
//! experiment, so this crate uses its own xorshift/SplitMix generator rather
//! than pulling a general-purpose RNG into the simulation path.

/// The shared degenerate-geometric rule: a geometric draw whose mean is at
/// most 1 is the constant 1 and consumes **no randomness**.
///
/// Both [`Prng::geometric`] and the trace generator's
/// [`DistanceSampler`](crate::ilp::DistanceSampler) (in every
/// [`TraceFormat`](crate::TraceFormat)) short-circuit on this predicate; it
/// lives here as the single definition so the two can never drift apart —
/// a sampler that consumed randomness where `geometric` does not (or vice
/// versa) would silently desynchronize every later draw of the stream.
#[inline]
pub fn geometric_is_constant(mean: f64) -> bool {
    mean <= 1.0
}

/// The exact fixed-point threshold of the comparison `next_f64() < p`:
/// for every possible draw, `next_bits53() < chance_bits(p)` decides
/// identically to [`Prng::chance`] while performing no `f64` math per draw.
///
/// Why this is *exact*, not approximate: [`Prng::next_f64`] is
/// `(u >> 11) as f64 * 2^-53` — the 53-bit integer `x = u >> 11` converts
/// and scales without rounding, so `next_f64() < p` is the real-number
/// comparison `x < p * 2^53`. For an integer `x` that is equivalent to
/// `x < ceil(p * 2^53)`, and `ceil` here is itself exact: `p * 2^53` only
/// shifts the exponent of `p`, and `f64::ceil` never rounds. The edge cases
/// also agree bit for bit: `p <= 0` and NaN give threshold 0 (never true,
/// like the `f64` comparison), `p >= 1` gives a threshold above any 53-bit
/// draw (always true, like `chance(1.1)`).
///
/// Callers that compare one probability per draw use [`Prng::chance`]; hot
/// paths that would otherwise pay an int→float conversion and float compare
/// per record (the generator's mix draws) hoist `chance_bits` out of the
/// loop and compare [`Prng::next_bits53`] against it. Both consume exactly
/// one [`Prng::next_u64`], so mixing the two styles never desynchronizes a
/// stream — which is what lets the address stream use integer thresholds in
/// *every* [`TraceFormat`](crate::TraceFormat) without a format bump.
#[inline]
pub fn chance_bits(p: f64) -> u64 {
    // 2^53 as an exactly representable f64; `as u64` saturates negatives
    // and NaN to 0 and +inf to u64::MAX, preserving the comparison edge
    // cases described above.
    (p * 9_007_199_254_740_992.0).ceil() as u64
}

/// A deterministic pseudo-random number generator (xorshift64* seeded through
/// SplitMix64).
///
/// # Examples
///
/// ```
/// use rescache_trace::Prng;
///
/// let mut a = Prng::new(7);
/// let mut b = Prng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a seed. Any seed (including zero) is valid.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 step to spread low-entropy seeds over the state space and
        // to guarantee a non-zero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z | 1 }
    }

    /// Returns the next 64-bit pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Returns `0` when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift reduction; bias is negligible for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns the 53 uniform bits [`Prng::next_f64`] is built from, without
    /// the float conversion. Comparing this against [`chance_bits`] decides
    /// identically to [`Prng::chance`] (see `chance_bits` for the proof).
    #[inline]
    pub fn next_bits53(&mut self) -> u64 {
        self.next_u64() >> 11
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a geometrically distributed value with the given mean
    /// (minimum 1). Used for dependency distances and burst lengths.
    pub fn geometric(&mut self, mean: f64) -> u64 {
        if geometric_is_constant(mean) {
            return 1;
        }
        let p = 1.0 / mean;
        self.geometric_with_ln((1.0 - p).ln())
    }

    /// [`Prng::geometric`] with the constant denominator `ln(1 - 1/mean)`
    /// precomputed by the caller.
    ///
    /// The trace generator draws one or two geometric distances per
    /// instruction; hoisting the denominator's `ln` out of the per-record
    /// loop (see [`crate::ilp::DistanceSampler`]) removes half of the
    /// transcendental math from the generation hot path while producing
    /// bit-identical values.
    pub fn geometric_with_ln(&mut self, ln_one_minus_p: f64) -> u64 {
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        let v = (u.ln() / ln_one_minus_p).floor() as u64;
        v + 1
    }

    /// Derives an independent generator for a named sub-stream.
    pub fn fork(&mut self, label: u64) -> Self {
        Self::new(self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl Default for Prng {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Prng::new(123);
        let mut b = Prng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Prng::new(9);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_zero_bound_is_zero() {
        let mut rng = Prng::new(9);
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Prng::new(17);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Prng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.1));
    }

    #[test]
    fn chance_bits_decides_identically_to_chance() {
        // Identity of the decision *and* of the randomness consumed, across
        // probabilities spanning the unit interval, its edges and beyond.
        let probabilities = [
            0.0,
            f64::MIN_POSITIVE,
            1e-17,
            0.25,
            0.26,
            0.12,
            0.55,
            0.55 + 0.40, // a rounded partial sum, as the mix draws use
            0.999_999_999_999_999,
            1.0,
            1.1,
            -0.3,
            f64::NAN,
        ];
        for p in probabilities {
            let bits = chance_bits(p);
            let mut a = Prng::new(71);
            let mut b = Prng::new(71);
            for i in 0..50_000 {
                assert_eq!(
                    b.next_bits53() < bits,
                    a.chance(p),
                    "p {p}, draw {i}: integer threshold diverged from f64"
                );
            }
            assert_eq!(a.next_u64(), b.next_u64(), "p {p}: consumption differs");
        }
        // Exhaustively near a threshold: the draws that straddle
        // chance_bits(p) decide exactly as the f64 comparison does.
        let p = 0.37;
        let t = chance_bits(p);
        for x in t.saturating_sub(3)..=t + 3 {
            let as_f64 = x as f64 * (1.0 / (1u64 << 53) as f64);
            assert_eq!(x < t, as_f64 < p, "x {x} around threshold {t}");
        }
    }

    #[test]
    fn geometric_mean_is_reasonable() {
        let mut rng = Prng::new(5);
        let n = 20_000;
        let mean = 4.0;
        let sum: u64 = (0..n).map(|_| rng.geometric(mean)).sum();
        let observed = sum as f64 / n as f64;
        assert!(
            (observed - mean).abs() < 0.5,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut rng = Prng::new(5);
        for _ in 0..1000 {
            assert!(rng.geometric(0.5) >= 1);
            assert!(rng.geometric(3.0) >= 1);
        }
    }

    #[test]
    fn degenerate_boundary_is_shared_and_consumes_no_randomness() {
        // The rule: mean <= 1 is the constant 1 (no draw); anything above 1
        // is a real geometric draw. Pin the boundary at exactly 1.0 and at
        // the next representable mean above it.
        let just_above = 1.0f64.next_up();
        assert!(geometric_is_constant(1.0));
        assert!(geometric_is_constant(0.0));
        assert!(!geometric_is_constant(just_above));

        // At the boundary: constant 1, RNG state untouched.
        let mut rng = Prng::new(21);
        let before = rng.clone();
        assert_eq!(rng.geometric(1.0), 1);
        assert_eq!(rng, before, "mean = 1.0 must not consume randomness");

        // Just above the boundary: a real draw that consumes exactly one
        // 64-bit value (p ~ 1, so the value itself is still 1 almost surely).
        let drawn = rng.geometric(just_above);
        assert!(drawn >= 1);
        let mut expected = before;
        expected.next_u64();
        assert_eq!(
            rng, expected,
            "mean just above 1 must consume exactly one draw"
        );
    }

    #[test]
    fn fork_is_independent() {
        let mut rng = Prng::new(11);
        let mut f1 = rng.fork(1);
        let mut f2 = rng.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }
}
