//! The [`TraceGenerator`]: expands an [`AppProfile`] into records, either as
//! a materialized [`Trace`] or as a resumable chunked [`TraceStream`].

use crate::address::AddressStream;
use crate::code::CodeStream;
use crate::format::TraceFormat;
use crate::ilp::DistanceSampler;
use crate::mix::{MixClass, MixThresholds};
use crate::phase::ScheduleCursor;
use crate::profile::AppProfile;
use crate::record::{InstrRecord, Op};
use crate::rng::Prng;
use crate::source::{TraceSource, CHUNK_RECORDS};
use crate::trace::Trace;

/// Deterministically expands an application profile into a dynamic
/// instruction trace.
///
/// The same `(profile, seed, length)` triple always produces the same trace,
/// which lets an experiment generate each application once and replay it under
/// every cache configuration. [`TraceGenerator::generate`] materializes the
/// whole trace; [`TraceGenerator::stream`] returns a resumable
/// [`TraceStream`] that produces the identical record sequence chunk by
/// chunk, for consumers that never need the full trace resident at once.
///
/// # Examples
///
/// ```
/// use rescache_trace::{spec, TraceGenerator};
///
/// let trace = TraceGenerator::new(spec::ammp(), 1).generate(5_000);
/// assert_eq!(trace.name(), "ammp");
/// assert_eq!(trace.len(), 5_000);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: AppProfile,
    seed: u64,
    format: TraceFormat,
}

impl TraceGenerator {
    /// Creates a generator for the given profile and seed, producing the
    /// default (current) [`TraceFormat`]; use [`TraceGenerator::with_format`]
    /// to reproduce another version's bit stream.
    pub fn new(profile: AppProfile, seed: u64) -> Self {
        Self {
            profile,
            seed,
            format: TraceFormat::default(),
        }
    }

    /// Selects the [`TraceFormat`] this generator produces. Formats differ
    /// only in dedicated RNG sub-streams: the dependency-distance bits
    /// (v1 vs v2/v3) and the instruction-mix draw's quantization (v1/v2
    /// compare `next_f64()` at 53-bit resolution, v3 compares the raw
    /// 64-bit draw against fixed-point thresholds); PCs, addresses and
    /// branch outcomes are identical across all formats.
    pub fn with_format(mut self, format: TraceFormat) -> Self {
        self.format = format;
        self
    }

    /// The profile this generator expands.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// The [`TraceFormat`] this generator produces.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// Generates a trace of `instructions` dynamic instructions.
    pub fn generate(&self, instructions: usize) -> Trace {
        // Drive the stream's single-record step directly into the final
        // vector: same record sequence as pulling chunks, without staging
        // each chunk through the stream's internal buffer.
        let mut stream = self.stream(instructions);
        let mut records = Vec::with_capacity(instructions);
        for _ in 0..instructions {
            let record = stream.step();
            records.push(record);
        }
        Trace::with_format(self.profile.name, records, self.format)
    }

    /// Returns a resumable stream over the same `instructions`-long record
    /// sequence [`TraceGenerator::generate`] would materialize.
    ///
    /// The stream carries the full generator state (code walk, address walk,
    /// RNG sub-streams, phase-schedule cursors) between chunks, so pulling
    /// all of its chunks performs exactly the work of one `generate` call
    /// while keeping only [`CHUNK_RECORDS`] records resident.
    pub fn stream(&self, instructions: usize) -> TraceStream {
        let mut rng = Prng::new(self.seed ^ hash_name(self.profile.name));
        let mut code_shape = self.profile.code.shape;
        code_shape.data_dep_branch_prob = self.profile.branch.data_dependent_fraction;

        let code = CodeStream::new(code_shape, rng.fork(1));
        let data = AddressStream::new(
            self.profile.data.access_mix,
            self.profile.data.stride,
            rng.fork(2),
        );
        let mix_rng = rng.fork(3);
        let ilp_rng = rng.fork(4);

        TraceStream {
            ilp: self.profile.ilp.sampler(self.format),
            // v3's zero-f64 classification: the cumulative thresholds are
            // hoisted out of the per-record loop here, exactly as the
            // distance sampler hoists its table.
            mix_thresholds: match self.format {
                TraceFormat::V1 | TraceFormat::V2 => None,
                TraceFormat::V3 => Some(self.profile.mix.thresholds()),
            },
            format: self.format,
            profile: self.profile.clone(),
            total: instructions as u64,
            pos: 0,
            fence: instructions as u64,
            code,
            data,
            mix_rng,
            ilp_rng,
            code_cursor: ScheduleCursor::new(),
            data_cursor: ScheduleCursor::new(),
            buf: Vec::with_capacity(CHUNK_RECORDS.min(instructions)),
        }
    }
}

/// A resumable, chunked producer of one application's record sequence (see
/// [`TraceGenerator::stream`]).
#[derive(Debug, Clone)]
pub struct TraceStream {
    profile: AppProfile,
    format: TraceFormat,
    total: u64,
    pos: u64,
    /// Absolute record index delivery is fenced at (see
    /// [`TraceSource::split_at`]).
    fence: u64,
    code: CodeStream,
    data: AddressStream,
    mix_rng: Prng,
    ilp_rng: Prng,
    ilp: DistanceSampler,
    /// `Some` for v3: the integer-threshold instruction-mix draw; `None`
    /// reproduces the v1/v2 `f64` comparison bit for bit.
    mix_thresholds: Option<MixThresholds>,
    code_cursor: ScheduleCursor,
    data_cursor: ScheduleCursor,
    buf: Vec<InstrRecord>,
}

impl TraceStream {
    /// Generates the next record; the caller guarantees `pos < total`.
    #[inline]
    fn step(&mut self) -> InstrRecord {
        let i = self.pos;
        let code_ws = *self
            .code_cursor
            .active(&self.profile.code.schedule, i, self.total);
        let data_ws = *self
            .data_cursor
            .active(&self.profile.data.schedule, i, self.total);
        let step = self.code.next_step(&code_ws);

        let op = if step.is_branch {
            Op::Branch { taken: step.taken }
        } else if let Some(thresholds) = &self.mix_thresholds {
            // v3: one raw 64-bit draw against precomputed fixed-point
            // thresholds — no f64 math per record. Consumes exactly the
            // one `next_u64` the f64 path does, so the code/data/ilp
            // sub-streams stay aligned across formats.
            match thresholds.classify(self.mix_rng.next_u64()) {
                MixClass::Load => Op::Load(self.data.next_address(&data_ws)),
                MixClass::Store => Op::Store(self.data.next_address(&data_ws)),
                MixClass::Fp => Op::Fp,
                MixClass::Int => Op::Int,
            }
        } else {
            let r = self.mix_rng.next_f64();
            let mix = self.profile.mix;
            if r < mix.load {
                Op::Load(self.data.next_address(&data_ws))
            } else if r < mix.load + mix.store {
                Op::Store(self.data.next_address(&data_ws))
            } else if r < mix.load + mix.store + mix.fp {
                Op::Fp
            } else {
                Op::Int
            }
        };

        let (dep1, dep2) = self.ilp.sample(&mut self.ilp_rng);
        self.pos = i + 1;
        InstrRecord::with_deps(step.pc, op, dep1, dep2)
    }
}

impl TraceSource for TraceStream {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn format(&self) -> TraceFormat {
        self.format
    }

    fn total_records(&self) -> usize {
        self.total as usize
    }

    fn next_chunk(&mut self) -> &[InstrRecord] {
        let remaining = self.fence - self.pos;
        let n = (CHUNK_RECORDS as u64).min(remaining) as usize;
        self.buf.clear();
        for _ in 0..n {
            let record = self.step();
            self.buf.push(record);
        }
        &self.buf
    }

    fn position(&self) -> usize {
        self.pos as usize
    }

    fn split_at(&mut self, at: usize) {
        self.fence = (at as u64).clamp(self.pos, self.total);
    }

    fn skip(&mut self, n: usize) {
        // A generator cannot jump: the RNG sub-streams and walk state advance
        // per record, so skipped records are produced and discarded.
        let n = (n as u64).min(self.total - self.pos);
        for _ in 0..n {
            let _ = self.step();
        }
        self.fence = self.fence.max(self.pos);
    }
}

/// Stable FNV-1a hash of the application name, used to decorrelate seeds
/// across applications.
fn hash_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let a = TraceGenerator::new(spec::gcc(), 7).generate(2_000);
        let b = TraceGenerator::new(spec::gcc(), 7).generate(2_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(spec::gcc(), 7).generate(2_000);
        let b = TraceGenerator::new(spec::gcc(), 8).generate(2_000);
        assert_ne!(a, b);
    }

    #[test]
    fn different_apps_differ() {
        let a = TraceGenerator::new(spec::gcc(), 7).generate(2_000);
        let b = TraceGenerator::new(spec::vpr(), 7).generate(2_000);
        assert_ne!(a.records(), b.records());
    }

    #[test]
    fn formats_differ_only_in_dependency_bits() {
        let n = 10_000;
        let v2 = TraceGenerator::new(spec::gcc(), 7)
            .with_format(TraceFormat::V2)
            .generate(n);
        let v1 = TraceGenerator::new(spec::gcc(), 7)
            .with_format(TraceFormat::V1)
            .generate(n);
        assert_eq!(v2.format(), TraceFormat::V2);
        assert_eq!(v1.format(), TraceFormat::V1);
        let mut dep_diffs = 0u64;
        for (a, b) in v1.iter().zip(v2.iter()) {
            assert_eq!(a.pc(), b.pc(), "PC walk must be format-independent");
            assert_eq!(a.op(), b.op(), "op/address must be format-independent");
            if (a.dep1(), a.dep2()) != (b.dep1(), b.dep2()) {
                dep_diffs += 1;
            }
        }
        assert!(
            dep_diffs > 0,
            "the v2 sampler must actually change dependency bits"
        );
    }

    #[test]
    fn v3_records_match_v2_record_for_record() {
        // v3 re-quantizes the mix draw from 53 to 64 bits; a draw can only
        // classify differently inside a ~2^-53-wide window per threshold, so
        // on any testable trace every field — PC, op, address *and* the
        // dependency bits (same sampler) — must come out identical. What v3
        // changes observably is the container: magic, flags byte and the
        // compressed chunk payloads (pinned by the codec and fixture tests).
        for profile in [spec::gcc(), spec::swim(), spec::su2cor()] {
            let name = profile.name;
            let n = 20_000;
            let v3 = TraceGenerator::new(profile.clone(), 7).generate(n);
            let v2 = TraceGenerator::new(profile, 7)
                .with_format(TraceFormat::V2)
                .generate(n);
            assert_eq!(v3.format(), TraceFormat::V3, "{name}: default is v3");
            assert_eq!(v2.format(), TraceFormat::V2);
            for (i, (a, b)) in v2.iter().zip(v3.iter()).enumerate() {
                assert_eq!(a.pc(), b.pc(), "{name} record {i}: PC");
                assert_eq!(a.op(), b.op(), "{name} record {i}: op/address");
                assert_eq!(
                    (a.dep1(), a.dep2()),
                    (b.dep1(), b.dep2()),
                    "{name} record {i}: dependency bits"
                );
            }
        }
    }

    #[test]
    fn stream_matches_generate_record_for_record() {
        // Cover all three schedule kinds (constant, sequence, periodic), a
        // length that is not a chunk multiple, and both trace formats.
        for format in TraceFormat::ALL {
            for profile in [spec::ammp(), spec::gcc(), spec::su2cor()] {
                let name = profile.name;
                let n = CHUNK_RECORDS + 777;
                let generator = TraceGenerator::new(profile, 5).with_format(format);
                let materialized = generator.generate(n);
                assert_eq!(materialized.format(), format);
                let mut stream = generator.stream(n);
                assert_eq!(stream.format(), format);
                let mut streamed = Vec::with_capacity(n);
                loop {
                    let chunk = stream.next_chunk();
                    if chunk.is_empty() {
                        break;
                    }
                    streamed.extend_from_slice(chunk);
                }
                assert_eq!(streamed, materialized.records(), "{name} {format}");
            }
        }
        // The original multi-chunk shape, under the default format.
        for profile in [spec::ammp(), spec::gcc(), spec::su2cor()] {
            let name = profile.name;
            let n = 2 * CHUNK_RECORDS + 777;
            let generator = TraceGenerator::new(profile, 5);
            let materialized = generator.generate(n);
            let mut stream = generator.stream(n);
            let mut streamed = Vec::with_capacity(n);
            loop {
                let chunk = stream.next_chunk();
                if chunk.is_empty() {
                    break;
                }
                assert!(chunk.len() <= CHUNK_RECORDS, "{name}: oversized chunk");
                streamed.extend_from_slice(chunk);
            }
            assert_eq!(stream.position(), n, "{name}");
            assert_eq!(streamed, materialized.records(), "{name}");
            // Exhausted streams keep returning empty chunks.
            assert!(stream.next_chunk().is_empty(), "{name}");
        }
    }

    #[test]
    fn stream_reports_identity() {
        let stream = TraceGenerator::new(spec::vpr(), 3).stream(100);
        assert_eq!(stream.name(), "vpr");
        assert_eq!(stream.total_records(), 100);
    }

    #[test]
    fn stream_split_resumes_mid_chunk() {
        // A split point that is neither 0 nor a chunk multiple: the fenced
        // stream must deliver the identical concatenated sequence.
        let n = CHUNK_RECORDS + 500;
        let split = CHUNK_RECORDS / 2 + 7;
        let generator = TraceGenerator::new(spec::su2cor(), 11);
        let reference = generator.generate(n);

        let mut stream = generator.stream(n);
        stream.split_at(split);
        let mut records = Vec::with_capacity(n);
        loop {
            let chunk = stream.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records.extend_from_slice(chunk);
        }
        assert_eq!(records.len(), split);
        assert_eq!(stream.position(), split);
        stream.split_at(n);
        loop {
            let chunk = stream.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records.extend_from_slice(chunk);
        }
        assert_eq!(records, reference.records());
    }

    #[test]
    fn stream_skip_advances_the_generator_state() {
        let n = 5_000;
        let skip = 1_234;
        let generator = TraceGenerator::new(spec::gcc(), 4);
        let reference = generator.generate(n);

        let mut stream = generator.stream(n);
        stream.skip(skip);
        assert_eq!(stream.position(), skip);
        let mut records = Vec::new();
        loop {
            let chunk = stream.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records.extend_from_slice(chunk);
        }
        assert_eq!(records, &reference.records()[skip..]);
        // Skipping past the end clamps and stays exhausted.
        stream.skip(10);
        assert_eq!(stream.position(), n);
        assert!(stream.next_chunk().is_empty());
    }

    #[test]
    fn length_invariant_profiles_generate_prefix_stable_traces() {
        // The store's cross-length prefix sharing is sound exactly when
        // `AppProfile::length_invariant` holds: verify the guarantee on the
        // shipped profiles that claim it, and that some profiles do claim it.
        let invariant: Vec<_> = spec::all_profiles()
            .into_iter()
            .filter(|p| p.length_invariant())
            .collect();
        assert!(
            invariant.len() >= 4,
            "several paper profiles have constant/periodic schedules"
        );
        for profile in [spec::ammp(), spec::su2cor(), spec::m88ksim()] {
            assert!(profile.length_invariant(), "{}", profile.name);
            let long = TraceGenerator::new(profile.clone(), 9).generate(12_000);
            let short = TraceGenerator::new(profile, 9).generate(5_000);
            assert_eq!(short.records(), &long.records()[..5_000]);
        }
        // A multi-phase sequence schedule scales with the total: not a prefix.
        assert!(!spec::gcc().length_invariant());
        let long = TraceGenerator::new(spec::gcc(), 9).generate(12_000);
        let short = TraceGenerator::new(spec::gcc(), 9).generate(5_000);
        assert_ne!(short.records(), &long.records()[..5_000]);
    }

    #[test]
    fn mem_fraction_tracks_mix() {
        for p in [spec::gcc(), spec::swim(), spec::m88ksim()] {
            let expected = p.mix.mem();
            let trace = TraceGenerator::new(p, 3).generate(50_000);
            let got = trace.stats().mem_fraction();
            // Branches take ~12-16% of slots, so the observed memory fraction
            // is slightly below the non-branch mix value.
            assert!(
                got > expected * 0.7 && got < expected * 1.05,
                "{}: mem fraction {got} vs mix {expected}",
                trace.name()
            );
        }
    }

    #[test]
    fn branch_fraction_is_reasonable() {
        let trace = TraceGenerator::new(spec::gcc(), 3).generate(50_000);
        let frac = trace.stats().branch_fraction();
        assert!((0.08..=0.25).contains(&frac), "branch fraction {frac}");
    }

    #[test]
    fn data_footprint_scales_with_working_set() {
        // Count only working-set blocks (below the streaming region) so the
        // comparison reflects the profiles' working-set sizes.
        let blocks = |name: &str| {
            let trace = TraceGenerator::new(spec::profile(name).unwrap(), 5).generate(100_000);
            let mut set = HashSet::new();
            for r in trace.iter() {
                if let Some(addr) = r.op().address() {
                    if addr < 0x7000_0000 {
                        set.insert(addr / 32);
                    }
                }
            }
            set.len()
        };
        let small = blocks("ammp");
        let large = blocks("swim");
        assert!(
            large > small * 4,
            "swim ({large} blocks) should touch far more data than ammp ({small})"
        );
    }

    #[test]
    fn instruction_footprint_scales_with_code_schedule() {
        let blocks = |name: &str| {
            let trace = TraceGenerator::new(spec::profile(name).unwrap(), 5).generate(100_000);
            let mut set = HashSet::new();
            for r in trace.iter() {
                set.insert(r.pc() / 32);
            }
            set.len()
        };
        let small = blocks("swim");
        let large = blocks("gcc");
        assert!(
            large > small * 4,
            "gcc ({large} i-blocks) should touch far more code than swim ({small})"
        );
    }
}
