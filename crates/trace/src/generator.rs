//! The [`TraceGenerator`]: expands an [`AppProfile`] into a [`Trace`].

use crate::address::AddressStream;
use crate::code::CodeStream;
use crate::profile::AppProfile;
use crate::record::{InstrRecord, Op};
use crate::rng::Prng;
use crate::trace::Trace;

/// Deterministically expands an application profile into a dynamic
/// instruction trace.
///
/// The same `(profile, seed, length)` triple always produces the same trace,
/// which lets an experiment generate each application once and replay it under
/// every cache configuration.
///
/// # Examples
///
/// ```
/// use rescache_trace::{spec, TraceGenerator};
///
/// let trace = TraceGenerator::new(spec::ammp(), 1).generate(5_000);
/// assert_eq!(trace.name(), "ammp");
/// assert_eq!(trace.len(), 5_000);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: AppProfile,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator for the given profile and seed.
    pub fn new(profile: AppProfile, seed: u64) -> Self {
        Self { profile, seed }
    }

    /// The profile this generator expands.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Generates a trace of `instructions` dynamic instructions.
    pub fn generate(&self, instructions: usize) -> Trace {
        let mut rng = Prng::new(self.seed ^ hash_name(self.profile.name));
        let mut code_shape = self.profile.code.shape;
        code_shape.data_dep_branch_prob = self.profile.branch.data_dependent_fraction;

        let mut code = CodeStream::new(code_shape, rng.fork(1));
        let mut data = AddressStream::new(
            self.profile.data.access_mix,
            self.profile.data.stride,
            rng.fork(2),
        );
        let mut mix_rng = rng.fork(3);
        let mut ilp_rng = rng.fork(4);

        let total = instructions as u64;
        let mut records = Vec::with_capacity(instructions);
        for i in 0..total {
            let code_ws = self.profile.code.schedule.active(i, total);
            let data_ws = self.profile.data.schedule.active(i, total);
            let step = code.next_step(code_ws);

            let op = if step.is_branch {
                Op::Branch { taken: step.taken }
            } else {
                let r = mix_rng.next_f64();
                let mix = self.profile.mix;
                if r < mix.load {
                    Op::Load(data.next_address(data_ws))
                } else if r < mix.load + mix.store {
                    Op::Store(data.next_address(data_ws))
                } else if r < mix.load + mix.store + mix.fp {
                    Op::Fp
                } else {
                    Op::Int
                }
            };

            let (dep1, dep2) = self.profile.ilp.sample(&mut ilp_rng);
            records.push(InstrRecord::with_deps(step.pc, op, dep1, dep2));
        }

        Trace::new(self.profile.name, records)
    }
}

/// Stable FNV-1a hash of the application name, used to decorrelate seeds
/// across applications.
fn hash_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let a = TraceGenerator::new(spec::gcc(), 7).generate(2_000);
        let b = TraceGenerator::new(spec::gcc(), 7).generate(2_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(spec::gcc(), 7).generate(2_000);
        let b = TraceGenerator::new(spec::gcc(), 8).generate(2_000);
        assert_ne!(a, b);
    }

    #[test]
    fn different_apps_differ() {
        let a = TraceGenerator::new(spec::gcc(), 7).generate(2_000);
        let b = TraceGenerator::new(spec::vpr(), 7).generate(2_000);
        assert_ne!(a.records(), b.records());
    }

    #[test]
    fn mem_fraction_tracks_mix() {
        for p in [spec::gcc(), spec::swim(), spec::m88ksim()] {
            let expected = p.mix.mem();
            let trace = TraceGenerator::new(p, 3).generate(50_000);
            let got = trace.stats().mem_fraction();
            // Branches take ~12-16% of slots, so the observed memory fraction
            // is slightly below the non-branch mix value.
            assert!(
                got > expected * 0.7 && got < expected * 1.05,
                "{}: mem fraction {got} vs mix {expected}",
                trace.name()
            );
        }
    }

    #[test]
    fn branch_fraction_is_reasonable() {
        let trace = TraceGenerator::new(spec::gcc(), 3).generate(50_000);
        let frac = trace.stats().branch_fraction();
        assert!((0.08..=0.25).contains(&frac), "branch fraction {frac}");
    }

    #[test]
    fn data_footprint_scales_with_working_set() {
        // Count only working-set blocks (below the streaming region) so the
        // comparison reflects the profiles' working-set sizes.
        let blocks = |name: &str| {
            let trace =
                TraceGenerator::new(spec::profile(name).unwrap(), 5).generate(100_000);
            let mut set = HashSet::new();
            for r in trace.iter() {
                if let Some(addr) = r.op().address() {
                    if addr < 0x7000_0000 {
                        set.insert(addr / 32);
                    }
                }
            }
            set.len()
        };
        let small = blocks("ammp");
        let large = blocks("swim");
        assert!(
            large > small * 4,
            "swim ({large} blocks) should touch far more data than ammp ({small})"
        );
    }

    #[test]
    fn instruction_footprint_scales_with_code_schedule() {
        let blocks = |name: &str| {
            let trace =
                TraceGenerator::new(spec::profile(name).unwrap(), 5).generate(100_000);
            let mut set = HashSet::new();
            for r in trace.iter() {
                set.insert(r.pc() / 32);
            }
            set.len()
        };
        let small = blocks("swim");
        let large = blocks("gcc");
        assert!(
            large > small * 4,
            "gcc ({large} i-blocks) should touch far more code than swim ({small})"
        );
    }
}
