//! The [`Trace`] container and summary statistics.

use std::ops::Range;
use std::sync::Arc;

use crate::format::TraceFormat;
use crate::record::{InstrRecord, Op};

/// A dynamic instruction trace for one application.
///
/// A trace is generated once per application (deterministically from a seed)
/// and then replayed under every cache configuration of an experiment, which
/// keeps the thousands of simulations behind the paper's figures tractable.
///
/// The record storage is an `Arc<[InstrRecord]>` window: cloning a trace, or
/// slicing it into warm-up and measured regions with [`Trace::slice`] /
/// [`Trace::split_at`], shares the underlying buffer instead of copying it.
/// A paper-length trace is ~2.6 million records (~80 MB across twelve
/// applications), and every experiment replays it under many cache
/// configurations — copy-free sharing is what makes a per-application trace
/// cache affordable.
#[derive(Debug, Clone)]
pub struct Trace {
    name: Arc<str>,
    records: Arc<[InstrRecord]>,
    /// Window into `records` occupied by this trace view.
    start: usize,
    len: usize,
    format: TraceFormat,
}

impl Trace {
    /// Creates a trace from a name and a record vector, in the default
    /// (current) [`TraceFormat`]; use [`Trace::with_format`] for records
    /// generated or decoded under another version.
    pub fn new(name: impl Into<String>, records: Vec<InstrRecord>) -> Self {
        Self::with_format(name, records, TraceFormat::default())
    }

    /// Creates a trace carrying an explicit [`TraceFormat`] version.
    pub fn with_format(
        name: impl Into<String>,
        records: Vec<InstrRecord>,
        format: TraceFormat,
    ) -> Self {
        let len = records.len();
        Self {
            name: name.into().into(),
            records: records.into(),
            start: 0,
            len,
            format,
        }
    }

    /// The application name this trace was generated from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The [`TraceFormat`] version these records were generated under. The
    /// codec persists it (as the file magic), so a round-trip through disk
    /// preserves it; views made by [`Trace::slice`] / [`Trace::split_at`]
    /// inherit it.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// The trace records, in dynamic program order.
    pub fn records(&self) -> &[InstrRecord] {
        &self.records[self.start..self.start + self.len]
    }

    /// Number of dynamic instructions in the trace.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the trace contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a copy-free sub-trace covering `range` of this trace's
    /// records. The returned trace shares the underlying record buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Trace {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds for a trace of {} records",
            self.len
        );
        Self {
            name: Arc::clone(&self.name),
            records: Arc::clone(&self.records),
            start: self.start + range.start,
            len: range.end - range.start,
            format: self.format,
        }
    }

    /// Splits the trace into copy-free `[..mid]` and `[mid..]` sub-traces
    /// (e.g. a warm-up region and a measured region).
    ///
    /// # Panics
    ///
    /// Panics if `mid` exceeds the trace length.
    pub fn split_at(&self, mid: usize) -> (Trace, Trace) {
        (self.slice(0..mid), self.slice(mid..self.len))
    }

    /// Iterates over the records in dynamic program order.
    pub fn iter(&self) -> std::slice::Iter<'_, InstrRecord> {
        self.records().iter()
    }

    /// Returns a [`crate::TraceCursor`] over (a copy-free clone of) this
    /// trace window — the materialized implementation of
    /// [`crate::TraceSource`].
    pub fn cursor(&self) -> crate::TraceCursor {
        crate::TraceCursor::new(self.clone())
    }

    /// Computes summary statistics over the whole trace.
    pub fn stats(&self) -> TraceStats {
        let mut stats = TraceStats::default();
        for r in self.records() {
            stats.instructions += 1;
            match r.op() {
                Op::Int => stats.int_ops += 1,
                Op::Fp => stats.fp_ops += 1,
                Op::Load(_) => stats.loads += 1,
                Op::Store(_) => stats.stores += 1,
                Op::Branch { taken } => {
                    stats.branches += 1;
                    if taken {
                        stats.taken_branches += 1;
                    }
                }
            }
        }
        stats
    }
}

impl PartialEq for Trace {
    /// Traces compare by name, format and visible records, so a copy-free
    /// view is equal to an owned trace with the same contents — but a v1
    /// trace never equals a v2 trace, even with coincidentally equal
    /// records.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.format == other.format && self.records() == other.records()
    }
}

impl Eq for Trace {}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a InstrRecord;
    type IntoIter = std::slice::Iter<'a, InstrRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records().iter()
    }
}

/// Aggregate counts over a [`Trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Integer ALU operations.
    pub int_ops: u64,
    /// Floating-point operations.
    pub fp_ops: u64,
    /// Load instructions.
    pub loads: u64,
    /// Store instructions.
    pub stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Taken conditional branches.
    pub taken_branches: u64,
}

impl TraceStats {
    /// Fraction of instructions that access memory.
    pub fn mem_fraction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (self.loads + self.stores) as f64 / self.instructions as f64
    }

    /// Fraction of instructions that are conditional branches.
    pub fn branch_fraction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.branches as f64 / self.instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            "t",
            vec![
                InstrRecord::new(0, Op::Int),
                InstrRecord::new(4, Op::Load(64)),
                InstrRecord::new(8, Op::Store(128)),
                InstrRecord::new(12, Op::Branch { taken: true }),
                InstrRecord::new(0, Op::Branch { taken: false }),
                InstrRecord::new(4, Op::Fp),
            ],
        )
    }

    #[test]
    fn stats_counts() {
        let s = sample().stats();
        assert_eq!(s.instructions, 6);
        assert_eq!(s.int_ops, 1);
        assert_eq!(s.fp_ops, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 2);
        assert_eq!(s.taken_branches, 1);
    }

    #[test]
    fn fractions() {
        let s = sample().stats();
        assert!((s.mem_fraction() - 2.0 / 6.0).abs() < 1e-12);
        assert!((s.branch_fraction() - 2.0 / 6.0).abs() < 1e-12);
        let empty = TraceStats::default();
        assert_eq!(empty.mem_fraction(), 0.0);
        assert_eq!(empty.branch_fraction(), 0.0);
    }

    #[test]
    fn slicing_is_copy_free_and_consistent() {
        let t = sample();
        let (warm, measure) = t.split_at(2);
        assert_eq!(warm.len(), 2);
        assert_eq!(measure.len(), 4);
        assert_eq!(warm.records(), &t.records()[..2]);
        assert_eq!(measure.records(), &t.records()[2..]);
        assert_eq!(warm.name(), t.name());
        // Nested slicing stays anchored to the right window.
        let inner = measure.slice(1..3);
        assert_eq!(inner.records(), &t.records()[3..5]);
        // A view equals an owned trace with the same contents.
        assert_eq!(inner, Trace::new("t", t.records()[3..5].to_vec()));
    }

    #[test]
    fn format_is_carried_and_distinguishes_traces() {
        let records = sample().records().to_vec();
        let v2 = Trace::new("t", records.clone());
        assert_eq!(v2.format(), TraceFormat::default());
        let v1 = Trace::with_format("t", records, TraceFormat::V1);
        assert_eq!(v1.format(), TraceFormat::V1);
        // Same name and records, different format: not equal.
        assert_ne!(v1, v2);
        // Views inherit the format.
        let (warm, measure) = v1.split_at(2);
        assert_eq!(warm.format(), TraceFormat::V1);
        assert_eq!(measure.slice(0..1).format(), TraceFormat::V1);
        assert_eq!(crate::TraceSource::format(&v1.cursor()), TraceFormat::V1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        sample().slice(3..99);
    }

    #[test]
    fn trace_accessors() {
        let t = sample();
        assert_eq!(t.name(), "t");
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 6);
        assert_eq!((&t).into_iter().count(), 6);
        assert!(Trace::new("e", vec![]).is_empty());
    }
}
