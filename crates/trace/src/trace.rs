//! The [`Trace`] container and summary statistics.

use crate::record::{InstrRecord, Op};

/// A dynamic instruction trace for one application.
///
/// A trace is generated once per application (deterministically from a seed)
/// and then replayed under every cache configuration of an experiment, which
/// keeps the thousands of simulations behind the paper's figures tractable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    records: Vec<InstrRecord>,
}

impl Trace {
    /// Creates a trace from a name and a record vector.
    pub fn new(name: impl Into<String>, records: Vec<InstrRecord>) -> Self {
        Self {
            name: name.into(),
            records,
        }
    }

    /// The application name this trace was generated from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace records, in dynamic program order.
    pub fn records(&self) -> &[InstrRecord] {
        &self.records
    }

    /// Number of dynamic instructions in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records in dynamic program order.
    pub fn iter(&self) -> std::slice::Iter<'_, InstrRecord> {
        self.records.iter()
    }

    /// Computes summary statistics over the whole trace.
    pub fn stats(&self) -> TraceStats {
        let mut stats = TraceStats::default();
        for r in &self.records {
            stats.instructions += 1;
            match r.op {
                Op::Int => stats.int_ops += 1,
                Op::Fp => stats.fp_ops += 1,
                Op::Load(_) => stats.loads += 1,
                Op::Store(_) => stats.stores += 1,
                Op::Branch { taken } => {
                    stats.branches += 1;
                    if taken {
                        stats.taken_branches += 1;
                    }
                }
            }
        }
        stats
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a InstrRecord;
    type IntoIter = std::slice::Iter<'a, InstrRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Aggregate counts over a [`Trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Integer ALU operations.
    pub int_ops: u64,
    /// Floating-point operations.
    pub fp_ops: u64,
    /// Load instructions.
    pub loads: u64,
    /// Store instructions.
    pub stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Taken conditional branches.
    pub taken_branches: u64,
}

impl TraceStats {
    /// Fraction of instructions that access memory.
    pub fn mem_fraction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (self.loads + self.stores) as f64 / self.instructions as f64
    }

    /// Fraction of instructions that are conditional branches.
    pub fn branch_fraction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.branches as f64 / self.instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            "t",
            vec![
                InstrRecord::new(0, Op::Int),
                InstrRecord::new(4, Op::Load(64)),
                InstrRecord::new(8, Op::Store(128)),
                InstrRecord::new(12, Op::Branch { taken: true }),
                InstrRecord::new(0, Op::Branch { taken: false }),
                InstrRecord::new(4, Op::Fp),
            ],
        )
    }

    #[test]
    fn stats_counts() {
        let s = sample().stats();
        assert_eq!(s.instructions, 6);
        assert_eq!(s.int_ops, 1);
        assert_eq!(s.fp_ops, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 2);
        assert_eq!(s.taken_branches, 1);
    }

    #[test]
    fn fractions() {
        let s = sample().stats();
        assert!((s.mem_fraction() - 2.0 / 6.0).abs() < 1e-12);
        assert!((s.branch_fraction() - 2.0 / 6.0).abs() < 1e-12);
        let empty = TraceStats::default();
        assert_eq!(empty.mem_fraction(), 0.0);
        assert_eq!(empty.branch_fraction(), 0.0);
    }

    #[test]
    fn trace_accessors() {
        let t = sample();
        assert_eq!(t.name(), "t");
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 6);
        assert_eq!((&t).into_iter().count(), 6);
        assert!(Trace::new("e", vec![]).is_empty());
    }
}
