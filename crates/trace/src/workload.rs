//! The declarative workload registry: named, reusable scenario definitions.
//!
//! The twelve [`crate::spec`] profiles stand in for the paper's SPEC
//! evaluation; the registry complements them with *scenario* workloads —
//! stress patterns (pointer chasing, streaming scans, MSHR-saturating burst
//! traffic, phase-alternating working sets, …) that probe one mechanism of
//! the simulated machine each. Examples, benches and sweeps enumerate
//! [`WorkloadRegistry::builtin`] instead of hand-rolling ad-hoc
//! [`AppProfile`]s, so a new scenario added here is picked up by every
//! harness at once.

use crate::address::AccessMix;
use crate::branch::BranchBehavior;
use crate::code::CodeShape;
use crate::ilp::IlpBehavior;
use crate::mix::InstructionMix;
use crate::phase::{Phase, PhaseSchedule};
use crate::profile::{AppProfile, CodeBehavior, DataBehavior};
use crate::working_set::WorkingSetSpec;

/// Base address used for instruction footprints (disjoint from data; matches
/// [`crate::spec`]).
const CODE_BASE: u64 = 0x0040_0000;

const KIB: u64 = 1024;

/// One named workload scenario: a human intent plus the profile that
/// realizes it.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Registry name (also the [`AppProfile::name`] of the built profile).
    pub name: &'static str,
    /// One-line description of what the scenario stresses.
    pub intent: &'static str,
    build: fn() -> AppProfile,
}

impl WorkloadSpec {
    /// Builds the application profile realizing this scenario.
    pub fn profile(&self) -> AppProfile {
        let profile = (self.build)();
        debug_assert_eq!(profile.name, self.name, "workload profile name mismatch");
        profile
    }
}

/// The registry of named workload scenarios.
///
/// # Examples
///
/// ```
/// use rescache_trace::WorkloadRegistry;
///
/// let registry = WorkloadRegistry::builtin();
/// assert!(registry.len() >= 8);
/// let nominal = registry.get("nominal").expect("nominal is registered");
/// assert_eq!(nominal.profile().name, "nominal");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WorkloadRegistry {
    specs: &'static [WorkloadSpec],
}

impl WorkloadRegistry {
    /// The built-in scenario registry.
    pub fn builtin() -> Self {
        Self { specs: BUILTIN }
    }

    /// All registered workload specs, in registry order.
    pub fn specs(&self) -> &[WorkloadSpec] {
        self.specs
    }

    /// Looks a workload up by name.
    pub fn get(&self, name: &str) -> Option<&WorkloadSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// The registered workload names, in registry order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.specs.iter().map(|s| s.name)
    }

    /// Builds every registered profile, in registry order.
    pub fn profiles(&self) -> Vec<AppProfile> {
        self.specs.iter().map(|s| s.profile()).collect()
    }

    /// Number of registered workloads.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns `true` if the registry is empty (the built-in one never is).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// The built-in scenarios. Keep intents honest: each entry should name the
/// one mechanism it stresses.
static BUILTIN: &[WorkloadSpec] = &[
    WorkloadSpec {
        name: "nominal",
        intent: "balanced integer mix, L1-friendly working sets; the all-round baseline scenario",
        build: nominal,
    },
    WorkloadSpec {
        name: "tight_kernel",
        intent: "tiny loop and data footprint, everything L1-resident; the hit-path upper bound",
        build: tight_kernel,
    },
    WorkloadSpec {
        name: "pointer_chase",
        intent: "serial dependent loads over a 64 KiB set; exposes full miss latency, defeats MLP",
        build: pointer_chase,
    },
    WorkloadSpec {
        name: "stream_scan",
        intent:
            "streaming array sweeps with no reuse; compulsory misses, prefetch-friendly strides",
        build: stream_scan,
    },
    WorkloadSpec {
        name: "phase_flip",
        intent:
            "working set alternating 4 KiB / 28 KiB each phase; the dynamic-resizing target case",
        build: phase_flip,
    },
    WorkloadSpec {
        name: "branch_hostile",
        intent: "short blocks, half the conditionals data-dependent; mispredict-bound execution",
        build: branch_hostile,
    },
    WorkloadSpec {
        name: "mshr_burst",
        intent: "independent load bursts over 256 KiB; saturates the 8 MSHRs, delayed-hits traffic",
        build: mshr_burst,
    },
    WorkloadSpec {
        name: "conflict_storm",
        intent: "8 mutually aliasing hot segments; conflict misses punish low associativity",
        build: conflict_storm,
    },
    WorkloadSpec {
        name: "icache_walker",
        intent: "call-heavy 56 KiB instruction footprint; i-cache misses dominate, d-side idle",
        build: icache_walker,
    },
];

fn data_ws(bytes_kib: u64) -> WorkingSetSpec {
    WorkingSetSpec::uniform(bytes_kib * KIB)
}

fn code_ws(bytes_kib: u64) -> WorkingSetSpec {
    WorkingSetSpec::uniform(bytes_kib * KIB).at_base(CODE_BASE)
}

/// Balanced integer workload with comfortable L1 fit — the scenario the
/// throughput benches treat as "typical".
fn nominal() -> AppProfile {
    AppProfile::new(
        "nominal",
        DataBehavior::new(PhaseSchedule::constant(data_ws(8)))
            .with_access_mix(AccessMix::new(0.5, 0.45, 0.05)),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(4))),
    )
    .with_mix(InstructionMix::integer())
    .with_branch(BranchBehavior::default())
    .with_ilp(IlpBehavior::moderate())
}

/// Everything hot: 2 KiB data in a 512-byte loop; measures the simulator's
/// (and the machine's) hit path with essentially no misses.
fn tight_kernel() -> AppProfile {
    AppProfile::new(
        "tight_kernel",
        DataBehavior::new(PhaseSchedule::constant(data_ws(2)))
            .with_access_mix(AccessMix::new(0.7, 0.28, 0.02)),
        CodeBehavior::new(PhaseSchedule::constant(
            WorkingSetSpec::uniform(512).at_base(CODE_BASE),
        ))
        .with_shape(CodeShape::tight_loops()),
    )
    .with_mix(InstructionMix::new(0.30, 0.10, 0.05))
    .with_branch(BranchBehavior::predictable())
    .with_ilp(IlpBehavior::parallel())
}

/// Linked-structure traversal: almost every load depends on the previous
/// one, over a working set twice the L1 — misses serialize end to end.
fn pointer_chase() -> AppProfile {
    AppProfile::new(
        "pointer_chase",
        DataBehavior::new(PhaseSchedule::constant(data_ws(64)))
            .with_access_mix(AccessMix::new(0.02, 0.95, 0.03)),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(1))).with_shape(CodeShape::tight_loops()),
    )
    .with_mix(InstructionMix::new(0.45, 0.05, 0.02))
    .with_branch(BranchBehavior::predictable())
    .with_ilp(IlpBehavior::new(1.5, 0.30, 0.02))
}

/// Pure array sweeps: most references stream through never-reused memory, so
/// every capacity point sees the same (compulsory) miss traffic.
fn stream_scan() -> AppProfile {
    AppProfile::new(
        "stream_scan",
        DataBehavior::new(PhaseSchedule::constant(data_ws(4)))
            .with_access_mix(AccessMix::new(0.35, 0.05, 0.60))
            .with_stride(8),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(1))).with_shape(CodeShape::tight_loops()),
    )
    .with_mix(InstructionMix::floating_point())
    .with_branch(BranchBehavior::predictable())
    .with_ilp(IlpBehavior::parallel())
}

/// Working set flipping between far-apart sizes each phase: the scenario
/// where a dynamic controller should beat any single static point.
fn phase_flip() -> AppProfile {
    AppProfile::new(
        "phase_flip",
        DataBehavior::new(PhaseSchedule::periodic(
            400_000,
            vec![Phase::new(0.5, data_ws(4)), Phase::new(0.5, data_ws(28))],
        ))
        .with_access_mix(AccessMix::new(0.45, 0.5, 0.05)),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(4))),
    )
    .with_mix(InstructionMix::integer())
    .with_branch(BranchBehavior::default())
    .with_ilp(IlpBehavior::moderate())
}

/// Short basic blocks and a coin-flip outcome on half of them: execution
/// time is set by the mispredict penalty, not the caches.
fn branch_hostile() -> AppProfile {
    AppProfile::new(
        "branch_hostile",
        DataBehavior::new(PhaseSchedule::constant(data_ws(8)))
            .with_access_mix(AccessMix::new(0.4, 0.55, 0.05)),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(16))).with_shape(CodeShape {
            region_bytes: 512,
            inner_iters: 4,
            block_len: 4,
            call_jump_prob: 0.20,
            data_dep_branch_prob: 0.50, // overwritten from the branch behaviour
        }),
    )
    .with_mix(InstructionMix::new(0.22, 0.10, 0.02))
    .with_branch(BranchBehavior::new(0.50, 0.75))
    .with_ilp(IlpBehavior::moderate())
}

/// Bursts of independent loads over a footprint far beyond the L1: the
/// out-of-order window issues misses faster than fills return, so the MSHR
/// file (8 entries) becomes the throughput limiter — the delayed-hits regime.
fn mshr_burst() -> AppProfile {
    AppProfile::new(
        "mshr_burst",
        DataBehavior::new(PhaseSchedule::constant(data_ws(256)))
            .with_access_mix(AccessMix::new(0.15, 0.80, 0.05))
            .with_stride(64),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(2))).with_shape(CodeShape::tight_loops()),
    )
    .with_mix(InstructionMix::new(0.50, 0.05, 0.05))
    .with_branch(BranchBehavior::predictable())
    .with_ilp(IlpBehavior::new(16.0, 0.30, 0.50))
}

/// Eight mutually aliasing hot segments over a modest total footprint:
/// misses are conflict, not capacity, so associativity (selective-ways'
/// casualty) is what matters.
fn conflict_storm() -> AppProfile {
    AppProfile::new(
        "conflict_storm",
        DataBehavior::new(PhaseSchedule::constant(WorkingSetSpec::conflicting(
            24 * KIB,
            8,
        )))
        .with_access_mix(AccessMix::new(0.30, 0.68, 0.02)),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(4))),
    )
    .with_mix(InstructionMix::integer())
    .with_branch(BranchBehavior::default())
    .with_ilp(IlpBehavior::moderate())
}

/// A call-heavy instruction footprint well past the 32 KiB L1I with a tiny
/// data side: isolates the i-cache resizing trade-off.
fn icache_walker() -> AppProfile {
    AppProfile::new(
        "icache_walker",
        DataBehavior::new(PhaseSchedule::constant(data_ws(4)))
            .with_access_mix(AccessMix::new(0.5, 0.45, 0.05)),
        CodeBehavior::new(PhaseSchedule::constant(code_ws(56))).with_shape(CodeShape::call_heavy()),
    )
    .with_mix(InstructionMix::integer())
    .with_branch(BranchBehavior::new(0.25, 0.85))
    .with_ilp(IlpBehavior::moderate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use std::collections::HashSet;

    #[test]
    fn registry_has_at_least_eight_distinct_workloads() {
        let registry = WorkloadRegistry::builtin();
        assert!(registry.len() >= 8, "only {} workloads", registry.len());
        assert!(!registry.is_empty());
        let names: HashSet<_> = registry.names().collect();
        assert_eq!(names.len(), registry.len(), "duplicate workload names");
    }

    #[test]
    fn every_workload_builds_and_generates() {
        for spec in WorkloadRegistry::builtin().specs() {
            let profile = spec.profile();
            assert_eq!(profile.name, spec.name);
            assert!(!spec.intent.is_empty());
            let trace = TraceGenerator::new(profile, 1).generate(5_000);
            assert_eq!(trace.len(), 5_000, "{}", spec.name);
            let stats = trace.stats();
            assert!(stats.loads + stats.stores > 0, "{}", spec.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        let registry = WorkloadRegistry::builtin();
        assert!(registry.get("pointer_chase").is_some());
        assert!(registry.get("does-not-exist").is_none());
        assert_eq!(registry.profiles().len(), registry.len());
    }

    #[test]
    fn workload_fingerprints_are_distinct() {
        let profiles = WorkloadRegistry::builtin().profiles();
        let fingerprints: HashSet<_> = profiles.iter().map(|p| p.fingerprint()).collect();
        assert_eq!(fingerprints.len(), profiles.len());
    }

    #[test]
    fn scenarios_have_their_advertised_shape() {
        let registry = WorkloadRegistry::builtin();
        let ws = |name: &str| {
            registry
                .get(name)
                .unwrap()
                .profile()
                .mean_data_working_set()
        };
        // tight_kernel and stream_scan stay L1-resident; mshr_burst and
        // pointer_chase far exceed the 32 KiB L1.
        assert!(ws("tight_kernel") <= 4.0 * 1024.0);
        assert!(ws("stream_scan") <= 8.0 * 1024.0);
        assert!(ws("pointer_chase") >= 48.0 * 1024.0);
        assert!(ws("mshr_burst") >= 128.0 * 1024.0);
        // icache_walker's code footprint exceeds the L1I.
        let icache = registry.get("icache_walker").unwrap().profile();
        assert!(icache.mean_code_footprint() > 32.0 * 1024.0);
        // conflict_storm needs more ways than the base 2-way d-cache offers.
        let storm = registry.get("conflict_storm").unwrap().profile();
        assert!(storm.data.schedule.phases()[0].spec.conflict_ways >= 8);
        // phase_flip actually alternates.
        let flip = registry.get("phase_flip").unwrap().profile();
        assert!(flip.data.schedule.phases().len() >= 2);
    }
}
