//! Working-set specification shared by data and instruction streams.

/// Describes one working set (data) or footprint (code) that an application
/// touches during a phase of its execution.
///
/// The working set is modelled as `conflict_ways` equally sized *segments*.
/// Segment base addresses are spaced at a multiple of [`DEFAULT_ALIAS_SPACING`]
/// (the largest L1 capacity in the study), so the segments map onto the same
/// cache sets in every L1 configuration under test. This is how the generator
/// reproduces the conflict-miss behaviour the paper attributes to applications
/// such as `gcc`, `vortex` and `vpr`: their working sets need *associativity*
/// at least equal to the number of hot segments, so reducing associativity
/// (selective-ways) hurts them while reducing the number of sets
/// (selective-sets) does not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkingSetSpec {
    /// Total size in bytes of the working set / footprint.
    pub bytes: u64,
    /// Number of mutually aliasing segments the working set is split into.
    /// `1` means no deliberate conflict behaviour.
    pub conflict_ways: u32,
    /// Byte distance granule between segment bases. Segments alias in every
    /// cache whose capacity divides this spacing.
    pub alias_spacing: u64,
    /// Base byte address of the first segment.
    pub base: u64,
}

/// Default alias spacing: the largest L1 capacity in the paper's study
/// (32 KiB). Every L1 configuration under test has `sets × block size`
/// dividing 32 KiB, so segments spaced at 32 KiB multiples share index bits in
/// all of them, while remaining spread over distinct sets of the 512 KiB L2.
pub const DEFAULT_ALIAS_SPACING: u64 = 32 * 1024;

impl WorkingSetSpec {
    /// Creates a working set of `bytes` bytes with no conflict structure.
    pub fn uniform(bytes: u64) -> Self {
        Self {
            bytes,
            conflict_ways: 1,
            alias_spacing: DEFAULT_ALIAS_SPACING,
            base: 0x1000_0000,
        }
    }

    /// Creates a working set of `bytes` bytes split into `conflict_ways`
    /// mutually aliasing segments.
    pub fn conflicting(bytes: u64, conflict_ways: u32) -> Self {
        Self {
            bytes,
            conflict_ways: conflict_ways.max(1),
            alias_spacing: DEFAULT_ALIAS_SPACING,
            base: 0x1000_0000,
        }
    }

    /// Overrides the base address (useful to separate code from data regions).
    pub fn at_base(mut self, base: u64) -> Self {
        self.base = base;
        self
    }

    /// Overrides the alias spacing between segments.
    pub fn with_alias_spacing(mut self, spacing: u64) -> Self {
        self.alias_spacing = spacing.max(64);
        self
    }

    /// Size in bytes of each segment.
    pub fn segment_bytes(&self) -> u64 {
        (self.bytes / u64::from(self.conflict_ways.max(1))).max(64)
    }

    /// Byte stride between consecutive segment bases: the alias spacing,
    /// rounded up so that segments never overlap.
    pub fn segment_stride(&self) -> u64 {
        let spacing = self.alias_spacing.max(64);
        let seg = self.segment_bytes();
        seg.div_ceil(spacing) * spacing
    }

    /// Maps an abstract offset in `[0, bytes)` to a concrete byte address,
    /// laying consecutive offsets out within a segment (so sequential walks
    /// keep their spatial locality) and switching segment at segment-size
    /// boundaries.
    pub fn offset_to_address(&self, offset: u64) -> u64 {
        let seg_bytes = self.segment_bytes();
        let ways = u64::from(self.conflict_ways.max(1));
        let offset = if self.bytes == 0 {
            0
        } else {
            offset % self.bytes.max(1)
        };
        let seg = (offset / seg_bytes) % ways;
        let within = offset % seg_bytes;
        self.base + seg * self.segment_stride() + within
    }

    /// Precomputes the derived geometry (segment size, stride, way count)
    /// for repeated [`ResolvedWorkingSet::offset_to_address`] calls.
    ///
    /// Address mapping runs once or twice per generated record, and almost
    /// every mapping re-derives the same segment geometry: the generator's
    /// streams cache one resolution per phase instead of paying the
    /// division chain per record.
    pub fn resolve(&self) -> ResolvedWorkingSet {
        ResolvedWorkingSet {
            spec: *self,
            seg_bytes: self.segment_bytes(),
            stride: self.segment_stride(),
            ways: u64::from(self.conflict_ways.max(1)),
        }
    }
}

/// A [`WorkingSetSpec`] with its derived segment geometry precomputed (see
/// [`WorkingSetSpec::resolve`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedWorkingSet {
    /// The specification this resolution was derived from.
    pub spec: WorkingSetSpec,
    seg_bytes: u64,
    stride: u64,
    ways: u64,
}

impl ResolvedWorkingSet {
    /// Size in bytes of each segment (see [`WorkingSetSpec::segment_bytes`]).
    pub fn segment_bytes(&self) -> u64 {
        self.seg_bytes
    }

    /// See [`WorkingSetSpec::offset_to_address`]; produces identical
    /// addresses with the segment geometry amortized.
    #[inline]
    pub fn offset_to_address(&self, offset: u64) -> u64 {
        let offset = if self.spec.bytes == 0 {
            0
        } else {
            offset % self.spec.bytes.max(1)
        };
        let q = offset / self.seg_bytes;
        let seg = q % self.ways;
        let within = offset - q * self.seg_bytes;
        self.spec.base + seg * self.stride + within
    }
}

impl Default for WorkingSetSpec {
    fn default() -> Self {
        Self::uniform(8 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_single_segment() {
        let ws = WorkingSetSpec::uniform(4096);
        assert_eq!(ws.conflict_ways, 1);
        assert_eq!(ws.segment_bytes(), 4096);
    }

    #[test]
    fn conflicting_splits_segments() {
        let ws = WorkingSetSpec::conflicting(16 * 1024, 4);
        assert_eq!(ws.segment_bytes(), 4 * 1024);
        assert_eq!(ws.segment_stride(), DEFAULT_ALIAS_SPACING);
    }

    #[test]
    fn conflict_ways_minimum_one() {
        let ws = WorkingSetSpec::conflicting(4096, 0);
        assert_eq!(ws.conflict_ways, 1);
    }

    #[test]
    fn sequential_offsets_are_adjacent_within_segment() {
        let ws = WorkingSetSpec::conflicting(8 * 1024, 2);
        let a0 = ws.offset_to_address(0);
        let a1 = ws.offset_to_address(64);
        assert_eq!(a1 - a0, 64);
    }

    #[test]
    fn segments_alias_in_every_l1_size() {
        let ws = WorkingSetSpec::conflicting(16 * 1024, 4);
        let seg = ws.segment_bytes();
        let a_seg0 = ws.offset_to_address(0);
        let a_seg1 = ws.offset_to_address(seg);
        let a_seg2 = ws.offset_to_address(2 * seg);
        for l1_index_span in [1024u64, 2048, 4096, 8192, 16 * 1024, 32 * 1024] {
            assert_eq!(a_seg0 % l1_index_span, a_seg1 % l1_index_span);
            assert_eq!(a_seg0 % l1_index_span, a_seg2 % l1_index_span);
        }
    }

    #[test]
    fn segments_do_not_overlap_when_large() {
        let ws = WorkingSetSpec::conflicting(160 * 1024, 2);
        assert!(ws.segment_stride() >= ws.segment_bytes());
    }

    #[test]
    fn builder_methods() {
        let ws = WorkingSetSpec::uniform(1024)
            .at_base(0x5000_0000)
            .with_alias_spacing(4096);
        assert_eq!(ws.base, 0x5000_0000);
        assert_eq!(ws.alias_spacing, 4096);
        assert_eq!(
            WorkingSetSpec::uniform(1024)
                .with_alias_spacing(1)
                .alias_spacing,
            64
        );
    }

    #[test]
    fn wraps_offsets_beyond_size() {
        let ws = WorkingSetSpec::uniform(1024);
        assert_eq!(ws.offset_to_address(0), ws.offset_to_address(1024));
    }

    #[test]
    fn resolved_mapping_matches_spec_mapping() {
        let specs = [
            WorkingSetSpec::uniform(4096),
            WorkingSetSpec::conflicting(24 * 1024, 3),
            WorkingSetSpec::conflicting(160 * 1024, 8).at_base(0x40_0000),
            WorkingSetSpec::uniform(0),
        ];
        for spec in specs {
            let resolved = spec.resolve();
            assert_eq!(resolved.spec, spec);
            for offset in [0u64, 1, 63, 64, 4095, 4096, 30_000, 1 << 40] {
                assert_eq!(
                    resolved.offset_to_address(offset),
                    spec.offset_to_address(offset),
                    "{spec:?} at {offset}"
                );
            }
        }
    }
}
