//! Instruction-address (PC) stream generation.
//!
//! Code is modelled as a set of equally sized *regions* (loop bodies /
//! functions) covering the application's instruction footprint. Execution
//! walks a region sequentially, repeats it `inner_iters` times (a loop), then
//! moves to the next region — mostly round-robin, occasionally via a random
//! jump (a call). Cycling through all regions gives the instruction stream a
//! reuse distance equal to the footprint, which is what makes the i-cache
//! *size* matter; the number of repeats controls how hot each region is.

use crate::rng::Prng;
use crate::working_set::{ResolvedWorkingSet, WorkingSetSpec};

/// Size in bytes of one instruction.
pub const INSTR_BYTES: u64 = 4;

/// One step of the PC stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcStep {
    /// The program counter of this instruction.
    pub pc: u64,
    /// Whether this instruction slot is a control-flow instruction
    /// (loop back-edge, region-to-region transfer, or in-body conditional).
    pub is_branch: bool,
    /// If `is_branch`, whether the branch is taken.
    pub taken: bool,
    /// If `is_branch`, whether the outcome is data-dependent (hard to
    /// predict) rather than loop-structured (easy to predict).
    pub data_dependent: bool,
}

/// Configuration of the code-stream shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeShape {
    /// Bytes per region (loop body / function).
    pub region_bytes: u64,
    /// Number of times a region body is repeated before moving on.
    pub inner_iters: u64,
    /// Instructions per basic block (one conditional branch terminates each).
    pub block_len: u64,
    /// Probability that the next region is a random jump rather than the next
    /// region in round-robin order.
    pub call_jump_prob: f64,
    /// Probability that an in-body conditional branch outcome is
    /// data-dependent (essentially unpredictable) rather than loop-structured.
    pub data_dep_branch_prob: f64,
}

impl Default for CodeShape {
    fn default() -> Self {
        Self {
            region_bytes: 1024,
            inner_iters: 8,
            block_len: 8,
            call_jump_prob: 0.10,
            data_dep_branch_prob: 0.15,
        }
    }
}

impl CodeShape {
    /// A tight-loop shape: few large repeats of small regions (e.g. `swim`,
    /// `tomcatv` numeric kernels).
    pub fn tight_loops() -> Self {
        Self {
            region_bytes: 512,
            inner_iters: 64,
            block_len: 12,
            call_jump_prob: 0.02,
            data_dep_branch_prob: 0.05,
        }
    }

    /// A call-heavy shape: many regions visited with little repetition
    /// (e.g. `gcc`, `vortex`).
    pub fn call_heavy() -> Self {
        Self {
            region_bytes: 1024,
            inner_iters: 3,
            block_len: 6,
            call_jump_prob: 0.15,
            data_dep_branch_prob: 0.30,
        }
    }
}

/// Generates the PC stream for a (possibly phase-varying) instruction
/// footprint.
///
/// The stream caches the resolved geometry of the most recent footprint (one
/// `next_step` call runs per generated instruction, and the footprint only
/// changes at phase boundaries) and tracks the intra-block position
/// incrementally, keeping the per-step cost to a handful of adds.
#[derive(Debug, Clone)]
pub struct CodeStream {
    shape: CodeShape,
    region: u64,
    iter_in_region: u64,
    offset: u64,
    /// `offset / INSTR_BYTES` modulo `shape.block_len`, maintained
    /// incrementally.
    block_pos: u64,
    /// Resolution of the footprint the previous step used.
    resolved: ResolvedWorkingSet,
    /// Region count of the resolved footprint.
    regions: u64,
    /// PC of the most recent step, valid while `linear_left > 0`.
    linear_pc: u64,
    /// Steps whose PC is `linear_pc + INSTR_BYTES` each: the walk advances
    /// linearly until the mapped offset crosses a segment boundary, wraps
    /// the footprint, or the region ends — only then is the full address
    /// mapping recomputed.
    linear_left: u64,
    rng: Prng,
}

impl CodeStream {
    /// Creates a code stream with the given shape.
    pub fn new(shape: CodeShape, rng: Prng) -> Self {
        let resolved = WorkingSetSpec::default().resolve();
        let regions = Self::region_count(&shape, &resolved.spec);
        Self {
            shape,
            region: 0,
            iter_in_region: 0,
            offset: 0,
            block_pos: 0,
            resolved,
            regions,
            linear_pc: 0,
            linear_left: 0,
            rng,
        }
    }

    /// Number of regions covering footprint `ws`.
    fn region_count(shape: &CodeShape, ws: &WorkingSetSpec) -> u64 {
        (ws.bytes / shape.region_bytes).max(1)
    }

    /// Returns the next PC step for footprint `ws`.
    pub fn next_step(&mut self, ws: &WorkingSetSpec) -> PcStep {
        if *ws != self.resolved.spec {
            self.resolved = ws.resolve();
            self.regions = Self::region_count(&self.shape, ws);
            self.linear_left = 0;
        }
        let regions = self.regions;
        if self.region >= regions {
            self.region %= regions;
            self.linear_left = 0;
        }
        let pc = if self.linear_left > 0 {
            self.linear_left -= 1;
            self.linear_pc += INSTR_BYTES;
            self.linear_pc
        } else {
            let global = self.region * self.shape.region_bytes + self.offset;
            let pc = self.resolved.offset_to_address(global);
            // Steps after this one whose PC simply advances by one
            // instruction: until the mapped offset reaches the end of its
            // segment or the end of the footprint (region ends reset
            // `linear_left` below, so they need no accounting here).
            let bytes = self.resolved.spec.bytes;
            self.linear_left = if bytes > 0 {
                let m = global % bytes;
                let seg_bytes = self.resolved.segment_bytes();
                let run_end = ((m / seg_bytes + 1) * seg_bytes).min(bytes);
                (run_end - m - 1) / INSTR_BYTES
            } else {
                0
            };
            self.linear_pc = pc;
            pc
        };

        let at_region_end = self.offset + INSTR_BYTES >= self.shape.region_bytes;
        let at_block_end = self.block_pos + 1 == self.shape.block_len;
        self.block_pos = if at_block_end || at_region_end {
            0
        } else {
            self.block_pos + 1
        };

        if at_region_end {
            // Loop back-edge or transfer to the next region.
            let step = if self.iter_in_region + 1 < self.shape.inner_iters {
                self.iter_in_region += 1;
                PcStep {
                    pc,
                    is_branch: true,
                    taken: true,
                    data_dependent: false,
                }
            } else {
                self.iter_in_region = 0;
                self.region = if self.rng.chance(self.shape.call_jump_prob) {
                    self.rng.below(regions)
                } else {
                    (self.region + 1) % regions
                };
                PcStep {
                    pc,
                    is_branch: true,
                    taken: true,
                    data_dependent: false,
                }
            };
            self.offset = 0;
            self.linear_left = 0;
            step
        } else if at_block_end {
            let data_dependent = self.rng.chance(self.shape.data_dep_branch_prob);
            let taken = if data_dependent {
                self.rng.chance(0.5)
            } else {
                // Loop-structured conditionals are strongly biased.
                self.rng.chance(0.9)
            };
            self.offset += INSTR_BYTES;
            PcStep {
                pc,
                is_branch: true,
                taken,
                data_dependent,
            }
        } else {
            self.offset += INSTR_BYTES;
            PcStep {
                pc,
                is_branch: false,
                taken: false,
                data_dependent: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn footprint(bytes: u64) -> WorkingSetSpec {
        WorkingSetSpec::uniform(bytes).at_base(0x0040_0000)
    }

    #[test]
    fn pcs_stay_within_footprint_span() {
        let ws = footprint(4096);
        let mut cs = CodeStream::new(CodeShape::default(), Prng::new(3));
        for _ in 0..10_000 {
            let step = cs.next_step(&ws);
            assert!(step.pc >= ws.base);
            assert!(step.pc < ws.base + ws.bytes);
        }
    }

    #[test]
    fn footprint_bounds_unique_blocks() {
        let ws = footprint(2048);
        let mut cs = CodeStream::new(CodeShape::call_heavy(), Prng::new(3));
        let mut blocks = HashSet::new();
        for _ in 0..20_000 {
            blocks.insert(cs.next_step(&ws).pc / 32);
        }
        assert!(blocks.len() as u64 <= 2048 / 32);
        // And a call-heavy stream should actually cover most of it.
        assert!(blocks.len() as u64 >= 2048 / 32 / 2);
    }

    #[test]
    fn sequential_within_block() {
        let ws = footprint(4096);
        let mut cs = CodeStream::new(CodeShape::default(), Prng::new(3));
        let a = cs.next_step(&ws);
        let b = cs.next_step(&ws);
        assert_eq!(b.pc - a.pc, INSTR_BYTES);
    }

    #[test]
    fn branch_density_tracks_block_len() {
        let ws = footprint(8192);
        let shape = CodeShape {
            block_len: 8,
            ..CodeShape::default()
        };
        let mut cs = CodeStream::new(shape, Prng::new(7));
        let n = 40_000;
        let branches = (0..n).filter(|_| cs.next_step(&ws).is_branch).count();
        let frac = branches as f64 / n as f64;
        assert!(
            (0.10..=0.18).contains(&frac),
            "branch fraction {frac} outside expected band"
        );
    }

    /// The original, division-per-step stream the optimized walk must match
    /// step for step (including RNG consumption).
    #[derive(Debug, Clone)]
    struct ReferenceStream {
        shape: CodeShape,
        region: u64,
        iter_in_region: u64,
        offset: u64,
        rng: Prng,
    }

    impl ReferenceStream {
        fn next_step(&mut self, ws: &WorkingSetSpec) -> PcStep {
            let regions = (ws.bytes / self.shape.region_bytes).max(1);
            if self.region >= regions {
                self.region %= regions;
            }
            let pc = ws.offset_to_address(self.region * self.shape.region_bytes + self.offset);
            let at_region_end = self.offset + INSTR_BYTES >= self.shape.region_bytes;
            let instr_index = self.offset / INSTR_BYTES;
            let at_block_end = (instr_index + 1).is_multiple_of(self.shape.block_len);
            if at_region_end {
                let step = if self.iter_in_region + 1 < self.shape.inner_iters {
                    self.iter_in_region += 1;
                    PcStep {
                        pc,
                        is_branch: true,
                        taken: true,
                        data_dependent: false,
                    }
                } else {
                    self.iter_in_region = 0;
                    self.region = if self.rng.chance(self.shape.call_jump_prob) {
                        self.rng.below(regions)
                    } else {
                        (self.region + 1) % regions
                    };
                    PcStep {
                        pc,
                        is_branch: true,
                        taken: true,
                        data_dependent: false,
                    }
                };
                self.offset = 0;
                step
            } else if at_block_end {
                let data_dependent = self.rng.chance(self.shape.data_dep_branch_prob);
                let taken = if data_dependent {
                    self.rng.chance(0.5)
                } else {
                    self.rng.chance(0.9)
                };
                self.offset += INSTR_BYTES;
                PcStep {
                    pc,
                    is_branch: true,
                    taken,
                    data_dependent,
                }
            } else {
                self.offset += INSTR_BYTES;
                PcStep {
                    pc,
                    is_branch: false,
                    taken: false,
                    data_dependent: false,
                }
            }
        }
    }

    #[test]
    fn optimized_stream_matches_reference_step_for_step() {
        let footprints = [
            WorkingSetSpec::uniform(4096).at_base(0x40_0000),
            WorkingSetSpec::conflicting(24 * 1024, 3).at_base(0x40_0000),
            WorkingSetSpec::conflicting(2048, 8).at_base(0x40_0000),
            // Region size exceeding the footprint (single wrapped region).
            WorkingSetSpec::uniform(700).at_base(0x40_0000),
        ];
        for shape in [
            CodeShape::default(),
            CodeShape::tight_loops(),
            CodeShape::call_heavy(),
            CodeShape {
                block_len: 1,
                ..CodeShape::default()
            },
        ] {
            // Constant footprint.
            for ws in &footprints {
                let mut fast = CodeStream::new(shape, Prng::new(5));
                let mut reference = ReferenceStream {
                    shape,
                    region: 0,
                    iter_in_region: 0,
                    offset: 0,
                    rng: Prng::new(5),
                };
                for i in 0..30_000 {
                    assert_eq!(
                        fast.next_step(ws),
                        reference.next_step(ws),
                        "step {i} of {shape:?} over {ws:?}"
                    );
                }
            }
            // Footprint flipping mid-stream (phase changes), including back
            // to a previously seen spec.
            let mut fast = CodeStream::new(shape, Prng::new(9));
            let mut reference = ReferenceStream {
                shape,
                region: 0,
                iter_in_region: 0,
                offset: 0,
                rng: Prng::new(9),
            };
            for i in 0..30_000 {
                let ws = &footprints[(i / 1000) % footprints.len()];
                assert_eq!(fast.next_step(ws), reference.next_step(ws), "flip step {i}");
            }
        }
    }

    #[test]
    fn tight_loops_have_fewer_unique_blocks_than_call_heavy() {
        let ws = footprint(16 * 1024);
        let count_unique = |shape: CodeShape| {
            let mut cs = CodeStream::new(shape, Prng::new(11));
            let mut blocks = HashSet::new();
            for _ in 0..10_000 {
                blocks.insert(cs.next_step(&ws).pc / 32);
            }
            blocks.len()
        };
        assert!(count_unique(CodeShape::tight_loops()) < count_unique(CodeShape::call_heavy()));
    }
}
