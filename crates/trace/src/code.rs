//! Instruction-address (PC) stream generation.
//!
//! Code is modelled as a set of equally sized *regions* (loop bodies /
//! functions) covering the application's instruction footprint. Execution
//! walks a region sequentially, repeats it `inner_iters` times (a loop), then
//! moves to the next region — mostly round-robin, occasionally via a random
//! jump (a call). Cycling through all regions gives the instruction stream a
//! reuse distance equal to the footprint, which is what makes the i-cache
//! *size* matter; the number of repeats controls how hot each region is.

use crate::rng::Prng;
use crate::working_set::WorkingSetSpec;

/// Size in bytes of one instruction.
pub const INSTR_BYTES: u64 = 4;

/// One step of the PC stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcStep {
    /// The program counter of this instruction.
    pub pc: u64,
    /// Whether this instruction slot is a control-flow instruction
    /// (loop back-edge, region-to-region transfer, or in-body conditional).
    pub is_branch: bool,
    /// If `is_branch`, whether the branch is taken.
    pub taken: bool,
    /// If `is_branch`, whether the outcome is data-dependent (hard to
    /// predict) rather than loop-structured (easy to predict).
    pub data_dependent: bool,
}

/// Configuration of the code-stream shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeShape {
    /// Bytes per region (loop body / function).
    pub region_bytes: u64,
    /// Number of times a region body is repeated before moving on.
    pub inner_iters: u64,
    /// Instructions per basic block (one conditional branch terminates each).
    pub block_len: u64,
    /// Probability that the next region is a random jump rather than the next
    /// region in round-robin order.
    pub call_jump_prob: f64,
    /// Probability that an in-body conditional branch outcome is
    /// data-dependent (essentially unpredictable) rather than loop-structured.
    pub data_dep_branch_prob: f64,
}

impl Default for CodeShape {
    fn default() -> Self {
        Self {
            region_bytes: 1024,
            inner_iters: 8,
            block_len: 8,
            call_jump_prob: 0.10,
            data_dep_branch_prob: 0.15,
        }
    }
}

impl CodeShape {
    /// A tight-loop shape: few large repeats of small regions (e.g. `swim`,
    /// `tomcatv` numeric kernels).
    pub fn tight_loops() -> Self {
        Self {
            region_bytes: 512,
            inner_iters: 64,
            block_len: 12,
            call_jump_prob: 0.02,
            data_dep_branch_prob: 0.05,
        }
    }

    /// A call-heavy shape: many regions visited with little repetition
    /// (e.g. `gcc`, `vortex`).
    pub fn call_heavy() -> Self {
        Self {
            region_bytes: 1024,
            inner_iters: 3,
            block_len: 6,
            call_jump_prob: 0.15,
            data_dep_branch_prob: 0.30,
        }
    }
}

/// Generates the PC stream for a (possibly phase-varying) instruction
/// footprint.
#[derive(Debug, Clone)]
pub struct CodeStream {
    shape: CodeShape,
    region: u64,
    iter_in_region: u64,
    offset: u64,
    rng: Prng,
}

impl CodeStream {
    /// Creates a code stream with the given shape.
    pub fn new(shape: CodeShape, rng: Prng) -> Self {
        Self {
            shape,
            region: 0,
            iter_in_region: 0,
            offset: 0,
            rng,
        }
    }

    /// Number of regions covering footprint `ws`.
    fn region_count(&self, ws: &WorkingSetSpec) -> u64 {
        (ws.bytes / self.shape.region_bytes).max(1)
    }

    /// Returns the next PC step for footprint `ws`.
    pub fn next_step(&mut self, ws: &WorkingSetSpec) -> PcStep {
        let regions = self.region_count(ws);
        if self.region >= regions {
            self.region %= regions;
        }
        let pc = ws.offset_to_address(self.region * self.shape.region_bytes + self.offset);

        let at_region_end = self.offset + INSTR_BYTES >= self.shape.region_bytes;
        let instr_index = self.offset / INSTR_BYTES;
        let at_block_end = (instr_index + 1).is_multiple_of(self.shape.block_len);

        if at_region_end {
            // Loop back-edge or transfer to the next region.
            let step = if self.iter_in_region + 1 < self.shape.inner_iters {
                self.iter_in_region += 1;
                PcStep {
                    pc,
                    is_branch: true,
                    taken: true,
                    data_dependent: false,
                }
            } else {
                self.iter_in_region = 0;
                self.region = if self.rng.chance(self.shape.call_jump_prob) {
                    self.rng.below(regions)
                } else {
                    (self.region + 1) % regions
                };
                PcStep {
                    pc,
                    is_branch: true,
                    taken: true,
                    data_dependent: false,
                }
            };
            self.offset = 0;
            step
        } else if at_block_end {
            let data_dependent = self.rng.chance(self.shape.data_dep_branch_prob);
            let taken = if data_dependent {
                self.rng.chance(0.5)
            } else {
                // Loop-structured conditionals are strongly biased.
                self.rng.chance(0.9)
            };
            self.offset += INSTR_BYTES;
            PcStep {
                pc,
                is_branch: true,
                taken,
                data_dependent,
            }
        } else {
            self.offset += INSTR_BYTES;
            PcStep {
                pc,
                is_branch: false,
                taken: false,
                data_dependent: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn footprint(bytes: u64) -> WorkingSetSpec {
        WorkingSetSpec::uniform(bytes).at_base(0x0040_0000)
    }

    #[test]
    fn pcs_stay_within_footprint_span() {
        let ws = footprint(4096);
        let mut cs = CodeStream::new(CodeShape::default(), Prng::new(3));
        for _ in 0..10_000 {
            let step = cs.next_step(&ws);
            assert!(step.pc >= ws.base);
            assert!(step.pc < ws.base + ws.bytes);
        }
    }

    #[test]
    fn footprint_bounds_unique_blocks() {
        let ws = footprint(2048);
        let mut cs = CodeStream::new(CodeShape::call_heavy(), Prng::new(3));
        let mut blocks = HashSet::new();
        for _ in 0..20_000 {
            blocks.insert(cs.next_step(&ws).pc / 32);
        }
        assert!(blocks.len() as u64 <= 2048 / 32);
        // And a call-heavy stream should actually cover most of it.
        assert!(blocks.len() as u64 >= 2048 / 32 / 2);
    }

    #[test]
    fn sequential_within_block() {
        let ws = footprint(4096);
        let mut cs = CodeStream::new(CodeShape::default(), Prng::new(3));
        let a = cs.next_step(&ws);
        let b = cs.next_step(&ws);
        assert_eq!(b.pc - a.pc, INSTR_BYTES);
    }

    #[test]
    fn branch_density_tracks_block_len() {
        let ws = footprint(8192);
        let shape = CodeShape {
            block_len: 8,
            ..CodeShape::default()
        };
        let mut cs = CodeStream::new(shape, Prng::new(7));
        let n = 40_000;
        let branches = (0..n).filter(|_| cs.next_step(&ws).is_branch).count();
        let frac = branches as f64 / n as f64;
        assert!(
            (0.10..=0.18).contains(&frac),
            "branch fraction {frac} outside expected band"
        );
    }

    #[test]
    fn tight_loops_have_fewer_unique_blocks_than_call_heavy() {
        let ws = footprint(16 * 1024);
        let count_unique = |shape: CodeShape| {
            let mut cs = CodeStream::new(shape, Prng::new(11));
            let mut blocks = HashSet::new();
            for _ in 0..10_000 {
                blocks.insert(cs.next_step(&ws).pc / 32);
            }
            blocks.len()
        };
        assert!(count_unique(CodeShape::tight_loops()) < count_unique(CodeShape::call_heavy()));
    }
}
