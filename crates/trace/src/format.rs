//! The [`TraceFormat`] version: which record-generation algorithm a trace's
//! bits came from.
//!
//! Trace bytes are pinned artifacts: golden fixtures, on-disk store entries
//! and cross-process sweeps all assume that the same `(profile, seed,
//! length)` key always expands to the same records. Any change to the
//! sampled bits therefore has to be a deliberate *format version bump*, not
//! a silent behavioural drift. The version is carried end to end:
//!
//! * [`TraceGenerator`](crate::TraceGenerator) and
//!   [`TraceStream`](crate::TraceStream) select the dependency-distance
//!   sampler by format (v1: `ln`-based inverse transform; v2/v3:
//!   table-driven inverse CDF — see [`crate::ilp::DistanceSampler`]) and the
//!   instruction-mix draw (v1/v2: `f64` comparison; v3: fixed-point integer
//!   thresholds — see [`crate::InstructionMix::thresholds`]);
//! * the persisted codec writes a per-version magic
//!   ([`TraceFormat::magic`]) and readers reject a version mismatch with a
//!   typed error instead of silently mixing bit streams; the v3 container
//!   additionally carries a flags byte and per-chunk byte-length directory
//!   entries for the delta-compressed payload (see [`crate::codec`]);
//! * the experiment trace store keys entries (and file names) by format, so
//!   a v1 entry can never serve a v2 or v3 request.
//!
//! Only the dependency-distance bits differ between v1 and v2; v3 moves the
//! mix draw from a 53-bit `f64` comparison to the full 64-bit fixed-point
//! threshold (a finer quantization — the reason it is a version, not an
//! optimization). The PC walk, address walk and branch outcomes are drawn
//! from separate RNG sub-streams and are identical across all formats.

use std::fmt;

/// A trace-format version (see the module documentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum TraceFormat {
    /// The original format: dependency distances drawn by the `ln`-based
    /// inverse transform (`Prng::geometric_with_ln`), probabilities by `f64`
    /// comparison. Kept selectable so pinned v1 artifacts stay reproducible.
    V1,
    /// Dependency distances drawn from a precomputed fixed-point inverse-CDF
    /// table (no transcendental math per record), dependency probabilities
    /// by integer threshold comparison; the instruction-mix draw still
    /// compares `f64`s.
    V2,
    /// The current format: v2's table sampler plus an integer-threshold
    /// instruction-mix draw — generation performs zero `f64` operations per
    /// record. On disk, v3 entries use the compressed chunk container
    /// (length-prefixed delta PCs and addresses; see [`crate::codec`]).
    #[default]
    V3,
}

impl TraceFormat {
    /// Every known format, oldest first.
    pub const ALL: [TraceFormat; 3] = [TraceFormat::V1, TraceFormat::V2, TraceFormat::V3];

    /// The 8-byte file magic identifying this format on disk.
    pub fn magic(self) -> [u8; 8] {
        match self {
            TraceFormat::V1 => *b"RCTRACE1",
            TraceFormat::V2 => *b"RCTRACE2",
            TraceFormat::V3 => *b"RCTRACE3",
        }
    }

    /// The numeric version (1-based).
    pub fn version(self) -> u32 {
        match self {
            TraceFormat::V1 => 1,
            TraceFormat::V2 => 2,
            TraceFormat::V3 => 3,
        }
    }

    /// Short tag used in file names, env overrides and JSON records.
    pub fn tag(self) -> &'static str {
        match self {
            TraceFormat::V1 => "v1",
            TraceFormat::V2 => "v2",
            TraceFormat::V3 => "v3",
        }
    }

    /// Parses a [`TraceFormat::tag`]-style name (`"v1"`/`"1"`, `"v2"`/`"2"`,
    /// `"v3"`/`"3"`).
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag.trim() {
            "v1" | "1" => Some(TraceFormat::V1),
            "v2" | "2" => Some(TraceFormat::V2),
            "v3" | "3" => Some(TraceFormat::V3),
            _ => None,
        }
    }

    /// Maps a magic's trailing version byte to a format, if known.
    pub fn from_version_byte(byte: u8) -> Option<Self> {
        match byte {
            b'1' => Some(TraceFormat::V1),
            b'2' => Some(TraceFormat::V2),
            b'3' => Some(TraceFormat::V3),
            _ => None,
        }
    }
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_newest_format() {
        assert_eq!(TraceFormat::default(), TraceFormat::V3);
        assert_eq!(*TraceFormat::ALL.last().unwrap(), TraceFormat::default());
    }

    #[test]
    fn magics_are_distinct_and_share_the_prefix() {
        for format in TraceFormat::ALL {
            let magic = format.magic();
            assert_eq!(&magic[..7], b"RCTRACE");
            assert_eq!(TraceFormat::from_version_byte(magic[7]), Some(format));
        }
        assert_ne!(TraceFormat::V1.magic(), TraceFormat::V2.magic());
        assert_ne!(TraceFormat::V2.magic(), TraceFormat::V3.magic());
    }

    #[test]
    fn tags_round_trip() {
        for format in TraceFormat::ALL {
            assert_eq!(TraceFormat::from_tag(format.tag()), Some(format));
            assert_eq!(format.to_string(), format.tag());
        }
        assert_eq!(TraceFormat::from_tag(" v1 "), Some(TraceFormat::V1));
        assert_eq!(TraceFormat::from_tag("2"), Some(TraceFormat::V2));
        assert_eq!(TraceFormat::from_tag("v3"), Some(TraceFormat::V3));
        assert_eq!(TraceFormat::from_tag("v4"), None);
        assert_eq!(TraceFormat::from_version_byte(b'4'), None);
    }

    #[test]
    fn versions_are_ordered() {
        assert!(TraceFormat::V1 < TraceFormat::V2);
        assert!(TraceFormat::V2 < TraceFormat::V3);
        assert_eq!(TraceFormat::V1.version(), 1);
        assert_eq!(TraceFormat::V2.version(), 2);
        assert_eq!(TraceFormat::V3.version(), 3);
    }
}
