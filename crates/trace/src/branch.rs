//! Branch-behaviour parameters.
//!
//! The detailed *outcomes* of branches come from the code stream (loop
//! back-edges, region transfers, in-body conditionals); this type captures the
//! per-application knobs that shape them.

/// Branch behaviour of an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchBehavior {
    /// Probability that an in-body conditional branch is data-dependent
    /// (outcome close to random, so the predictor misses ~half of them).
    pub data_dependent_fraction: f64,
    /// Bias of loop-structured conditional branches (probability taken).
    pub structured_bias: f64,
}

impl BranchBehavior {
    /// Creates a behaviour description.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(data_dependent_fraction: f64, structured_bias: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&data_dependent_fraction),
            "data_dependent_fraction must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&structured_bias),
            "structured_bias must be a probability"
        );
        Self {
            data_dependent_fraction,
            structured_bias,
        }
    }

    /// Highly predictable branch behaviour (numeric loop codes).
    pub fn predictable() -> Self {
        Self::new(0.05, 0.95)
    }

    /// Control-heavy, harder-to-predict behaviour (`gcc`, `vpr`).
    pub fn irregular() -> Self {
        Self::new(0.35, 0.85)
    }
}

impl Default for BranchBehavior {
    fn default() -> Self {
        Self::new(0.15, 0.90)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_probabilities() {
        for b in [
            BranchBehavior::predictable(),
            BranchBehavior::irregular(),
            BranchBehavior::default(),
        ] {
            assert!((0.0..=1.0).contains(&b.data_dependent_fraction));
            assert!((0.0..=1.0).contains(&b.structured_bias));
        }
    }

    #[test]
    fn irregular_is_harder_than_predictable() {
        assert!(
            BranchBehavior::irregular().data_dependent_fraction
                > BranchBehavior::predictable().data_dependent_fraction
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_panics() {
        let _ = BranchBehavior::new(1.5, 0.5);
    }
}
