//! Instruction-mix parameters (what fraction of non-branch instructions are
//! loads, stores and floating-point operations).

/// Instruction mix of an application.
///
/// Branch density is controlled by the code stream shape (one conditional per
/// basic block); this mix distributes the remaining instruction slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Fraction of non-branch instructions that are loads.
    pub load: f64,
    /// Fraction of non-branch instructions that are stores.
    pub store: f64,
    /// Fraction of non-branch instructions that are floating-point ops.
    pub fp: f64,
}

impl InstructionMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the fractions sum to more
    /// than 1.
    pub fn new(load: f64, store: f64, fp: f64) -> Self {
        assert!(
            load >= 0.0 && store >= 0.0 && fp >= 0.0,
            "mix fractions must be non-negative"
        );
        assert!(
            load + store + fp <= 1.0 + 1e-9,
            "mix fractions must sum to at most 1"
        );
        Self { load, store, fp }
    }

    /// A typical integer-code mix (e.g. `gcc`, `vortex`).
    pub fn integer() -> Self {
        Self::new(0.26, 0.12, 0.02)
    }

    /// A typical floating-point–code mix (e.g. `swim`, `tomcatv`).
    pub fn floating_point() -> Self {
        Self::new(0.28, 0.10, 0.30)
    }

    /// Fraction of non-branch instructions that access memory.
    pub fn mem(&self) -> f64 {
        self.load + self.store
    }

    /// Fraction of non-branch instructions that are plain integer ALU ops.
    pub fn int(&self) -> f64 {
        (1.0 - self.load - self.store - self.fp).max(0.0)
    }
}

impl Default for InstructionMix {
    fn default() -> Self {
        Self::integer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_partition_unity() {
        let m = InstructionMix::new(0.3, 0.1, 0.2);
        assert!((m.int() + m.mem() + m.fp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn presets_are_valid() {
        for m in [InstructionMix::integer(), InstructionMix::floating_point()] {
            assert!(m.mem() > 0.2 && m.mem() < 0.6);
            assert!(m.int() >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn oversubscribed_mix_panics() {
        let _ = InstructionMix::new(0.6, 0.3, 0.3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mix_panics() {
        let _ = InstructionMix::new(-0.1, 0.3, 0.3);
    }
}
