//! Instruction-mix parameters (what fraction of non-branch instructions are
//! loads, stores and floating-point operations).

use crate::ilp::probability_bits;

/// Instruction mix of an application.
///
/// Branch density is controlled by the code stream shape (one conditional per
/// basic block); this mix distributes the remaining instruction slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Fraction of non-branch instructions that are loads.
    pub load: f64,
    /// Fraction of non-branch instructions that are stores.
    pub store: f64,
    /// Fraction of non-branch instructions that are floating-point ops.
    pub fp: f64,
}

impl InstructionMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the fractions sum to more
    /// than 1.
    pub fn new(load: f64, store: f64, fp: f64) -> Self {
        assert!(
            load >= 0.0 && store >= 0.0 && fp >= 0.0,
            "mix fractions must be non-negative"
        );
        assert!(
            load + store + fp <= 1.0 + 1e-9,
            "mix fractions must sum to at most 1"
        );
        Self { load, store, fp }
    }

    /// A typical integer-code mix (e.g. `gcc`, `vortex`).
    pub fn integer() -> Self {
        Self::new(0.26, 0.12, 0.02)
    }

    /// A typical floating-point–code mix (e.g. `swim`, `tomcatv`).
    pub fn floating_point() -> Self {
        Self::new(0.28, 0.10, 0.30)
    }

    /// Fraction of non-branch instructions that access memory.
    pub fn mem(&self) -> f64 {
        self.load + self.store
    }

    /// Fraction of non-branch instructions that are plain integer ALU ops.
    pub fn int(&self) -> f64 {
        (1.0 - self.load - self.store - self.fp).max(0.0)
    }

    /// Precomputes the mix's cumulative fixed-point thresholds — the v3
    /// classification draw (see [`MixThresholds`]).
    pub fn thresholds(&self) -> MixThresholds {
        // Built from the same rounded f64 partial sums the v1/v2 chained
        // comparison uses, quantized at the full 64-bit draw resolution
        // (2^-64) rather than `next_f64`'s 2^-53 — the finer quantization is
        // what makes selecting this draw a trace-format bump.
        MixThresholds {
            load: probability_bits(self.load),
            store: probability_bits(self.load + self.store),
            fp: probability_bits(self.load + self.store + self.fp),
        }
    }
}

/// The operation class one mix draw selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixClass {
    /// A load from the data working set.
    Load,
    /// A store to the data working set.
    Store,
    /// A floating-point operation.
    Fp,
    /// A plain integer ALU operation.
    Int,
}

/// Cumulative fixed-point thresholds of an [`InstructionMix`]: the v3 trace
/// format classifies each non-branch slot by comparing one raw
/// [`Prng::next_u64`](crate::Prng::next_u64) draw against these, performing
/// zero `f64` operations per record (v1/v2 compare `next_f64()` against the
/// mix fractions — the same pattern-to-threshold move the v2
/// [`DistanceSampler`](crate::ilp::DistanceSampler) made for the dependency
/// bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixThresholds {
    /// `load * 2^64`.
    load: u64,
    /// `(load + store) * 2^64`.
    store: u64,
    /// `(load + store + fp) * 2^64`.
    fp: u64,
}

impl MixThresholds {
    /// Classifies one uniform 64-bit draw into an operation class.
    #[inline]
    pub fn classify(&self, draw: u64) -> MixClass {
        if draw < self.load {
            MixClass::Load
        } else if draw < self.store {
            MixClass::Store
        } else if draw < self.fp {
            MixClass::Fp
        } else {
            MixClass::Int
        }
    }
}

impl Default for InstructionMix {
    fn default() -> Self {
        Self::integer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_partition_unity() {
        let m = InstructionMix::new(0.3, 0.1, 0.2);
        assert!((m.int() + m.mem() + m.fp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn presets_are_valid() {
        for m in [InstructionMix::integer(), InstructionMix::floating_point()] {
            assert!(m.mem() > 0.2 && m.mem() < 0.6);
            assert!(m.int() >= 0.0);
        }
    }

    #[test]
    fn thresholds_classify_with_the_mix_frequencies() {
        use crate::rng::Prng;
        let mix = InstructionMix::new(0.26, 0.12, 0.02);
        let thresholds = mix.thresholds();
        let mut rng = Prng::new(13);
        let n = 200_000u64;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            let slot = match thresholds.classify(rng.next_u64()) {
                MixClass::Load => 0,
                MixClass::Store => 1,
                MixClass::Fp => 2,
                MixClass::Int => 3,
            };
            counts[slot] += 1;
        }
        for (observed, expected) in counts.iter().zip([mix.load, mix.store, mix.fp, mix.int()]) {
            let frac = *observed as f64 / n as f64;
            assert!(
                (frac - expected).abs() < 0.01,
                "observed {frac} vs mix {expected}"
            );
        }
    }

    #[test]
    fn threshold_boundaries_partition_the_draw_space() {
        // Degenerate mixes. `probability_bits(1.0)` saturates to u64::MAX
        // (2^64 is not representable), so an all-load mix classifies every
        // draw but u64::MAX itself as Load — the same 2^-64 quantum the v2
        // dependency thresholds already accept. Pin both sides of it.
        let all_load = InstructionMix::new(1.0, 0.0, 0.0).thresholds();
        let all_int = InstructionMix::new(0.0, 0.0, 0.0).thresholds();
        for draw in [0u64, 1, u64::MAX / 2, u64::MAX - 1] {
            assert_eq!(all_load.classify(draw), MixClass::Load, "{draw}");
        }
        assert_eq!(all_load.classify(u64::MAX), MixClass::Int, "the quantum");
        for draw in [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
            assert_eq!(all_int.classify(draw), MixClass::Int, "{draw}");
        }
        // The zero draw always selects the first non-empty class.
        let no_loads = InstructionMix::new(0.0, 0.5, 0.2).thresholds();
        assert_eq!(no_loads.classify(0), MixClass::Store);
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn oversubscribed_mix_panics() {
        let _ = InstructionMix::new(0.6, 0.3, 0.3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mix_panics() {
        let _ = InstructionMix::new(-0.1, 0.3, 0.3);
    }
}
