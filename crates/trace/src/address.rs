//! Data-address stream generation.
//!
//! Each application phase has a [`WorkingSetSpec`]; the [`AddressStream`]
//! turns it into a stream of effective addresses with three components,
//! weighted per application:
//!
//! * **sequential** — a strided walk through the working set (spatial
//!   locality, e.g. array sweeps in `swim`/`tomcatv`),
//! * **random-in-set** — uniform re-references within the working set
//!   (temporal locality; this is what makes the working-set *size* matter),
//! * **streaming** — references outside the working set that are never
//!   re-used (compulsory misses, e.g. `swim`'s large arrays).

use crate::rng::{chance_bits, Prng};
use crate::working_set::{ResolvedWorkingSet, WorkingSetSpec};

/// Relative weights of the address-stream components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessMix {
    /// Fraction of accesses that continue a sequential (strided) walk.
    pub sequential: f64,
    /// Fraction of accesses that touch a uniformly random block of the
    /// working set.
    pub random_in_set: f64,
    /// Fraction of accesses that stream through memory outside the working
    /// set (never re-referenced).
    pub streaming: f64,
}

impl AccessMix {
    /// Creates a mix, normalising the weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any weight is negative.
    pub fn new(sequential: f64, random_in_set: f64, streaming: f64) -> Self {
        assert!(
            sequential >= 0.0 && random_in_set >= 0.0 && streaming >= 0.0,
            "access-mix weights must be non-negative"
        );
        let sum = sequential + random_in_set + streaming;
        assert!(sum > 0.0, "access-mix weights must not all be zero");
        Self {
            sequential: sequential / sum,
            random_in_set: random_in_set / sum,
            streaming: streaming / sum,
        }
    }
}

impl Default for AccessMix {
    fn default() -> Self {
        Self::new(0.55, 0.40, 0.05)
    }
}

/// Generates a stream of data addresses for a (possibly phase-varying)
/// working set.
///
/// The stream caches the resolved geometry of the most recent working set
/// (one address is drawn per memory instruction, and the working set only
/// changes at phase boundaries), keeping the per-address cost to the random
/// draw plus a few adds.
#[derive(Debug, Clone)]
pub struct AddressStream {
    mix: AccessMix,
    /// `chance_bits(mix.sequential)`: the classification draw below this
    /// threshold continues the sequential walk.
    sequential_bits: u64,
    /// `chance_bits(mix.sequential + mix.random_in_set)`: a draw below this
    /// (but not below `sequential_bits`) touches a random in-set block.
    in_set_bits: u64,
    stride: u64,
    cursor: u64,
    stream_ptr: u64,
    /// Resolution of the working set the previous address used.
    resolved: ResolvedWorkingSet,
    rng: Prng,
}

/// Base address of the streaming (never re-used) region; far above any
/// working-set segment.
const STREAM_BASE: u64 = 0x7000_0000;

impl AddressStream {
    /// Creates an address stream with the given access mix and element stride
    /// (bytes between consecutive sequential accesses).
    pub fn new(mix: AccessMix, stride: u64, rng: Prng) -> Self {
        Self {
            mix,
            // The classification thresholds are hoisted out of the per-access
            // loop as exact fixed-point values: `chance_bits` decides
            // identically to the `next_f64()` comparisons it replaced (see
            // its proof), so this stream's addresses are unchanged in every
            // trace format — which is why it needs no format gate. The
            // second threshold is built from the same rounded `f64` partial
            // sum the original chained comparison used.
            sequential_bits: chance_bits(mix.sequential),
            in_set_bits: chance_bits(mix.sequential + mix.random_in_set),
            stride: stride.max(1),
            cursor: 0,
            stream_ptr: STREAM_BASE,
            resolved: WorkingSetSpec::default().resolve(),
            rng,
        }
    }

    /// Returns the next effective address for an access within `ws`.
    pub fn next_address(&mut self, ws: &WorkingSetSpec) -> u64 {
        if *ws != self.resolved.spec {
            self.resolved = ws.resolve();
        }
        let r = self.rng.next_bits53();
        if r < self.sequential_bits {
            self.cursor = self.cursor.wrapping_add(self.stride);
            self.resolved.offset_to_address(self.cursor)
        } else if r < self.in_set_bits {
            let blocks = (ws.bytes / 64).max(1);
            let block = self.rng.below(blocks);
            self.resolved
                .offset_to_address(block * 64 + self.rng.below(64))
        } else {
            self.stream_ptr = self.stream_ptr.wrapping_add(64);
            self.stream_ptr
        }
    }

    /// The configured access mix.
    pub fn mix(&self) -> AccessMix {
        self.mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seq: f64, rnd: f64, strm: f64) -> AddressStream {
        AddressStream::new(AccessMix::new(seq, rnd, strm), 8, Prng::new(1))
    }

    #[test]
    fn mix_normalises() {
        let m = AccessMix::new(2.0, 1.0, 1.0);
        assert!((m.sequential - 0.5).abs() < 1e-12);
        assert!((m.random_in_set - 0.25).abs() < 1e-12);
        assert!((m.streaming - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn zero_mix_panics() {
        let _ = AccessMix::new(0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mix_panics() {
        let _ = AccessMix::new(-1.0, 1.0, 0.0);
    }

    #[test]
    fn sequential_stream_walks_working_set() {
        let mut s = stream(1.0, 0.0, 0.0);
        let ws = WorkingSetSpec::uniform(4096);
        let a0 = s.next_address(&ws);
        let a1 = s.next_address(&ws);
        assert_eq!(a1 - a0, 8);
    }

    #[test]
    fn random_stream_stays_in_working_set() {
        let mut s = stream(0.0, 1.0, 0.0);
        let ws = WorkingSetSpec::uniform(4096);
        for _ in 0..1000 {
            let a = s.next_address(&ws);
            assert!(a >= ws.base && a < ws.base + ws.bytes);
        }
    }

    #[test]
    fn streaming_addresses_never_repeat() {
        let mut s = stream(0.0, 0.0, 1.0);
        let ws = WorkingSetSpec::uniform(4096);
        let mut prev = 0;
        for _ in 0..100 {
            let a = s.next_address(&ws);
            assert!(a > prev, "streaming addresses must be monotonic");
            prev = a;
        }
    }

    #[test]
    fn integer_thresholds_match_the_f64_classification_bit_for_bit() {
        // The original per-access draw, kept verbatim as the reference: the
        // address stream is shared by every trace format, so the hoisted
        // integer thresholds must reproduce it exactly — not statistically.
        struct Reference {
            mix: AccessMix,
            stride: u64,
            cursor: u64,
            stream_ptr: u64,
            resolved: ResolvedWorkingSet,
            rng: Prng,
        }
        impl Reference {
            fn next_address(&mut self, ws: &WorkingSetSpec) -> u64 {
                if *ws != self.resolved.spec {
                    self.resolved = ws.resolve();
                }
                let r = self.rng.next_f64();
                if r < self.mix.sequential {
                    self.cursor = self.cursor.wrapping_add(self.stride);
                    self.resolved.offset_to_address(self.cursor)
                } else if r < self.mix.sequential + self.mix.random_in_set {
                    let blocks = (ws.bytes / 64).max(1);
                    let block = self.rng.below(blocks);
                    self.resolved
                        .offset_to_address(block * 64 + self.rng.below(64))
                } else {
                    self.stream_ptr = self.stream_ptr.wrapping_add(64);
                    self.stream_ptr
                }
            }
        }

        let mixes = [
            AccessMix::default(),
            AccessMix::new(0.55, 0.40, 0.05),
            AccessMix::new(1.0, 1.0, 1.0),
            AccessMix::new(0.0, 1.0, 0.0),
            AccessMix::new(0.2, 0.0, 0.8),
            AccessMix::new(1.0, 0.0, 0.0),
        ];
        let footprints = [
            WorkingSetSpec::uniform(4096),
            WorkingSetSpec::uniform(256 * 1024),
        ];
        for mix in mixes {
            let mut fast = AddressStream::new(mix, 8, Prng::new(23));
            let mut reference = Reference {
                mix,
                stride: 8,
                cursor: 0,
                stream_ptr: 0x7000_0000,
                resolved: WorkingSetSpec::default().resolve(),
                rng: Prng::new(23),
            };
            for i in 0..60_000 {
                let ws = &footprints[(i / 777) % footprints.len()];
                assert_eq!(
                    fast.next_address(ws),
                    reference.next_address(ws),
                    "{mix:?} step {i}"
                );
            }
        }
    }

    #[test]
    fn working_set_size_bounds_unique_blocks() {
        let mut s = stream(0.3, 0.7, 0.0);
        let ws = WorkingSetSpec::uniform(2048);
        let mut blocks = std::collections::HashSet::new();
        for _ in 0..10_000 {
            blocks.insert(s.next_address(&ws) / 64);
        }
        assert!(blocks.len() as u64 <= 2048 / 64 + 1);
    }
}
