//! Synthetic SPEC-like workload and trace generation for the `rescache`
//! resizable-cache study.
//!
//! The HPCA 2002 paper this workspace reproduces evaluates resizable caches by
//! running SPEC95/SPEC2000 binaries on a SimpleScalar/Wattch simulator. SPEC
//! binaries and reference inputs are proprietary, so this crate provides the
//! closest synthetic equivalent: per-application *profiles* that encode the
//! properties the paper's evaluation actually depends on — data working-set
//! size and its phase behaviour, instruction footprint and its phase
//! behaviour, conflict-miss propensity, instruction mix, branch behaviour and
//! instruction-level parallelism — and a deterministic generator that expands
//! a profile into an instruction [`Trace`] consumable by `rescache-cpu`.
//!
//! # Crate map
//!
//! * [`record`] — the [`InstrRecord`]/[`Op`] trace record types.
//! * [`format`] — the [`TraceFormat`] version carried end to end.
//! * [`trace`] — the [`Trace`] container and [`TraceStats`] summary.
//! * [`source`] — [`TraceSource`]: pull-based chunked record delivery.
//! * [`codec`] — length-prefixed binary persistence for traces, with
//!   length-prefixed delta chunk compression in the v3 container.
//! * [`faults`] — [`IoPolicy`]: injectable filesystem I/O with deterministic
//!   fault injection (`RESCACHE_FAULTS`) for recovery-path testing.
//! * [`rng`] — a small deterministic pseudo-random number generator.
//! * [`phase`] — [`PhaseSchedule`]: how a working set evolves over time.
//! * [`working_set`] — [`WorkingSetSpec`]: size, aliasing segments, locality.
//! * [`address`] — data-address stream generation for a working set.
//! * [`code`] — instruction-address (PC) stream generation for a footprint.
//! * [`mix`] — instruction mix (loads/stores/FP/branches).
//! * [`branch`] — branch outcome behaviour.
//! * [`ilp`] — dependency-distance (ILP) behaviour.
//! * [`profile`] — [`AppProfile`]: everything needed to generate one app.
//! * [`spec`] — the twelve SPEC-like application profiles used by the paper.
//! * [`workload`] — [`WorkloadRegistry`]: named scenario workloads.
//! * [`generator`] — [`TraceGenerator`]: expands a profile into a [`Trace`]
//!   or a resumable chunked [`TraceStream`].
//!
//! # Example
//!
//! ```
//! use rescache_trace::{spec, TraceGenerator};
//!
//! let profile = spec::profile("gcc").expect("gcc profile exists");
//! let trace = TraceGenerator::new(profile.clone(), 42).generate(10_000);
//! assert_eq!(trace.len(), 10_000);
//! let stats = trace.stats();
//! assert!(stats.loads + stats.stores > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod branch;
pub mod code;
pub mod codec;
mod compress;
pub mod faults;
pub mod format;
pub mod generator;
pub mod ilp;
pub mod mix;
pub mod phase;
pub mod profile;
pub mod record;
pub mod rng;
pub mod source;
pub mod spec;
pub mod trace;
pub mod working_set;
pub mod workload;

pub use address::AddressStream;
pub use branch::BranchBehavior;
pub use code::CodeStream;
pub use codec::{
    ChunkedTraceReader, CodecError, Compression, CorruptChunk, TraceFileSource, UnencodableRecord,
};
pub use faults::{
    is_disk_full, is_transient, FaultInjector, FaultKind, FaultSpec, IoOp, IoPolicy, ScriptedFault,
};
pub use format::TraceFormat;
pub use generator::{TraceGenerator, TraceStream};
pub use ilp::{DistanceSampler, DistanceTable, IlpBehavior, MAX_DISTANCE};
pub use mix::{InstructionMix, MixClass, MixThresholds};
pub use phase::{Phase, PhaseSchedule, ScheduleCursor, ScheduleKind};
pub use profile::{AppProfile, CodeBehavior, DataBehavior};
pub use record::{kind, InstrRecord, Op};
pub use rng::{chance_bits, Prng};
pub use source::{TraceCursor, TraceSource, CHUNK_RECORDS};
pub use trace::{Trace, TraceStats};
pub use working_set::WorkingSetSpec;
pub use workload::{WorkloadRegistry, WorkloadSpec};
