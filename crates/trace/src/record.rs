//! Trace record types: one [`InstrRecord`] per dynamic instruction.

/// The operation class of a dynamic instruction.
///
/// Memory operations carry the effective byte address of their access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// An integer ALU operation (single-cycle).
    Int,
    /// A floating-point operation (multi-cycle execution latency).
    Fp,
    /// A load from the given effective address.
    Load(u64),
    /// A store to the given effective address.
    Store(u64),
    /// A conditional branch with its resolved direction.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
    },
}

impl Op {
    /// Returns `true` if this operation accesses the data cache.
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Load(_) | Op::Store(_))
    }

    /// Returns `true` if this operation is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Load(_))
    }

    /// Returns `true` if this operation is a store.
    pub fn is_store(&self) -> bool {
        matches!(self, Op::Store(_))
    }

    /// Returns `true` if this operation is a conditional branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Op::Branch { .. })
    }

    /// Returns the effective data address, if this is a memory operation.
    pub fn address(&self) -> Option<u64> {
        match self {
            Op::Load(a) | Op::Store(a) => Some(*a),
            _ => None,
        }
    }
}

/// Raw operation-class tags of the packed record encoding.
///
/// These are the values [`InstrRecord::kind_tag`] returns and the on-disk
/// codec stores. Batched consumers (the struct-of-arrays engine front end in
/// `rescache-cpu`) dispatch on the tag directly instead of re-materializing
/// an [`Op`], so the ordering is part of the stable encoding: ALU classes
/// first (`INT`, `FP`), then memory (`LOAD`, `STORE`), then branches with the
/// taken direction in the low bit.
pub mod kind {
    /// An integer ALU operation.
    pub const INT: u8 = 0;
    /// A floating-point operation.
    pub const FP: u8 = 1;
    /// A load; the record's address lane carries the effective address.
    pub const LOAD: u8 = 2;
    /// A store; the record's address lane carries the effective address.
    pub const STORE: u8 = 3;
    /// A conditional branch resolved not-taken.
    pub const BRANCH_NOT_TAKEN: u8 = 4;
    /// A conditional branch resolved taken.
    pub const BRANCH_TAKEN: u8 = 5;
}

use kind::{
    BRANCH_NOT_TAKEN as KIND_BRANCH_NOT_TAKEN, BRANCH_TAKEN as KIND_BRANCH_TAKEN, FP as KIND_FP,
    INT as KIND_INT, LOAD as KIND_LOAD, STORE as KIND_STORE,
};

/// A single dynamic instruction in a trace.
///
/// Dependency distances point backwards in the dynamic instruction stream:
/// `dep1 == 3` means "this instruction consumes the result produced three
/// instructions earlier". A distance of `0` means "no register dependency".
/// These distances are what the out-of-order model uses to bound the
/// instruction-level parallelism it can extract.
///
/// The record is packed into 12 bytes (32-bit PC and effective address, one
/// tag byte, two dependency bytes): a paper-length experiment streams
/// millions of records through the engines once per cache configuration, so
/// record size is directly memory bandwidth on the simulation hot path. The
/// generated workloads place code below `0x1000_0000` and data below
/// `0x8000_0000`, so 32-bit addresses lose nothing; the constructors assert
/// this rather than truncate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstrRecord {
    pc: u32,
    addr: u32,
    kind: u8,
    dep1: u8,
    dep2: u8,
}

impl InstrRecord {
    /// Creates a record with no register dependencies.
    ///
    /// # Panics
    ///
    /// Panics if the PC or a memory address exceeds 32 bits.
    pub fn new(pc: u64, op: Op) -> Self {
        Self::with_deps(pc, op, 0, 0)
    }

    /// Creates a record with the given dependency distances.
    ///
    /// # Panics
    ///
    /// Panics if the PC or a memory address exceeds 32 bits.
    pub fn with_deps(pc: u64, op: Op, dep1: u8, dep2: u8) -> Self {
        assert!(pc <= u64::from(u32::MAX), "pc {pc:#x} exceeds 32 bits");
        let (kind, addr) = match op {
            Op::Int => (KIND_INT, 0),
            Op::Fp => (KIND_FP, 0),
            Op::Load(a) => (KIND_LOAD, a),
            Op::Store(a) => (KIND_STORE, a),
            Op::Branch { taken: false } => (KIND_BRANCH_NOT_TAKEN, 0),
            Op::Branch { taken: true } => (KIND_BRANCH_TAKEN, 0),
        };
        assert!(
            addr <= u64::from(u32::MAX),
            "address {addr:#x} exceeds 32 bits"
        );
        Self {
            pc: pc as u32,
            addr: addr as u32,
            kind,
            dep1,
            dep2,
        }
    }

    /// Program counter (byte address) of the instruction.
    #[inline(always)]
    pub fn pc(&self) -> u64 {
        u64::from(self.pc)
    }

    /// Operation class, including memory addresses and branch outcomes.
    #[inline(always)]
    pub fn op(&self) -> Op {
        match self.kind {
            KIND_INT => Op::Int,
            KIND_FP => Op::Fp,
            KIND_LOAD => Op::Load(u64::from(self.addr)),
            KIND_STORE => Op::Store(u64::from(self.addr)),
            KIND_BRANCH_NOT_TAKEN => Op::Branch { taken: false },
            _ => Op::Branch { taken: true },
        }
    }

    /// Raw operation-class tag (one of the [`kind`] constants).
    ///
    /// This is the struct-of-arrays view of [`InstrRecord::op`]: batched
    /// consumers copy the tag into a kind lane and dispatch on it without
    /// materializing an [`Op`].
    #[inline(always)]
    pub fn kind_tag(&self) -> u8 {
        self.kind
    }

    /// Program counter as the packed 32-bit lane value.
    #[inline(always)]
    pub fn pc_raw(&self) -> u32 {
        self.pc
    }

    /// Effective data address as the packed 32-bit lane value (0 for
    /// non-memory operations).
    #[inline(always)]
    pub fn addr_raw(&self) -> u32 {
        self.addr
    }

    /// Distance (in dynamic instructions) to the first source producer;
    /// 0 = none.
    #[inline(always)]
    pub fn dep1(&self) -> u8 {
        self.dep1
    }

    /// Distance (in dynamic instructions) to the second source producer;
    /// 0 = none.
    #[inline(always)]
    pub fn dep2(&self) -> u8 {
        self.dep2
    }

    /// The all-zero record (an INT op at PC 0): the filler the decode paths
    /// pre-size their output slices with before overwriting every slot.
    pub(crate) const fn zeroed() -> Self {
        Self {
            pc: 0,
            addr: 0,
            kind: 0,
            dep1: 0,
            dep2: 0,
        }
    }

    /// Assembles a record from lane values the caller already validated.
    ///
    /// The compressed codec's hot decode loop rejects bad operation tags
    /// while parsing the record head, so re-checking here would put a dead
    /// branch on the per-record path; the debug assertion keeps the contract
    /// honest under `cargo test`.
    #[inline(always)]
    pub(crate) fn from_lanes_validated(pc: u32, addr: u32, kind: u8, dep1: u8, dep2: u8) -> Self {
        debug_assert!(kind <= KIND_BRANCH_TAKEN, "unvalidated tag {kind}");
        Self {
            pc,
            addr,
            kind,
            dep1,
            dep2,
        }
    }

    /// Lane setters for the sectioned chunk decoder: its first pass
    /// materializes the head plane (kind and dependencies), its second fills
    /// the PC/address lanes in place.
    #[inline(always)]
    pub(crate) fn set_pc_lane(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// See [`InstrRecord::set_pc_lane`].
    #[inline(always)]
    pub(crate) fn set_addr_lane(&mut self, addr: u32) {
        self.addr = addr;
    }

    /// Encodes the record into its 12-byte on-disk form (little-endian PC and
    /// address, tag byte, two dependency bytes, one reserved zero byte).
    ///
    /// This is the unit of the trace-store codec (see [`crate::codec`]); the
    /// encoding matches the in-memory packing so a paper-length trace streams
    /// to and from disk at memcpy-like cost.
    pub fn encode(&self) -> [u8; ENCODED_RECORD_BYTES] {
        let mut out = [0u8; ENCODED_RECORD_BYTES];
        out[0..4].copy_from_slice(&self.pc.to_le_bytes());
        out[4..8].copy_from_slice(&self.addr.to_le_bytes());
        out[8] = self.kind;
        out[9] = self.dep1;
        out[10] = self.dep2;
        out
    }

    /// Decodes a record from its 12-byte on-disk form, rejecting unknown
    /// operation tags and a non-zero reserved byte (both indicate a corrupt
    /// or foreign file rather than a valid trace).
    pub fn decode(bytes: &[u8; ENCODED_RECORD_BYTES]) -> Result<Self, InvalidRecord> {
        let kind = bytes[8];
        if kind > KIND_BRANCH_TAKEN {
            return Err(InvalidRecord { kind });
        }
        if bytes[11] != 0 {
            return Err(InvalidRecord { kind });
        }
        Ok(Self {
            pc: u32::from_le_bytes(bytes[0..4].try_into().expect("4-byte slice")),
            addr: u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice")),
            kind,
            dep1: bytes[9],
            dep2: bytes[10],
        })
    }
}

/// Size in bytes of one encoded [`InstrRecord`].
pub const ENCODED_RECORD_BYTES: usize = 12;

/// Error returned by [`InstrRecord::decode`] for bytes that are not a valid
/// record encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRecord {
    /// The rejected operation tag.
    pub kind: u8,
}

impl std::fmt::Display for InvalidRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid trace record encoding (tag {})", self.kind)
    }
}

impl std::error::Error for InvalidRecord {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert!(Op::Load(0x100).is_mem());
        assert!(Op::Store(0x100).is_mem());
        assert!(!Op::Int.is_mem());
        assert!(Op::Load(4).is_load());
        assert!(!Op::Load(4).is_store());
        assert!(Op::Store(4).is_store());
        assert!(Op::Branch { taken: true }.is_branch());
        assert!(!Op::Fp.is_branch());
    }

    #[test]
    fn op_address_extraction() {
        assert_eq!(Op::Load(0xdead).address(), Some(0xdead));
        assert_eq!(Op::Store(0xbeef).address(), Some(0xbeef));
        assert_eq!(Op::Int.address(), None);
        assert_eq!(Op::Branch { taken: false }.address(), None);
    }

    #[test]
    fn record_constructors() {
        let r = InstrRecord::new(0x400, Op::Int);
        assert_eq!(r.dep1, 0);
        assert_eq!(r.dep2, 0);
        let r = InstrRecord::with_deps(0x404, Op::Fp, 2, 5);
        assert_eq!(r.dep1, 2);
        assert_eq!(r.dep2, 5);
        assert_eq!(r.pc, 0x404);
    }

    #[test]
    fn lane_accessors_agree_with_op() {
        let records = [
            (InstrRecord::new(0x400, Op::Int), kind::INT, 0),
            (InstrRecord::new(0x404, Op::Fp), kind::FP, 0),
            (
                InstrRecord::new(0x408, Op::Load(0x9000)),
                kind::LOAD,
                0x9000,
            ),
            (
                InstrRecord::new(0x40c, Op::Store(0x9008)),
                kind::STORE,
                0x9008,
            ),
            (
                InstrRecord::new(0x410, Op::Branch { taken: false }),
                kind::BRANCH_NOT_TAKEN,
                0,
            ),
            (
                InstrRecord::new(0x414, Op::Branch { taken: true }),
                kind::BRANCH_TAKEN,
                0,
            ),
        ];
        for (rec, tag, addr) in records {
            assert_eq!(rec.kind_tag(), tag);
            assert_eq!(u64::from(rec.addr_raw()), addr);
            assert_eq!(u64::from(rec.pc_raw()), rec.pc());
            assert_eq!(rec.op().address().unwrap_or(0), addr);
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let records = [
            InstrRecord::new(0x40_0000, Op::Int),
            InstrRecord::with_deps(0x40_0004, Op::Fp, 3, 7),
            InstrRecord::with_deps(0x40_0008, Op::Load(0x1234_5678), 1, 0),
            InstrRecord::new(0x40_000c, Op::Store(0x7000_0040)),
            InstrRecord::new(0x40_0010, Op::Branch { taken: true }),
            InstrRecord::new(0x40_0014, Op::Branch { taken: false }),
        ];
        for r in records {
            assert_eq!(InstrRecord::decode(&r.encode()), Ok(r));
        }
    }

    #[test]
    fn decode_rejects_bad_tag_and_reserved_byte() {
        let mut bytes = InstrRecord::new(0x400, Op::Int).encode();
        bytes[8] = 9;
        assert!(InstrRecord::decode(&bytes).is_err());
        let mut bytes = InstrRecord::new(0x400, Op::Int).encode();
        bytes[11] = 1;
        assert!(InstrRecord::decode(&bytes).is_err());
    }
}
