//! Trace record types: one [`InstrRecord`] per dynamic instruction.

/// The operation class of a dynamic instruction.
///
/// Memory operations carry the effective byte address of their access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// An integer ALU operation (single-cycle).
    Int,
    /// A floating-point operation (multi-cycle execution latency).
    Fp,
    /// A load from the given effective address.
    Load(u64),
    /// A store to the given effective address.
    Store(u64),
    /// A conditional branch with its resolved direction.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
    },
}

impl Op {
    /// Returns `true` if this operation accesses the data cache.
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Load(_) | Op::Store(_))
    }

    /// Returns `true` if this operation is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Load(_))
    }

    /// Returns `true` if this operation is a store.
    pub fn is_store(&self) -> bool {
        matches!(self, Op::Store(_))
    }

    /// Returns `true` if this operation is a conditional branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Op::Branch { .. })
    }

    /// Returns the effective data address, if this is a memory operation.
    pub fn address(&self) -> Option<u64> {
        match self {
            Op::Load(a) | Op::Store(a) => Some(*a),
            _ => None,
        }
    }
}

/// A single dynamic instruction in a trace.
///
/// Dependency distances point backwards in the dynamic instruction stream:
/// `dep1 == 3` means "this instruction consumes the result produced three
/// instructions earlier". A distance of `0` means "no register dependency".
/// These distances are what the out-of-order model uses to bound the
/// instruction-level parallelism it can extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstrRecord {
    /// Program counter (byte address) of the instruction.
    pub pc: u64,
    /// Operation class, including memory addresses and branch outcomes.
    pub op: Op,
    /// Distance (in dynamic instructions) to the first source producer; 0 = none.
    pub dep1: u8,
    /// Distance (in dynamic instructions) to the second source producer; 0 = none.
    pub dep2: u8,
}

impl InstrRecord {
    /// Creates a record with no register dependencies.
    pub fn new(pc: u64, op: Op) -> Self {
        Self {
            pc,
            op,
            dep1: 0,
            dep2: 0,
        }
    }

    /// Creates a record with the given dependency distances.
    pub fn with_deps(pc: u64, op: Op, dep1: u8, dep2: u8) -> Self {
        Self {
            pc,
            op,
            dep1,
            dep2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert!(Op::Load(0x100).is_mem());
        assert!(Op::Store(0x100).is_mem());
        assert!(!Op::Int.is_mem());
        assert!(Op::Load(4).is_load());
        assert!(!Op::Load(4).is_store());
        assert!(Op::Store(4).is_store());
        assert!(Op::Branch { taken: true }.is_branch());
        assert!(!Op::Fp.is_branch());
    }

    #[test]
    fn op_address_extraction() {
        assert_eq!(Op::Load(0xdead).address(), Some(0xdead));
        assert_eq!(Op::Store(0xbeef).address(), Some(0xbeef));
        assert_eq!(Op::Int.address(), None);
        assert_eq!(Op::Branch { taken: false }.address(), None);
    }

    #[test]
    fn record_constructors() {
        let r = InstrRecord::new(0x400, Op::Int);
        assert_eq!(r.dep1, 0);
        assert_eq!(r.dep2, 0);
        let r = InstrRecord::with_deps(0x404, Op::Fp, 2, 5);
        assert_eq!(r.dep1, 2);
        assert_eq!(r.dep2, 5);
        assert_eq!(r.pc, 0x404);
    }
}
