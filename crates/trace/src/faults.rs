//! Deterministic filesystem fault injection: the seam that makes every
//! store/codec recovery path provable.
//!
//! All filesystem I/O of the trace codec and the experiment trace store is
//! routed through an [`IoPolicy`]. The default policy is a transparent
//! pass-through with zero overhead beyond one branch per operation; a policy
//! carrying a [`FaultInjector`] turns the same code paths into a fault
//! harness — opens, reads, writes, renames and removals fail with seeded,
//! reproducible probabilities (or according to an explicit test script), so
//! retry, quarantine and degradation logic can be exercised deterministically
//! in CI instead of waiting for a flaky disk in production.
//!
//! Injected failures come in two flavours the recovery layers treat
//! differently:
//!
//! * **transient** ([`io::ErrorKind::TimedOut`]) — the kind of error a
//!   bounded retry with backoff is allowed to absorb (see [`is_transient`]);
//! * **disk-full** ([`io::ErrorKind::StorageFull`]) — a persistent condition
//!   that must degrade the store to in-memory-only operation (see
//!   [`is_disk_full`]).
//!
//! A scripted injector can additionally **panic** inside an operation, which
//! is how the single-flight memo tier's poisoned-lock recovery is regression
//! tested.
//!
//! The environment knob `RESCACHE_FAULTS` (see [`FaultSpec::parse`])
//! configures a seeded probabilistic injector for whole processes — the CI
//! fault-injection stress job runs the full shared-tier test suite under it.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// The filesystem operations an [`IoPolicy`] routes (and a
/// [`FaultInjector`] can fail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Opening (or creating) a file, including directory listings.
    Open,
    /// One `read` call on an open file.
    Read,
    /// One `write` (or `flush`) call on an open file.
    Write,
    /// Renaming a file (the atomic-save commit step).
    Rename,
    /// Removing a file.
    Remove,
    /// Creating the store directory.
    CreateDir,
}

impl IoOp {
    /// Every operation, in [`IoOp::index`] order.
    pub const ALL: [IoOp; 6] = [
        IoOp::Open,
        IoOp::Read,
        IoOp::Write,
        IoOp::Rename,
        IoOp::Remove,
        IoOp::CreateDir,
    ];

    /// Dense index of this operation (for per-op probability tables).
    pub fn index(self) -> usize {
        match self {
            IoOp::Open => 0,
            IoOp::Read => 1,
            IoOp::Write => 2,
            IoOp::Rename => 3,
            IoOp::Remove => 4,
            IoOp::CreateDir => 5,
        }
    }

    /// The knob name of this operation in `RESCACHE_FAULTS`.
    pub fn key(self) -> &'static str {
        match self {
            IoOp::Open => "open",
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Rename => "rename",
            IoOp::Remove => "remove",
            IoOp::CreateDir => "create_dir",
        }
    }
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Per-operation failure probabilities plus the seed that makes the draw
/// sequence reproducible: the parsed form of `RESCACHE_FAULTS`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed of the deterministic decision stream.
    pub seed: u64,
    /// Probability (0.0..=1.0) that one operation of each kind fails with a
    /// transient error, indexed by [`IoOp::index`].
    pub probability: [f64; 6],
    /// Probability (0.0..=1.0) that one *write* fails with a disk-full error
    /// (checked before the transient write probability).
    pub disk_full: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            probability: [0.0; 6],
            disk_full: 0.0,
        }
    }
}

impl FaultSpec {
    /// Parses a `RESCACHE_FAULTS` value: comma-separated `key=value` pairs
    /// where the keys are `seed`, one of the [`IoOp::key`] names, or `full`
    /// (disk-full probability on writes). Example:
    ///
    /// ```text
    /// RESCACHE_FAULTS=seed=7,open=0.02,read=0.02,write=0.02,rename=0.01,remove=0.01,full=0
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed pair (unknown key,
    /// unparsable number, or a probability outside `0.0..=1.0`).
    pub fn parse(value: &str) -> Result<Self, String> {
        let mut spec = Self::default();
        for pair in value.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, raw) = pair
                .split_once('=')
                .ok_or_else(|| format!("`{pair}` is not a key=value pair"))?;
            let key = key.trim();
            let raw = raw.trim();
            if key == "seed" {
                spec.seed = raw
                    .parse()
                    .map_err(|_| format!("seed `{raw}` is not an unsigned integer"))?;
                continue;
            }
            let probability: f64 = raw
                .parse()
                .map_err(|_| format!("`{raw}` for `{key}` is not a number"))?;
            if !(0.0..=1.0).contains(&probability) {
                return Err(format!("`{key}={raw}` is outside 0.0..=1.0"));
            }
            if key == "full" {
                spec.disk_full = probability;
                continue;
            }
            let op = IoOp::ALL
                .into_iter()
                .find(|op| op.key() == key)
                .ok_or_else(|| format!("unknown fault knob `{key}`"))?;
            spec.probability[op.index()] = probability;
        }
        Ok(spec)
    }

    /// True when every probability is zero — the spec injects nothing.
    pub fn is_quiet(&self) -> bool {
        self.disk_full == 0.0 && self.probability.iter().all(|p| *p == 0.0)
    }
}

/// One scripted decision a test enqueues on a [`FaultInjector`]: the next
/// operation matching `op` receives `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// The operation kind this entry fires on.
    pub op: IoOp,
    /// What happens when it fires.
    pub kind: FaultKind,
}

/// The failure a scripted entry injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient error ([`io::ErrorKind::TimedOut`]): retryable.
    Transient,
    /// A disk-full error ([`io::ErrorKind::StorageFull`]): degrades the
    /// store to in-memory-only operation.
    DiskFull,
    /// A permission error ([`io::ErrorKind::PermissionDenied`]): a
    /// persistent, non-retryable condition that is not disk-full.
    PermissionDenied,
    /// Panic inside the operation (exercises poisoned-lock recovery).
    Panic,
}

/// A deterministic fault source shared by every [`IoPolicy`] clone that
/// carries it.
///
/// Two mechanisms compose, scripted entries first:
///
/// * a **script** — an ordered queue of [`ScriptedFault`]s; the next
///   operation whose kind matches the queue head consumes it (operations of
///   other kinds pass through unharmed while an entry waits);
/// * a **seeded spec** — every operation draws from a counter-indexed
///   SplitMix64 stream, so a given `(seed, draw index)` always decides the
///   same way regardless of host or timing.
#[derive(Debug, Default)]
pub struct FaultInjector {
    spec: FaultSpec,
    draws: AtomicU64,
    injected: AtomicU64,
    script: Mutex<VecDeque<ScriptedFault>>,
}

impl FaultInjector {
    /// An injector driven by a seeded probabilistic spec.
    pub fn seeded(spec: FaultSpec) -> Self {
        Self {
            spec,
            ..Self::default()
        }
    }

    /// An injector driven purely by an explicit script (no randomness).
    pub fn scripted(script: impl IntoIterator<Item = ScriptedFault>) -> Self {
        Self {
            script: Mutex::new(script.into_iter().collect()),
            ..Self::default()
        }
    }

    /// Appends one scripted entry (fires on the next matching operation once
    /// every earlier entry has been consumed).
    pub fn push(&self, fault: ScriptedFault) {
        self.script
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(fault);
    }

    /// Total faults injected so far (scripted and probabilistic).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Scripted entries not yet consumed.
    pub fn pending_script(&self) -> usize {
        self.script
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Decides the fate of one operation. Returns the error to inject, panics
    /// for a scripted [`FaultKind::Panic`], or returns `None` (proceed).
    fn decide(&self, op: IoOp) -> Option<io::Error> {
        if let Some(kind) = self.take_scripted(op) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            match kind {
                FaultKind::Panic => panic!("injected panic on {op}"),
                kind => return Some(Self::error(op, kind)),
            }
        }
        let draw = self.draws.fetch_add(1, Ordering::Relaxed);
        let unit = |salt: u64| {
            // SplitMix64 over (seed, draw, salt): reproducible for a given
            // seed independent of thread interleaving *per draw index*.
            let mut z = self
                .spec
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(draw.wrapping_mul(2).wrapping_add(salt))
                .wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        };
        if op == IoOp::Write && self.spec.disk_full > 0.0 && unit(1) < self.spec.disk_full {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(Self::error(op, FaultKind::DiskFull));
        }
        let p = self.spec.probability[op.index()];
        if p > 0.0 && unit(0) < p {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(Self::error(op, FaultKind::Transient));
        }
        None
    }

    /// Pops the script head if it matches `op`.
    fn take_scripted(&self, op: IoOp) -> Option<FaultKind> {
        let mut script = self.script.lock().unwrap_or_else(PoisonError::into_inner);
        if script.front().is_some_and(|f| f.op == op) {
            return script.pop_front().map(|f| f.kind);
        }
        None
    }

    /// Builds the injected error for one (operation, kind) pair. The message
    /// names the injection so store diagnostics stay distinguishable from
    /// real disk trouble.
    fn error(op: IoOp, kind: FaultKind) -> io::Error {
        match kind {
            FaultKind::Transient => io::Error::new(
                io::ErrorKind::TimedOut,
                format!("injected transient {op} fault"),
            ),
            FaultKind::DiskFull => io::Error::new(
                io::ErrorKind::StorageFull,
                format!("injected disk-full {op} fault"),
            ),
            FaultKind::PermissionDenied => io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!("injected permission {op} fault"),
            ),
            FaultKind::Panic => unreachable!("panics are raised in decide"),
        }
    }
}

/// True for errors a bounded retry with backoff may absorb (see
/// [`IoPolicy::BACKOFF`]): interrupted/timed-out/would-block conditions that
/// a healthy disk resolves on its own.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
    )
}

/// True for errors that mean the device is out of space: the store must
/// degrade to in-memory-only operation rather than retry.
pub fn is_disk_full(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::StorageFull | io::ErrorKind::QuotaExceeded
    )
}

/// The injectable filesystem policy: every store/codec I/O operation goes
/// through one of these. Cloning shares the underlying injector (if any), so
/// one seeded decision stream covers a whole shared store tier.
#[derive(Debug, Clone, Default)]
pub struct IoPolicy {
    injector: Option<Arc<FaultInjector>>,
}

impl IoPolicy {
    /// Attempts per retryable operation (1 initial + 2 retries).
    pub const ATTEMPTS: u32 = 3;

    /// Backoff slept before retry *n* (1-based): `BACKOFF * n`.
    pub const BACKOFF: Duration = Duration::from_millis(1);

    /// The transparent policy: plain filesystem calls, no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// A policy carrying a shared fault injector.
    pub fn with_injector(injector: Arc<FaultInjector>) -> Self {
        Self {
            injector: Some(injector),
        }
    }

    /// The policy `RESCACHE_FAULTS` configures: a seeded probabilistic
    /// injector when the variable is set and parses, the transparent policy
    /// otherwise (a malformed value warns on stderr rather than silently
    /// injecting nothing under a typo'd spec — the warning names the error).
    pub fn from_env() -> Self {
        let Ok(value) = std::env::var("RESCACHE_FAULTS") else {
            return Self::none();
        };
        if value.trim().is_empty() {
            return Self::none();
        }
        match FaultSpec::parse(&value) {
            Ok(spec) if spec.is_quiet() => Self::none(),
            Ok(spec) => Self::with_injector(Arc::new(FaultInjector::seeded(spec))),
            Err(e) => {
                eprintln!("rescache: ignoring malformed RESCACHE_FAULTS ({e}); running fault-free");
                Self::none()
            }
        }
    }

    /// The injector behind this policy, if any (tests inspect counters).
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Consults the injector for one operation.
    fn check(&self, op: IoOp) -> io::Result<()> {
        match &self.injector {
            Some(injector) => match injector.decide(op) {
                Some(e) => Err(e),
                None => Ok(()),
            },
            None => Ok(()),
        }
    }

    /// Opens a file for reading ([`IoOp::Open`]).
    pub fn open(&self, path: &Path) -> io::Result<File> {
        self.check(IoOp::Open)?;
        File::open(path)
    }

    /// Creates (truncating) a file for writing ([`IoOp::Open`]).
    pub fn create(&self, path: &Path) -> io::Result<File> {
        self.check(IoOp::Open)?;
        File::create(path)
    }

    /// Creates a file that must not yet exist ([`IoOp::Open`]) — the
    /// advisory-lock acquisition primitive.
    pub fn create_new(&self, path: &Path) -> io::Result<File> {
        self.check(IoOp::Open)?;
        File::options().write(true).create_new(true).open(path)
    }

    /// Renames a file ([`IoOp::Rename`]).
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check(IoOp::Rename)?;
        std::fs::rename(from, to)
    }

    /// Removes a file ([`IoOp::Remove`]).
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check(IoOp::Remove)?;
        std::fs::remove_file(path)
    }

    /// Creates a directory and its parents ([`IoOp::CreateDir`]).
    pub fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.check(IoOp::CreateDir)?;
        std::fs::create_dir_all(path)
    }

    /// Lists a directory ([`IoOp::Open`]).
    pub fn read_dir(&self, path: &Path) -> io::Result<std::fs::ReadDir> {
        self.check(IoOp::Open)?;
        std::fs::read_dir(path)
    }

    /// Wraps a reader so every `read` call is policed ([`IoOp::Read`]).
    pub fn reader<R: Read>(&self, inner: R) -> PolicedRead<R> {
        PolicedRead {
            inner,
            policy: self.clone(),
        }
    }

    /// Wraps a writer so every `write`/`flush` call is policed
    /// ([`IoOp::Write`]).
    pub fn writer<W: Write>(&self, inner: W) -> PolicedWrite<W> {
        PolicedWrite {
            inner,
            policy: self.clone(),
        }
    }

    /// Runs `f` with bounded retry: transient failures (see
    /// [`is_transient`]) are retried up to [`IoPolicy::ATTEMPTS`] total
    /// attempts with linear backoff; anything else (including exhaustion)
    /// returns the last error. `note_retry` is invoked once per retry so
    /// callers can count recoveries.
    pub fn retrying<T>(
        &self,
        mut note_retry: impl FnMut(),
        mut f: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let mut attempt = 1;
        loop {
            match f() {
                Err(e) if is_transient(&e) && attempt < Self::ATTEMPTS => {
                    note_retry();
                    std::thread::sleep(Self::BACKOFF * attempt);
                    attempt += 1;
                }
                other => return other,
            }
        }
    }
}

/// A reader whose every `read` consults the policy's injector first.
#[derive(Debug)]
pub struct PolicedRead<R> {
    inner: R,
    policy: IoPolicy,
}

impl<R: Read> Read for PolicedRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.policy.check(IoOp::Read)?;
        self.inner.read(buf)
    }
}

/// A writer whose every `write`/`flush` consults the policy's injector first.
#[derive(Debug)]
pub struct PolicedWrite<W> {
    inner: W,
    policy: IoPolicy,
}

impl<W: Write> Write for PolicedWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.policy.check(IoOp::Write)?;
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.policy.check(IoOp::Write)?;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_every_knob() {
        let spec =
            FaultSpec::parse("seed=9, open=0.25, read=0.5,write=1,rename=0.125,remove=1.0,full=0.75,create_dir=0.0625")
                .expect("well-formed spec");
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.probability[IoOp::Open.index()], 0.25);
        assert_eq!(spec.probability[IoOp::Read.index()], 0.5);
        assert_eq!(spec.probability[IoOp::Write.index()], 1.0);
        assert_eq!(spec.probability[IoOp::Rename.index()], 0.125);
        assert_eq!(spec.probability[IoOp::Remove.index()], 1.0);
        assert_eq!(spec.probability[IoOp::CreateDir.index()], 0.0625);
        assert_eq!(spec.disk_full, 0.75);
        assert!(!spec.is_quiet());
        assert!(FaultSpec::parse("").expect("empty is quiet").is_quiet());
        assert!(FaultSpec::parse("seed=3").expect("seed only").is_quiet());
    }

    #[test]
    fn spec_rejects_malformed_values() {
        for bad in [
            "read",
            "read=x",
            "read=1.5",
            "read=-0.1",
            "bogus=0.5",
            "seed=-1",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn seeded_injection_is_deterministic_and_rate_plausible() {
        let spec = FaultSpec::parse("seed=42,read=0.25").expect("spec");
        let run = || {
            let injector = FaultInjector::seeded(spec);
            let mut pattern = Vec::new();
            for _ in 0..4_000 {
                pattern.push(injector.decide(IoOp::Read).is_some());
            }
            pattern
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same decision stream");
        let rate = a.iter().filter(|hit| **hit).count() as f64 / a.len() as f64;
        assert!(
            (0.2..0.3).contains(&rate),
            "rate {rate} should be near 0.25"
        );
        // Other operations are untouched by a read-only spec.
        let injector = FaultInjector::seeded(spec);
        for _ in 0..1_000 {
            assert!(injector.decide(IoOp::Write).is_none());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let decisions = |seed: u64| {
            let injector =
                FaultInjector::seeded(FaultSpec::parse(&format!("seed={seed},open=0.5")).unwrap());
            (0..256)
                .map(|_| injector.decide(IoOp::Open).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(decisions(1), decisions(2));
    }

    #[test]
    fn scripted_faults_fire_in_order_on_matching_ops() {
        let injector = FaultInjector::scripted([
            ScriptedFault {
                op: IoOp::Write,
                kind: FaultKind::Transient,
            },
            ScriptedFault {
                op: IoOp::Rename,
                kind: FaultKind::DiskFull,
            },
        ]);
        // A non-matching op passes while the write entry waits.
        assert!(injector.decide(IoOp::Read).is_none());
        let e = injector.decide(IoOp::Write).expect("scripted write fault");
        assert!(is_transient(&e));
        assert!(injector.decide(IoOp::Write).is_none(), "consumed");
        let e = injector
            .decide(IoOp::Rename)
            .expect("scripted rename fault");
        assert!(is_disk_full(&e));
        assert_eq!(injector.injected(), 2);
        assert_eq!(injector.pending_script(), 0);
    }

    #[test]
    fn scripted_panic_panics_inside_the_operation() {
        let injector = Arc::new(FaultInjector::scripted([ScriptedFault {
            op: IoOp::Open,
            kind: FaultKind::Panic,
        }]));
        let policy = IoPolicy::with_injector(Arc::clone(&injector));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = policy.open(Path::new("/nonexistent"));
        }));
        assert!(result.is_err(), "the scripted entry must panic");
        // The entry is consumed: the next open merely fails to find the file.
        let err = policy.open(Path::new("/nonexistent")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn policed_wrappers_inject_mid_stream() {
        let injector = Arc::new(FaultInjector::scripted([
            ScriptedFault {
                op: IoOp::Read,
                kind: FaultKind::Transient,
            },
            ScriptedFault {
                op: IoOp::Write,
                kind: FaultKind::DiskFull,
            },
        ]));
        let policy = IoPolicy::with_injector(injector);
        let mut reader = policy.reader(&b"abcdef"[..]);
        let mut buf = [0u8; 3];
        let e = reader.read(&mut buf).unwrap_err();
        assert!(is_transient(&e));
        assert_eq!(reader.read(&mut buf).expect("second read passes"), 3);

        let mut sink = Vec::new();
        let mut writer = policy.writer(&mut sink);
        let e = writer.write(b"xyz").unwrap_err();
        assert!(is_disk_full(&e));
        writer.write_all(b"xyz").expect("second write passes");
        assert_eq!(sink, b"xyz");
    }

    #[test]
    fn retrying_absorbs_transients_and_gives_up_on_persistent_errors() {
        let policy = IoPolicy::none();
        let mut retries = 0u64;
        // One transient then success: absorbed, one retry noted.
        let mut left = 1;
        let value = policy
            .retrying(
                || retries += 1,
                || {
                    if left > 0 {
                        left -= 1;
                        Err(io::Error::new(io::ErrorKind::TimedOut, "flaky"))
                    } else {
                        Ok(7)
                    }
                },
            )
            .expect("retry succeeds");
        assert_eq!((value, retries), (7, 1));

        // Unbroken transients exhaust the attempt budget.
        retries = 0;
        let err = policy
            .retrying::<()>(
                || retries += 1,
                || Err(io::Error::new(io::ErrorKind::TimedOut, "still flaky")),
            )
            .unwrap_err();
        assert!(is_transient(&err));
        assert_eq!(retries, u64::from(IoPolicy::ATTEMPTS - 1));

        // A persistent error is returned immediately, no retries.
        retries = 0;
        let err = policy
            .retrying::<()>(
                || retries += 1,
                || Err(io::Error::new(io::ErrorKind::StorageFull, "full")),
            )
            .unwrap_err();
        assert!(is_disk_full(&err));
        assert_eq!(retries, 0);
    }

    #[test]
    fn from_env_spec_shapes() {
        // Not testing the env var itself (process-global); the parse +
        // is_quiet path from_env relies on is covered here.
        assert!(FaultSpec::parse("seed=1,read=0")
            .expect("quiet spec")
            .is_quiet());
        let spec = FaultSpec::parse("read=0.001").expect("live spec");
        assert!(!spec.is_quiet());
    }
}
