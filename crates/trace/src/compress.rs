//! Delta compression of record chunks: the payload encoding of the v3 trace
//! container (see [`crate::codec`]).
//!
//! Each chunk compresses independently — the delta bases reset at every
//! chunk boundary — so the store's chunk-granular properties survive
//! compression unchanged: streaming replay decodes one chunk at a time,
//! prefix serving never reads past the chunk that covers the request, a
//! corrupt chunk poisons only itself, and whole-trace loads can decode
//! chunks on parallel workers.
//!
//! The payload is *sectioned* — three planes, not one interleaved record
//! stream:
//!
//! ```text
//! heads   3 bytes per record, fixed stride:
//!         layout 1 byte   pc_len (bits 0-2) | addr_len << 3 (bits 3-5),
//!                         each 0 ..= 5; bits 6-7 reserved zero.
//!                         Non-memory records must declare addr_len 0.
//!         head   2 bytes  u16 LE: kind (3 bits) | dep1 << 3 (6 bits) |
//!                         dep2 << 9 (6 bits); bit 15 reserved zero
//! pcs     every record's PC delta back to back: little-endian zigzag
//!         delta from the previous record's PC (base 0 at each chunk
//!         start), pc_len bytes each; length 0 = delta 0
//! addrs   loads/stores only, back to back: little-endian zigzag delta
//!         from the previous memory access's address (base 0 per chunk),
//!         addr_len bytes each
//! ```
//!
//! The deltas are *length-prefixed plain bytes*, not continuation-bit
//! varints: the layout byte announces both field lengths up front, so the
//! decoder reads the deltas with two table lookups and masked eight-byte
//! loads — no terminator scan, and no data-dependent length branches for
//! the branch predictor to miss. The sectioning is what makes that fast in
//! practice: the head plane is walked at a *fixed* stride, so the field
//! lengths that advance the two delta cursors come from index-addressed
//! loads the CPU can issue arbitrarily far ahead — the serial dependency
//! per record collapses to one add per cursor, where an interleaved layout
//! chains every record's position behind the previous record's layout
//! *load*. The price is one layout byte per record, which the delta coding
//! wins back several times over. PCs walk basic blocks (deltas of a few
//! instruction slots, occasionally a jump) and data addresses are dominated
//! by strided and in-set accesses, so typical records cost 4–6 bytes
//! against the raw encoding's fixed 12. The hard bounds are
//! [`MIN_RECORD_BYTES`] and [`MAX_RECORD_BYTES`]; the container rejects
//! chunk byte lengths outside them before reading the payload.
//!
//! Decoding validates everything — reserved head and layout bits, field
//! lengths, the reconstructed lanes staying inside 32 bits, and exact
//! payload consumption — and reports a typed [`CorruptChunk`], never a
//! panic, preserving the codec's degrade-to-regeneration discipline for
//! corrupt store entries.

use std::fmt;

use crate::ilp::MAX_DISTANCE;
use crate::record::{kind, InstrRecord};

/// Smallest possible encoding of one record: a layout byte and a 2-byte
/// head, with both delta fields empty (a non-memory record repeating the
/// previous PC).
pub const MIN_RECORD_BYTES: usize = 3;

/// Largest possible encoding of one record: layout, head and two maximal
/// 5-byte delta fields (a memory record whose PC and address both jumped by
/// a full 32-bit span).
pub const MAX_RECORD_BYTES: usize = 13;

/// Longest legal delta field: zigzag of a 33-bit signed delta needs 34 bits,
/// which is five bytes.
const MAX_FIELD_BYTES: usize = 5;

/// Why a compressed chunk payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptChunk {
    /// The payload ended inside a record.
    Truncated,
    /// A record's layout byte is impossible: a reserved bit set, a field
    /// length past the 5-byte bound no legal delta needs, or address bytes
    /// declared on a non-memory record.
    BadLayout {
        /// The rejected layout byte.
        layout: u8,
    },
    /// A record head sets the reserved bit or names an unknown kind.
    BadHead {
        /// The rejected head value.
        head: u16,
    },
    /// A delta stepped the PC or address stream outside its 32-bit lane —
    /// the delta base and the stored delta cannot both be honest.
    DeltaOutOfRange,
    /// The payload kept going after the chunk's last record.
    TrailingBytes {
        /// Bytes left over once every promised record was decoded.
        extra: usize,
    },
}

impl fmt::Display for CorruptChunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptChunk::Truncated => write!(f, "payload ends mid-record"),
            CorruptChunk::BadLayout { layout } => {
                write!(f, "invalid record layout byte {layout:#04x}")
            }
            CorruptChunk::BadHead { head } => {
                write!(f, "invalid record head {head:#06x}")
            }
            CorruptChunk::DeltaOutOfRange => {
                write!(f, "delta leaves the 32-bit lane")
            }
            CorruptChunk::TrailingBytes { extra } => {
                write!(f, "{extra} bytes beyond the last record")
            }
        }
    }
}

impl std::error::Error for CorruptChunk {}

/// Why a record cannot be represented in the compressed payload (only
/// hand-constructed records can trigger this; everything the generator
/// produces encodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnencodableRecord {
    /// A dependency distance exceeds [`MAX_DISTANCE`] and cannot fit the
    /// head's 6-bit field.
    DepTooLarge {
        /// The offending distance.
        dep: u8,
    },
    /// A non-memory record carries a non-zero address the payload has no
    /// slot for.
    StrayAddress {
        /// The record's kind tag.
        kind: u8,
    },
}

impl fmt::Display for UnencodableRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnencodableRecord::DepTooLarge { dep } => write!(
                f,
                "dependency distance {dep} exceeds {MAX_DISTANCE} and cannot be compressed"
            ),
            UnencodableRecord::StrayAddress { kind } => write!(
                f,
                "non-memory record (kind {kind}) with a non-zero address cannot be compressed"
            ),
        }
    }
}

impl std::error::Error for UnencodableRecord {}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Bytes needed for the low bits of `zz` (0 for a zero delta).
#[inline]
fn field_len(zz: u64) -> usize {
    (64 - zz.leading_zeros() as usize).div_ceil(8)
}

/// Little-endian accumulation of a short delta field — the checked tail
/// path's replacement for the bulk path's masked eight-byte load.
#[inline]
fn read_le(bytes: &[u8]) -> u64 {
    let mut v = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        v |= u64::from(b) << (8 * i);
    }
    v
}

/// Applies a zigzag delta to a lane base, rejecting results outside 32 bits.
#[inline(always)]
fn apply_delta(prev: u32, delta: u64) -> Result<u32, CorruptChunk> {
    // A legal delta field is at most 40 bits, so the sum stays far inside
    // i64; one unsigned compare covers both underflow (negative wraps huge)
    // and overflow.
    let v = i64::from(prev) + unzigzag(delta);
    if v as u64 > u64::from(u32::MAX) {
        return Err(CorruptChunk::DeltaOutOfRange);
    }
    Ok(v as u32)
}

/// Appends the compressed payload of `records` (one chunk) to `out`.
///
/// # Errors
///
/// Returns [`UnencodableRecord`] for records the payload cannot represent
/// (over-long dependency distance, stray address on a non-memory record);
/// `out` must be discarded on error.
pub fn encode_chunk(records: &[InstrRecord], out: &mut Vec<u8>) -> Result<(), UnencodableRecord> {
    // The head plane appends to `out` directly; the two delta planes are
    // staged and appended after it, since their lengths aren't known until
    // every record has been walked.
    let mut pcs = Vec::new();
    let mut addrs = Vec::new();
    out.reserve(records.len() * MIN_RECORD_BYTES);
    let mut prev_pc = 0u32;
    let mut prev_addr = 0u32;
    for record in records {
        let (tag, dep1, dep2) = (record.kind_tag(), record.dep1(), record.dep2());
        if dep1 > MAX_DISTANCE || dep2 > MAX_DISTANCE {
            return Err(UnencodableRecord::DepTooLarge {
                dep: dep1.max(dep2),
            });
        }
        let is_mem = tag == kind::LOAD || tag == kind::STORE;
        if !is_mem && record.addr_raw() != 0 {
            return Err(UnencodableRecord::StrayAddress { kind: tag });
        }
        let zz_pc = zigzag(i64::from(record.pc_raw()) - i64::from(prev_pc));
        let pc_len = field_len(zz_pc);
        prev_pc = record.pc_raw();
        let (zz_addr, addr_len) = if is_mem {
            let zz = zigzag(i64::from(record.addr_raw()) - i64::from(prev_addr));
            prev_addr = record.addr_raw();
            (zz, field_len(zz))
        } else {
            (0, 0)
        };
        let head = u16::from(tag) | u16::from(dep1) << 3 | u16::from(dep2) << 9;
        out.push((pc_len | addr_len << 3) as u8);
        out.extend_from_slice(&head.to_le_bytes());
        pcs.extend_from_slice(&zz_pc.to_le_bytes()[..pc_len]);
        addrs.extend_from_slice(&zz_addr.to_le_bytes()[..addr_len]);
    }
    out.extend_from_slice(&pcs);
    out.extend_from_slice(&addrs);
    Ok(())
}

/// Decodes exactly `len` records from the compressed payload `bytes`,
/// appending them to `out`.
///
/// The output is pre-sized and written through a slice rather than pushed
/// record by record: per-record `Vec` bookkeeping (length and capacity live
/// wherever the caller's `Vec` header does) measurably perturbed the decode
/// loop, while slice writes keep the hot state in registers.
///
/// # Errors
///
/// Returns a [`CorruptChunk`] if the payload is malformed in any way,
/// including bytes left over after the last record; `out` holds
/// unspecified extra records on error and must be discarded.
pub fn decode_chunk(
    bytes: &[u8],
    len: usize,
    out: &mut Vec<InstrRecord>,
) -> Result<(), CorruptChunk> {
    let start = out.len();
    out.resize(start + len, InstrRecord::zeroed());
    decode_chunk_into(bytes, &mut out[start..])
}

/// [`decode_chunk`] writing into an exactly-sized slice: one decoded record
/// per slot. This is the target the parallel whole-trace load path hands
/// each worker — disjoint sub-slices of the final record vector, one per
/// chunk, with no per-thread staging.
///
/// # Errors
///
/// Exactly as [`decode_chunk`]; `out` holds unspecified records on error.
#[inline(never)]
pub fn decode_chunk_into(bytes: &[u8], out: &mut [InstrRecord]) -> Result<(), CorruptChunk> {
    // Low-bits mask per field length. Indexed by a 3-bit value so the bounds
    // check vanishes; 6 and 7 are unreachable once the layout is validated.
    const MASK: [u64; 8] = [
        0,
        0xff,
        0xffff,
        0x00ff_ffff,
        0xffff_ffff,
        0x00ff_ffff_ffff,
        0,
        0,
    ];

    let heads_end = out.len() * MIN_RECORD_BYTES;
    if bytes.len() < heads_end {
        return Err(CorruptChunk::Truncated);
    }

    // Pass 1 — the head plane: validate every record's layout and head,
    // materialize the kind and dependency lanes, and sum the two delta
    // planes' lengths. After this pass the plane boundaries are exact, so
    // pass 2 runs with no per-record bounds or validity checks at all.
    let mut pc_bytes = 0usize;
    let mut addr_bytes = 0usize;
    for (slot, head3) in out.iter_mut().zip(bytes[..heads_end].chunks_exact(3)) {
        let layout = head3[0];
        let head = u16::from_le_bytes([head3[1], head3[2]]);
        let tag = (head & 0x7) as u8;
        let pc_len = (layout & 0x7) as usize;
        let addr_len = (layout >> 3 & 0x7) as usize;
        // One fused validity predicate, evaluated with non-short-circuit
        // `&`: every clause is a flag computation, so the record cost is a
        // handful of ALU ops and a single never-taken branch — a chain of
        // `||` clauses compiles to a data-dependent branch per clause, and
        // the memory-vs-not split among them is inherently unpredictable.
        let valid = (head & 0x8000 == 0)
            & (tag <= kind::BRANCH_TAKEN)
            & (layout & 0xc0 == 0)
            & (pc_len <= MAX_FIELD_BYTES)
            & (addr_len <= MAX_FIELD_BYTES)
            & (is_mem_tag(tag) | (addr_len == 0));
        if !valid {
            return Err(classify_invalid(layout, head));
        }
        pc_bytes += pc_len;
        addr_bytes += addr_len;
        let dep1 = ((head >> 3) & 0x3f) as u8;
        let dep2 = ((head >> 9) & 0x3f) as u8;
        *slot = InstrRecord::from_lanes_validated(0, 0, tag, dep1, dep2);
    }
    let expected = heads_end + pc_bytes + addr_bytes;
    if bytes.len() < expected {
        return Err(CorruptChunk::Truncated);
    }
    if bytes.len() > expected {
        return Err(CorruptChunk::TrailingBytes {
            extra: bytes.len() - expected,
        });
    }

    // Pass 2 — the delta planes, filling the PC/address lanes in place.
    // This loop is why the payload is sectioned: the field lengths that
    // advance the two cursors come from the head plane at a *fixed* stride,
    // so the loads are index-addressed and issue arbitrarily far ahead —
    // the serial dependency per record is one add per cursor, not a chain
    // through the previous record's layout load. Both cursors stay in
    // bounds by construction (their sums were just checked), leaving only
    // the masked loads' distance to the payload end and the 32-bit lane
    // range to check.
    let mut pos_pc = heads_end;
    let mut pos_addr = heads_end + pc_bytes;
    let mut prev_pc = 0u32;
    let mut prev_addr = 0u32;
    for (slot, head3) in out.iter_mut().zip(bytes[..heads_end].chunks_exact(3)) {
        let layout = head3[0];
        let tag = head3[1] & 0x7;
        let pc_len = (layout & 0x7) as usize;
        let addr_len = (layout >> 3 & 0x7) as usize;
        // Bulk masked eight-byte loads whenever the payload end is far
        // enough away (`pos_pc <= pos_addr` always — the PC plane precedes
        // the address plane); the last few records take the short-read
        // path. No terminator scan, no length branches.
        let (zz_pc, zz_addr);
        if bytes.len() - pos_addr >= 8 {
            zz_pc = load_u64_le(bytes, pos_pc) & MASK[pc_len];
            zz_addr = load_u64_le(bytes, pos_addr) & MASK[addr_len];
        } else {
            zz_pc = read_le(&bytes[pos_pc..pos_pc + pc_len]);
            zz_addr = read_le(&bytes[pos_addr..pos_addr + addr_len]);
        }
        pos_pc += pc_len;
        pos_addr += addr_len;
        let pc = apply_delta(prev_pc, zz_pc)?;
        // A non-memory record declared addr_len 0 in pass 1, so its delta
        // is 0 and this can neither fail nor move the address stream.
        let addr = apply_delta(prev_addr, zz_addr)?;
        prev_pc = pc;
        let is_mem = is_mem_tag(tag);
        prev_addr = if is_mem { addr } else { prev_addr };
        slot.set_pc_lane(pc);
        slot.set_addr_lane(if is_mem { addr } else { 0 });
    }
    Ok(())
}

/// Branch-free memory-kind test: `LOAD` (2) and `STORE` (3) are the only
/// tags that share every bit above the lowest — written arithmetically so
/// the decode loops get a flag computation instead of a short-circuit
/// branch on an inherently unpredictable record property.
#[inline(always)]
fn is_mem_tag(tag: u8) -> bool {
    (tag | 1) == kind::STORE
}

/// Names the reason a record failed pass 1's fused validity predicate.
/// Cold by construction — only reached off the never-taken branch.
#[cold]
fn classify_invalid(layout: u8, head: u16) -> CorruptChunk {
    let tag = (head & 0x7) as u8;
    if head & 0x8000 != 0 || tag > kind::BRANCH_TAKEN {
        return CorruptChunk::BadHead { head };
    }
    CorruptChunk::BadLayout { layout }
}

/// Unaligned little-endian eight-byte load — the bulk path's single-load
/// replacement for a byte-accumulation loop. The caller guarantees
/// `pos + 8 <= bytes.len()`.
#[inline(always)]
fn load_u64_le(bytes: &[u8], pos: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&bytes[pos..pos + 8]);
    u64::from_le_bytes(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::record::Op;
    use crate::spec;

    fn round_trip(records: &[InstrRecord]) -> Vec<InstrRecord> {
        let mut payload = Vec::new();
        encode_chunk(records, &mut payload).expect("encodable");
        let mut out = Vec::new();
        decode_chunk(&payload, records.len(), &mut out).expect("decodable");
        out
    }

    /// A hand-assembled single record: layout, head, then raw delta bytes.
    fn raw_record(layout: u8, head: u16, deltas: &[u8]) -> Vec<u8> {
        let mut payload = vec![layout];
        payload.extend_from_slice(&head.to_le_bytes());
        payload.extend_from_slice(deltas);
        payload
    }

    #[test]
    fn generated_chunks_round_trip_and_shrink() {
        let trace = TraceGenerator::new(spec::gcc(), 3).generate(20_000);
        let mut total = 0usize;
        for chunk in trace.records().chunks(crate::source::CHUNK_RECORDS) {
            assert_eq!(round_trip(chunk), chunk);
            let mut payload = Vec::new();
            encode_chunk(chunk, &mut payload).expect("encodable");
            assert!(payload.len() >= MIN_RECORD_BYTES * chunk.len());
            assert!(payload.len() <= MAX_RECORD_BYTES * chunk.len());
            total += payload.len();
        }
        assert!(
            total * 2 <= trace.len() * 12,
            "compression must at least halve a real trace: {total} bytes for {} records",
            trace.len()
        );
    }

    #[test]
    fn extreme_lane_values_round_trip() {
        let records = [
            InstrRecord::with_deps(u32::MAX.into(), Op::Load(0), 63, 63),
            InstrRecord::new(0, Op::Store(u32::MAX.into())),
            InstrRecord::new(u32::MAX.into(), Op::Int),
            InstrRecord::new(0, Op::Branch { taken: true }),
            InstrRecord::new(1, Op::Branch { taken: false }),
            InstrRecord::with_deps(2, Op::Fp, 1, 0),
            // Zero-length fields: a repeated PC and a repeated address.
            InstrRecord::new(2, Op::Load(7)),
            InstrRecord::new(2, Op::Load(7)),
        ];
        assert_eq!(round_trip(&records), records);
    }

    #[test]
    fn empty_chunk_is_empty_payload() {
        let mut payload = Vec::new();
        encode_chunk(&[], &mut payload).expect("empty");
        assert!(payload.is_empty());
        let mut out = Vec::new();
        decode_chunk(&[], 0, &mut out).expect("empty");
        assert!(out.is_empty());
    }

    #[test]
    fn unencodable_records_are_typed_errors() {
        let mut payload = Vec::new();
        let deep = InstrRecord::with_deps(0x400, Op::Int, 64, 0);
        assert_eq!(
            encode_chunk(&[deep], &mut payload),
            Err(UnencodableRecord::DepTooLarge { dep: 64 })
        );
        // A non-memory record with an address only arises from a foreign
        // raw file; the encoder refuses rather than silently dropping it.
        let stray = InstrRecord::decode(&{
            let mut bytes = InstrRecord::new(0x400, Op::Int).encode();
            bytes[4] = 1; // plant a stray address lane byte
            bytes
        })
        .expect("raw decode does not police addresses");
        assert_eq!(
            encode_chunk(&[stray], &mut payload),
            Err(UnencodableRecord::StrayAddress { kind: kind::INT })
        );
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        let records = [
            InstrRecord::new(0x400, Op::Load(0x9000)),
            InstrRecord::new(0x404, Op::Int),
        ];
        let mut payload = Vec::new();
        encode_chunk(&records, &mut payload).expect("encodable");
        // Every proper prefix fails typed — mid-head, mid-delta, missing
        // final record alike — and never panics.
        for cut in 0..payload.len() {
            let mut out = Vec::new();
            let err = decode_chunk(&payload[..cut], records.len(), &mut out).unwrap_err();
            assert!(matches!(err, CorruptChunk::Truncated), "cut {cut}: {err:?}");
        }
    }

    #[test]
    fn trailing_bytes_are_a_typed_error() {
        let records = [InstrRecord::new(0x400, Op::Int)];
        let mut payload = Vec::new();
        encode_chunk(&records, &mut payload).expect("encodable");
        payload.push(0);
        let mut out = Vec::new();
        assert_eq!(
            decode_chunk(&payload, records.len(), &mut out),
            Err(CorruptChunk::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn bad_head_bits_are_a_typed_error() {
        for head in [0x8000u16, 0x0006, 0x0007, 0x8005] {
            let mut out = Vec::new();
            assert_eq!(
                decode_chunk(&raw_record(0, head, &[]), 1, &mut out),
                Err(CorruptChunk::BadHead { head }),
                "{head:#06x}"
            );
        }
    }

    #[test]
    fn bad_layout_bits_are_a_typed_error() {
        for (layout, head, deltas) in [
            // A reserved layout bit.
            (0x40u8, 0u16, &[][..]),
            // A 6-byte PC field no legal delta needs.
            (0x06, 0, &[0, 0, 0, 0, 0, 0][..]),
            // A 7-byte address field on a load.
            (
                0x38 | 0x01,
                u16::from(kind::LOAD),
                &[1, 0, 0, 0, 0, 0, 0, 1][..],
            ),
            // Address bytes declared on a non-memory record.
            (0x08, 0, &[1][..]),
        ] {
            let mut out = Vec::new();
            assert_eq!(
                decode_chunk(&raw_record(layout, head, deltas), 1, &mut out),
                Err(CorruptChunk::BadLayout { layout }),
                "layout {layout:#04x}"
            );
        }
    }

    #[test]
    fn out_of_range_delta_is_a_typed_error() {
        // A negative PC delta from the zero base: the "bad delta base" case
        // a corrupted or resequenced chunk produces.
        let mut out = Vec::new();
        assert_eq!(
            decode_chunk(&raw_record(0x01, 0, &[zigzag(-1) as u8]), 1, &mut out),
            Err(CorruptChunk::DeltaOutOfRange)
        );
        // A delta overshooting u32::MAX likewise.
        let zz = zigzag(i64::from(u32::MAX) + 1).to_le_bytes();
        let mut out = Vec::new();
        assert_eq!(
            decode_chunk(&raw_record(0x05, 0, &zz[..5]), 1, &mut out),
            Err(CorruptChunk::DeltaOutOfRange)
        );
    }

    #[test]
    fn non_minimal_field_lengths_still_decode() {
        // The encoder always emits minimal fields, but the decoder accepts
        // padded ones — the layout byte, not minimality, is the contract.
        let payload = raw_record(0x02, 0, &[0x08, 0x00]); // pc delta +4 in 2 bytes
        let mut out = Vec::new();
        decode_chunk(&payload, 1, &mut out).expect("padded field");
        assert_eq!(out, [InstrRecord::new(4, Op::Int)]);
    }

    #[test]
    fn field_len_matches_byte_count() {
        assert_eq!(field_len(0), 0);
        assert_eq!(field_len(1), 1);
        assert_eq!(field_len(0xff), 1);
        assert_eq!(field_len(0x100), 2);
        assert_eq!(field_len(0xffff_ffff), 4);
        assert_eq!(field_len(zigzag(i64::from(u32::MAX))), 5);
        assert_eq!(field_len(zigzag(-i64::from(u32::MAX))), 5);
    }

    #[test]
    fn zigzag_round_trips_the_extremes() {
        for v in [
            0i64,
            1,
            -1,
            i64::from(u32::MAX),
            -i64::from(u32::MAX),
            i64::from(i32::MAX),
            i64::from(i32::MIN),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
    }
}
