//! Instruction-level-parallelism behaviour: register dependency distances.
//!
//! The out-of-order engine can only hide d-cache miss latency if independent
//! work exists in its window. Dependency distances — how far back the
//! producers of each instruction sit in the dynamic stream — bound that
//! parallelism, so they are the single knob this crate exposes for ILP.

use crate::format::TraceFormat;
use crate::rng::{geometric_is_constant, Prng};

/// Distances are capped to the record's 6-bit dependency field.
pub const MAX_DISTANCE: u8 = 63;

/// Dependency-distance behaviour of an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlpBehavior {
    /// Mean distance (in dynamic instructions) to the first producer.
    pub mean_distance: f64,
    /// Probability an instruction has a second source operand.
    pub second_source_prob: f64,
    /// Probability an instruction has no register dependency at all.
    pub independent_prob: f64,
}

impl IlpBehavior {
    /// Creates an ILP behaviour description.
    ///
    /// # Panics
    ///
    /// Panics if `mean_distance < 1`, or any probability is outside `[0, 1]`.
    pub fn new(mean_distance: f64, second_source_prob: f64, independent_prob: f64) -> Self {
        assert!(mean_distance >= 1.0, "mean_distance must be at least 1");
        assert!(
            (0.0..=1.0).contains(&second_source_prob),
            "second_source_prob must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&independent_prob),
            "independent_prob must be a probability"
        );
        Self {
            mean_distance,
            second_source_prob,
            independent_prob,
        }
    }

    /// Serial, pointer-chasing style code with long dependency chains.
    pub fn serial() -> Self {
        Self::new(2.0, 0.4, 0.10)
    }

    /// Loop-parallel numeric code with plenty of independent work.
    pub fn parallel() -> Self {
        Self::new(10.0, 0.5, 0.35)
    }

    /// Moderate ILP, typical of integer codes.
    pub fn moderate() -> Self {
        Self::new(5.0, 0.45, 0.20)
    }

    /// Samples the `(dep1, dep2)` distances for one instruction with the v1
    /// (`ln`-based) sampler — bit-identical to the uncached
    /// [`Prng::geometric`] path, as the sampler tests pin.
    pub fn sample(&self, rng: &mut Prng) -> (u8, u8) {
        self.sampler(TraceFormat::V1).sample(rng)
    }

    /// Returns a sampler for the given trace format with the distance
    /// distribution's constants precomputed — the form the trace generator
    /// holds across a whole trace (see [`DistanceSampler`]).
    pub fn sampler(&self, format: TraceFormat) -> DistanceSampler {
        DistanceSampler::new(*self, format)
    }
}

/// How one geometric distance draw is performed — the part of the sampler
/// the [`TraceFormat`] version selects.
///
/// The table variant is deliberately stored inline (not boxed) despite its
/// ~760-byte size: exactly one sampler exists per trace stream, the table
/// is read on every record of the generation hot path (an extra pointer
/// chase is measurable there), and inline storage keeps the sampler `Copy`.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq)]
enum DistanceDraw {
    /// `mean_distance <= 1` (the shared [`geometric_is_constant`] rule):
    /// the draw is the constant 1 and consumes no randomness, identically
    /// in every format.
    Constant,
    /// v1: inverse transform via `ln(u) / ln(1 - p)`, with the constant
    /// denominator precomputed. One `ln`, one division and one `floor` per
    /// draw.
    Ln {
        /// `ln(1 - 1/mean_distance)`.
        ln_one_minus_p: f64,
    },
    /// v2: precomputed fixed-point inverse CDF of the capped geometric.
    /// One 64-bit draw, one guide-table load and a short compare chain per
    /// draw — no transcendental math, no `f64` at all.
    Table(DistanceTable),
}

/// The precomputed inverse CDF of a capped geometric distribution, in
/// 64-bit fixed point (a probability `c` is stored as `c * 2^64`, the
/// space uniform [`Prng::next_u64`] draws live in).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceTable {
    /// `cdf[i] ≈ P(distance <= i + 1) * 2^64` for `i` in `0..63`; the last
    /// entry is pinned to `u64::MAX` (the cap absorbs all remaining mass).
    /// Non-decreasing by construction.
    cdf: [u64; MAX_DISTANCE as usize],
    /// `guide[b]` = the distance of the smallest 64-bit value with high
    /// byte `b`: the compare chain starts here instead of at 1, so a draw
    /// resolves with ~one comparison instead of walking the whole CDF.
    guide: [u8; 256],
}

impl DistanceTable {
    /// Builds the table for a geometric distribution with the given mean
    /// (`> 1`), capped at [`MAX_DISTANCE`].
    fn new(mean: f64) -> Self {
        debug_assert!(!geometric_is_constant(mean));
        let q = 1.0 - 1.0 / mean;
        let mut cdf = [u64::MAX; MAX_DISTANCE as usize];
        let mut q_pow = 1.0f64;
        // Construction may use any math it likes — it runs once per trace,
        // not once per record. `as u64` saturates, so a CDF that rounds to
        // (or beyond) 1.0 pins at u64::MAX and stays monotone.
        for entry in cdf.iter_mut().take(MAX_DISTANCE as usize - 1) {
            q_pow *= q;
            *entry = ((1.0 - q_pow) * 18_446_744_073_709_551_616.0) as u64;
        }
        let mut guide = [0u8; 256];
        for (byte, slot) in guide.iter_mut().enumerate() {
            *slot = Self::distance_slow(&cdf, (byte as u64) << 56);
        }
        Self { cdf, guide }
    }

    /// Reference inverse-CDF evaluation: the smallest distance whose CDF
    /// entry exceeds `r` (the guide table is built from, and verified
    /// against, this definition).
    fn distance_slow(cdf: &[u64; MAX_DISTANCE as usize], r: u64) -> u8 {
        1 + cdf[..MAX_DISTANCE as usize - 1]
            .iter()
            .filter(|c| **c <= r)
            .count() as u8
    }

    /// Maps one uniform 64-bit draw to a distance in `1..=`[`MAX_DISTANCE`].
    #[inline]
    fn distance(&self, r: u64) -> u8 {
        let mut d = self.guide[(r >> 56) as usize];
        // The guide entry is the distance of the slice's smallest value, so
        // this walks at most the CDF entries inside one 1/256 probability
        // slice — on average well under one iteration.
        while d < MAX_DISTANCE && self.cdf[d as usize - 1] <= r {
            d += 1;
        }
        d
    }

    /// The fixed-point CDF entries (`P(distance <= i + 1) * 2^64`), exposed
    /// for the distribution tests' exact monotonicity checks.
    pub fn cdf(&self) -> &[u64; MAX_DISTANCE as usize] {
        &self.cdf
    }

    /// The guide-table entries, exposed for the distribution tests.
    pub fn guide(&self) -> &[u8; 256] {
        &self.guide
    }
}

/// An [`IlpBehavior`] with its sampling constants precomputed for one
/// [`TraceFormat`].
///
/// Sampling dependency distances is the only transcendental math on the
/// trace-generation hot path. The v1 sampler hoists the geometric's constant
/// `ln(1 - 1/mean)` out of the loop (values bit-identical to
/// [`IlpBehavior::sample`]); the v2 sampler removes the per-record `ln`
/// entirely with a fixed-point inverse-CDF table ([`DistanceTable`]) and
/// replaces the `f64` probability comparisons with integer thresholds — a
/// different (but equally geometric) bit stream, which is why selecting it
/// is a trace-format version bump rather than an optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceSampler {
    behavior: IlpBehavior,
    format: TraceFormat,
    draw: DistanceDraw,
    /// v2 only: `independent_prob * 2^64` (v1 compares `f64`s).
    independent_bits: u64,
    /// v2 only: `second_source_prob * 2^64`.
    second_source_bits: u64,
}

/// A probability as a 64-bit fixed-point threshold: `next_u64() < bits`
/// succeeds with probability `p` (up to the 2^-64 quantum). Shared with the
/// v3 instruction-mix thresholds ([`crate::InstructionMix::thresholds`]).
pub(crate) fn probability_bits(p: f64) -> u64 {
    (p.clamp(0.0, 1.0) * 18_446_744_073_709_551_616.0) as u64
}

impl DistanceSampler {
    /// Precomputes the sampling constants of `behavior` for `format`.
    pub fn new(behavior: IlpBehavior, format: TraceFormat) -> Self {
        let draw = if geometric_is_constant(behavior.mean_distance) {
            DistanceDraw::Constant
        } else {
            match format {
                TraceFormat::V1 => DistanceDraw::Ln {
                    ln_one_minus_p: (1.0 - 1.0 / behavior.mean_distance).ln(),
                },
                // v3 keeps v2's dependency bits unchanged: the formats differ
                // in the instruction-mix draw (and the on-disk container),
                // not in the distance sampler.
                TraceFormat::V2 | TraceFormat::V3 => {
                    DistanceDraw::Table(DistanceTable::new(behavior.mean_distance))
                }
            }
        };
        Self {
            behavior,
            format,
            draw,
            independent_bits: probability_bits(behavior.independent_prob),
            second_source_bits: probability_bits(behavior.second_source_prob),
        }
    }

    /// The format this sampler draws for.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// The v2 inverse-CDF table, when this sampler uses one (`None` for v1
    /// samplers and for the degenerate constant-distance case).
    pub fn table(&self) -> Option<&DistanceTable> {
        match &self.draw {
            DistanceDraw::Table(table) => Some(table),
            _ => None,
        }
    }

    /// Samples the `(dep1, dep2)` distances for one instruction.
    #[inline]
    pub fn sample(&self, rng: &mut Prng) -> (u8, u8) {
        if self.chance(rng, self.behavior.independent_prob, self.independent_bits) {
            return (0, 0);
        }
        let d1 = self.draw(rng);
        let d2 = if self.chance(
            rng,
            self.behavior.second_source_prob,
            self.second_source_bits,
        ) {
            self.draw(rng)
        } else {
            0
        };
        (d1, d2)
    }

    /// One Bernoulli draw in this sampler's format: v1 compares `f64`s
    /// (bit-compatible with [`Prng::chance`]), v2/v3 compare the raw 64-bit
    /// draw against a fixed-point threshold. Both consume exactly one
    /// [`Prng::next_u64`].
    #[inline]
    fn chance(&self, rng: &mut Prng, p: f64, bits: u64) -> bool {
        match self.format {
            TraceFormat::V1 => rng.chance(p),
            TraceFormat::V2 | TraceFormat::V3 => rng.next_u64() < bits,
        }
    }

    /// One geometric distance draw, capped to the record's 6-bit field.
    #[inline]
    pub fn draw(&self, rng: &mut Prng) -> u8 {
        match &self.draw {
            // The shared `geometric_is_constant` rule: constant 1, no
            // randomness consumed (matching `Prng::geometric`).
            DistanceDraw::Constant => 1,
            DistanceDraw::Ln { ln_one_minus_p } => {
                rng.geometric_with_ln(*ln_one_minus_p)
                    .min(u64::from(MAX_DISTANCE)) as u8
            }
            DistanceDraw::Table(table) => table.distance(rng.next_u64()),
        }
    }
}

impl Default for IlpBehavior {
    fn default() -> Self {
        Self::moderate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_respects_bounds_in_both_formats() {
        let b = IlpBehavior::moderate();
        for format in TraceFormat::ALL {
            let sampler = b.sampler(format);
            let mut rng = Prng::new(1);
            for _ in 0..10_000 {
                let (d1, d2) = sampler.sample(&mut rng);
                assert!(d1 <= MAX_DISTANCE);
                assert!(d2 <= MAX_DISTANCE);
            }
        }
    }

    #[test]
    fn serial_has_shorter_distances_than_parallel() {
        for format in TraceFormat::ALL {
            let mut rng = Prng::new(2);
            let mean = |b: IlpBehavior, rng: &mut Prng| {
                let sampler = b.sampler(format);
                let mut sum = 0u64;
                let mut n = 0u64;
                for _ in 0..20_000 {
                    let (d1, _) = sampler.sample(rng);
                    if d1 > 0 {
                        sum += u64::from(d1);
                        n += 1;
                    }
                }
                sum as f64 / n as f64
            };
            let serial = mean(IlpBehavior::serial(), &mut rng);
            let parallel = mean(IlpBehavior::parallel(), &mut rng);
            assert!(
                serial < parallel,
                "{format}: serial {serial} !< parallel {parallel}"
            );
        }
    }

    #[test]
    fn independent_probability_observed() {
        let b = IlpBehavior::new(4.0, 0.5, 0.5);
        for format in TraceFormat::ALL {
            let sampler = b.sampler(format);
            let mut rng = Prng::new(3);
            let n = 20_000;
            let independent = (0..n)
                .filter(|_| sampler.sample(&mut rng) == (0, 0))
                .count();
            let frac = independent as f64 / n as f64;
            assert!((0.45..=0.55).contains(&frac), "{format}: {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "mean_distance")]
    fn invalid_mean_panics() {
        let _ = IlpBehavior::new(0.5, 0.5, 0.5);
    }

    #[test]
    fn v1_sampler_matches_direct_sampling_bit_for_bit() {
        for behavior in [
            IlpBehavior::serial(),
            IlpBehavior::parallel(),
            IlpBehavior::moderate(),
            IlpBehavior::new(1.0, 0.5, 0.1), // degenerate constant-distance case
        ] {
            let sampler = behavior.sampler(TraceFormat::V1);
            let mut a = Prng::new(41);
            let mut b = Prng::new(41);
            for i in 0..20_000 {
                let direct = {
                    // Re-derive through the uncached Prng::geometric path.
                    if a.chance(behavior.independent_prob) {
                        (0, 0)
                    } else {
                        let d1 = a.geometric(behavior.mean_distance).min(63) as u8;
                        let d2 = if a.chance(behavior.second_source_prob) {
                            a.geometric(behavior.mean_distance).min(63) as u8
                        } else {
                            0
                        };
                        (d1, d2)
                    }
                };
                assert_eq!(sampler.sample(&mut b), direct, "draw {i}");
            }
            // And the two RNGs consumed identical amounts of randomness.
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn v3_sampler_is_bit_identical_to_v2() {
        // v3 changes the instruction-mix draw and the on-disk container,
        // not the dependency sampler: same table, same thresholds, same
        // randomness consumption.
        for behavior in [
            IlpBehavior::serial(),
            IlpBehavior::parallel(),
            IlpBehavior::moderate(),
            IlpBehavior::new(1.0, 0.5, 0.1),
        ] {
            let v2 = behavior.sampler(TraceFormat::V2);
            let v3 = behavior.sampler(TraceFormat::V3);
            let mut a = Prng::new(33);
            let mut b = Prng::new(33);
            for i in 0..20_000 {
                assert_eq!(v2.sample(&mut a), v3.sample(&mut b), "draw {i}");
            }
            assert_eq!(a.next_u64(), b.next_u64(), "consumption differs");
        }
    }

    #[test]
    fn table_sampler_has_no_table_when_degenerate_or_v1() {
        assert!(IlpBehavior::moderate()
            .sampler(TraceFormat::V1)
            .table()
            .is_none());
        assert!(IlpBehavior::new(1.0, 0.5, 0.1)
            .sampler(TraceFormat::V2)
            .table()
            .is_none());
        assert!(IlpBehavior::moderate()
            .sampler(TraceFormat::V2)
            .table()
            .is_some());
    }

    #[test]
    fn degenerate_distance_consumes_no_randomness_in_both_formats() {
        // The shared `geometric_is_constant` rule, verified through the
        // sampler's public draw for both formats.
        for format in TraceFormat::ALL {
            let sampler = IlpBehavior::new(1.0, 0.5, 0.1).sampler(format);
            let mut rng = Prng::new(9);
            let before = rng.clone();
            assert_eq!(sampler.draw(&mut rng), 1, "{format}");
            assert_eq!(rng, before, "{format}: degenerate draw touched the RNG");
        }
    }

    #[test]
    fn guide_table_matches_the_reference_inverse_cdf() {
        for mean in [1.5, 2.0, 5.0, 10.0, 16.0, 100.0] {
            let table = DistanceTable::new(mean);
            for byte in 0..=255u64 {
                let r = byte << 56;
                assert_eq!(
                    table.guide()[byte as usize],
                    DistanceTable::distance_slow(table.cdf(), r),
                    "mean {mean}, byte {byte}"
                );
            }
            // Spot-check the fast path against the reference across the
            // whole range, including both extremes.
            let mut rng = Prng::new(7);
            for r in (0..5_000)
                .map(|_| rng.next_u64())
                .chain([0, u64::MAX, 1 << 56, (1 << 56) - 1])
            {
                assert_eq!(
                    table.distance(r),
                    DistanceTable::distance_slow(table.cdf(), r),
                    "mean {mean}, r {r:#x}"
                );
            }
        }
    }
}
