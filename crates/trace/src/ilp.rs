//! Instruction-level-parallelism behaviour: register dependency distances.
//!
//! The out-of-order engine can only hide d-cache miss latency if independent
//! work exists in its window. Dependency distances — how far back the
//! producers of each instruction sit in the dynamic stream — bound that
//! parallelism, so they are the single knob this crate exposes for ILP.

use crate::rng::Prng;

/// Dependency-distance behaviour of an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlpBehavior {
    /// Mean distance (in dynamic instructions) to the first producer.
    pub mean_distance: f64,
    /// Probability an instruction has a second source operand.
    pub second_source_prob: f64,
    /// Probability an instruction has no register dependency at all.
    pub independent_prob: f64,
}

impl IlpBehavior {
    /// Creates an ILP behaviour description.
    ///
    /// # Panics
    ///
    /// Panics if `mean_distance < 1`, or any probability is outside `[0, 1]`.
    pub fn new(mean_distance: f64, second_source_prob: f64, independent_prob: f64) -> Self {
        assert!(mean_distance >= 1.0, "mean_distance must be at least 1");
        assert!(
            (0.0..=1.0).contains(&second_source_prob),
            "second_source_prob must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&independent_prob),
            "independent_prob must be a probability"
        );
        Self {
            mean_distance,
            second_source_prob,
            independent_prob,
        }
    }

    /// Serial, pointer-chasing style code with long dependency chains.
    pub fn serial() -> Self {
        Self::new(2.0, 0.4, 0.10)
    }

    /// Loop-parallel numeric code with plenty of independent work.
    pub fn parallel() -> Self {
        Self::new(10.0, 0.5, 0.35)
    }

    /// Moderate ILP, typical of integer codes.
    pub fn moderate() -> Self {
        Self::new(5.0, 0.45, 0.20)
    }

    /// Samples the `(dep1, dep2)` distances for one instruction.
    pub fn sample(&self, rng: &mut Prng) -> (u8, u8) {
        if rng.chance(self.independent_prob) {
            return (0, 0);
        }
        let d1 = rng.geometric(self.mean_distance).min(63) as u8;
        let d2 = if rng.chance(self.second_source_prob) {
            rng.geometric(self.mean_distance).min(63) as u8
        } else {
            0
        };
        (d1, d2)
    }
}

impl Default for IlpBehavior {
    fn default() -> Self {
        Self::moderate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_respects_bounds() {
        let b = IlpBehavior::moderate();
        let mut rng = Prng::new(1);
        for _ in 0..10_000 {
            let (d1, d2) = b.sample(&mut rng);
            assert!(d1 <= 63);
            assert!(d2 <= 63);
        }
    }

    #[test]
    fn serial_has_shorter_distances_than_parallel() {
        let mut rng = Prng::new(2);
        let mean = |b: IlpBehavior, rng: &mut Prng| {
            let mut sum = 0u64;
            let mut n = 0u64;
            for _ in 0..20_000 {
                let (d1, _) = b.sample(rng);
                if d1 > 0 {
                    sum += u64::from(d1);
                    n += 1;
                }
            }
            sum as f64 / n as f64
        };
        let serial = mean(IlpBehavior::serial(), &mut rng);
        let parallel = mean(IlpBehavior::parallel(), &mut rng);
        assert!(serial < parallel, "serial {serial} !< parallel {parallel}");
    }

    #[test]
    fn independent_probability_observed() {
        let b = IlpBehavior::new(4.0, 0.5, 0.5);
        let mut rng = Prng::new(3);
        let n = 20_000;
        let independent = (0..n).filter(|_| b.sample(&mut rng) == (0, 0)).count();
        let frac = independent as f64 / n as f64;
        assert!((0.45..=0.55).contains(&frac));
    }

    #[test]
    #[should_panic(expected = "mean_distance")]
    fn invalid_mean_panics() {
        let _ = IlpBehavior::new(0.5, 0.5, 0.5);
    }
}
