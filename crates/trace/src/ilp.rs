//! Instruction-level-parallelism behaviour: register dependency distances.
//!
//! The out-of-order engine can only hide d-cache miss latency if independent
//! work exists in its window. Dependency distances — how far back the
//! producers of each instruction sit in the dynamic stream — bound that
//! parallelism, so they are the single knob this crate exposes for ILP.

use crate::rng::Prng;

/// Dependency-distance behaviour of an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlpBehavior {
    /// Mean distance (in dynamic instructions) to the first producer.
    pub mean_distance: f64,
    /// Probability an instruction has a second source operand.
    pub second_source_prob: f64,
    /// Probability an instruction has no register dependency at all.
    pub independent_prob: f64,
}

impl IlpBehavior {
    /// Creates an ILP behaviour description.
    ///
    /// # Panics
    ///
    /// Panics if `mean_distance < 1`, or any probability is outside `[0, 1]`.
    pub fn new(mean_distance: f64, second_source_prob: f64, independent_prob: f64) -> Self {
        assert!(mean_distance >= 1.0, "mean_distance must be at least 1");
        assert!(
            (0.0..=1.0).contains(&second_source_prob),
            "second_source_prob must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&independent_prob),
            "independent_prob must be a probability"
        );
        Self {
            mean_distance,
            second_source_prob,
            independent_prob,
        }
    }

    /// Serial, pointer-chasing style code with long dependency chains.
    pub fn serial() -> Self {
        Self::new(2.0, 0.4, 0.10)
    }

    /// Loop-parallel numeric code with plenty of independent work.
    pub fn parallel() -> Self {
        Self::new(10.0, 0.5, 0.35)
    }

    /// Moderate ILP, typical of integer codes.
    pub fn moderate() -> Self {
        Self::new(5.0, 0.45, 0.20)
    }

    /// Samples the `(dep1, dep2)` distances for one instruction.
    pub fn sample(&self, rng: &mut Prng) -> (u8, u8) {
        self.sampler().sample(rng)
    }

    /// Returns a sampler with the distance distribution's constants
    /// precomputed — the form the trace generator holds across a whole
    /// trace (see [`DistanceSampler`]).
    pub fn sampler(&self) -> DistanceSampler {
        DistanceSampler::new(*self)
    }
}

/// An [`IlpBehavior`] with the geometric distribution's constant
/// `ln(1 - 1/mean)` precomputed.
///
/// Sampling dependency distances is the only transcendental math on the
/// trace-generation hot path (one or two `ln` calls per instruction);
/// hoisting the constant denominator out of the loop removes half of them.
/// The sampled values are bit-identical to [`IlpBehavior::sample`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceSampler {
    behavior: IlpBehavior,
    /// `ln(1 - 1/mean_distance)`; meaningless (and unused) when
    /// `mean_distance <= 1`, where the geometric draw is constant 1.
    ln_one_minus_p: f64,
    /// Whether `mean_distance <= 1` (the degenerate constant-1 case).
    degenerate: bool,
}

impl DistanceSampler {
    /// Precomputes the sampling constants of `behavior`.
    pub fn new(behavior: IlpBehavior) -> Self {
        let degenerate = behavior.mean_distance <= 1.0;
        let ln_one_minus_p = if degenerate {
            0.0
        } else {
            (1.0 - 1.0 / behavior.mean_distance).ln()
        };
        Self {
            behavior,
            ln_one_minus_p,
            degenerate,
        }
    }

    /// Samples the `(dep1, dep2)` distances for one instruction.
    #[inline]
    pub fn sample(&self, rng: &mut Prng) -> (u8, u8) {
        let b = &self.behavior;
        if rng.chance(b.independent_prob) {
            return (0, 0);
        }
        let d1 = self.distance(rng);
        let d2 = if rng.chance(b.second_source_prob) {
            self.distance(rng)
        } else {
            0
        };
        (d1, d2)
    }

    /// One geometric distance draw, capped to the 6-bit record field.
    #[inline]
    fn distance(&self, rng: &mut Prng) -> u8 {
        if self.degenerate {
            // Match `Prng::geometric`'s `mean <= 1` short-circuit, which
            // consumes no randomness.
            return 1;
        }
        rng.geometric_with_ln(self.ln_one_minus_p).min(63) as u8
    }
}

impl Default for IlpBehavior {
    fn default() -> Self {
        Self::moderate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_respects_bounds() {
        let b = IlpBehavior::moderate();
        let mut rng = Prng::new(1);
        for _ in 0..10_000 {
            let (d1, d2) = b.sample(&mut rng);
            assert!(d1 <= 63);
            assert!(d2 <= 63);
        }
    }

    #[test]
    fn serial_has_shorter_distances_than_parallel() {
        let mut rng = Prng::new(2);
        let mean = |b: IlpBehavior, rng: &mut Prng| {
            let mut sum = 0u64;
            let mut n = 0u64;
            for _ in 0..20_000 {
                let (d1, _) = b.sample(rng);
                if d1 > 0 {
                    sum += u64::from(d1);
                    n += 1;
                }
            }
            sum as f64 / n as f64
        };
        let serial = mean(IlpBehavior::serial(), &mut rng);
        let parallel = mean(IlpBehavior::parallel(), &mut rng);
        assert!(serial < parallel, "serial {serial} !< parallel {parallel}");
    }

    #[test]
    fn independent_probability_observed() {
        let b = IlpBehavior::new(4.0, 0.5, 0.5);
        let mut rng = Prng::new(3);
        let n = 20_000;
        let independent = (0..n).filter(|_| b.sample(&mut rng) == (0, 0)).count();
        let frac = independent as f64 / n as f64;
        assert!((0.45..=0.55).contains(&frac));
    }

    #[test]
    #[should_panic(expected = "mean_distance")]
    fn invalid_mean_panics() {
        let _ = IlpBehavior::new(0.5, 0.5, 0.5);
    }

    #[test]
    fn sampler_matches_direct_sampling_bit_for_bit() {
        for behavior in [
            IlpBehavior::serial(),
            IlpBehavior::parallel(),
            IlpBehavior::moderate(),
            IlpBehavior::new(1.0, 0.5, 0.1), // degenerate constant-distance case
        ] {
            let sampler = behavior.sampler();
            let mut a = Prng::new(41);
            let mut b = Prng::new(41);
            for i in 0..20_000 {
                let direct = {
                    // Re-derive through the uncached Prng::geometric path.
                    if a.chance(behavior.independent_prob) {
                        (0, 0)
                    } else {
                        let d1 = a.geometric(behavior.mean_distance).min(63) as u8;
                        let d2 = if a.chance(behavior.second_source_prob) {
                            a.geometric(behavior.mean_distance).min(63) as u8
                        } else {
                            0
                        };
                        (d1, d2)
                    }
                };
                assert_eq!(sampler.sample(&mut b), direct, "draw {i}");
            }
            // And the two RNGs consumed identical amounts of randomness.
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
