//! Phase schedules: how a working set evolves over the course of execution.
//!
//! The paper classifies applications into three behaviours (Section 4.2.1):
//! constant working-set size, working-set *variation* (including periodic
//! variation), and required sizes that fall *between* offered sizes. Phase
//! schedules express the first two directly; the third is a property of the
//! chosen working-set sizes relative to the cache organization.

use crate::working_set::WorkingSetSpec;

/// One phase of execution: a working set that is active for a fraction of the
/// total instruction count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Relative weight of this phase; weights are normalised over the schedule.
    pub weight: f64,
    /// The working set active during this phase.
    pub spec: WorkingSetSpec,
}

impl Phase {
    /// Creates a phase with the given relative weight.
    pub fn new(weight: f64, spec: WorkingSetSpec) -> Self {
        Self { weight, spec }
    }
}

/// How the phases of a schedule are traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// The phases are visited once, in order, each occupying its weight
    /// fraction of the whole trace.
    Sequence,
    /// The phases repeat with the given period (in instructions), each
    /// occupying its weight fraction of the period.
    Periodic {
        /// Period length in dynamic instructions.
        period: u64,
    },
}

/// A schedule of working-set phases over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSchedule {
    kind: ScheduleKind,
    phases: Vec<Phase>,
}

impl PhaseSchedule {
    /// A schedule with a single, constant working set.
    pub fn constant(spec: WorkingSetSpec) -> Self {
        Self {
            kind: ScheduleKind::Sequence,
            phases: vec![Phase::new(1.0, spec)],
        }
    }

    /// A schedule that visits each phase once, in order.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or all weights are non-positive.
    pub fn sequence(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        assert!(
            phases.iter().any(|p| p.weight > 0.0),
            "at least one phase weight must be positive"
        );
        Self {
            kind: ScheduleKind::Sequence,
            phases,
        }
    }

    /// A schedule that repeats the phases with the given period.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, all weights are non-positive, or
    /// `period == 0`.
    pub fn periodic(period: u64, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        assert!(
            phases.iter().any(|p| p.weight > 0.0),
            "at least one phase weight must be positive"
        );
        assert!(period > 0, "period must be positive");
        Self {
            kind: ScheduleKind::Periodic { period },
            phases,
        }
    }

    /// The traversal mode of this schedule.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// The phases of this schedule.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Returns the working set active at dynamic instruction `index` of a
    /// trace of `total` instructions.
    pub fn active(&self, index: u64, total: u64) -> &WorkingSetSpec {
        let total = total.max(1);
        let position = match self.kind {
            ScheduleKind::Sequence => index.min(total - 1) as f64 / total as f64,
            ScheduleKind::Periodic { period } => {
                let period = period.max(1);
                (index % period) as f64 / period as f64
            }
        };
        let weight_sum: f64 = self.phases.iter().map(|p| p.weight.max(0.0)).sum();
        let mut acc = 0.0;
        for phase in &self.phases {
            acc += phase.weight.max(0.0) / weight_sum;
            if position < acc {
                return &phase.spec;
            }
        }
        &self.phases.last().expect("schedule is non-empty").spec
    }

    /// The instruction-weighted mean working-set size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        let weight_sum: f64 = self.phases.iter().map(|p| p.weight.max(0.0)).sum();
        if weight_sum <= 0.0 {
            return 0.0;
        }
        self.phases
            .iter()
            .map(|p| p.weight.max(0.0) / weight_sum * p.spec.bytes as f64)
            .sum()
    }

    /// The largest working-set size in bytes across all phases.
    pub fn max_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.spec.bytes).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(bytes: u64) -> WorkingSetSpec {
        WorkingSetSpec::uniform(bytes)
    }

    #[test]
    fn constant_schedule_is_constant() {
        let s = PhaseSchedule::constant(ws(4096));
        for i in [0u64, 10, 500, 999] {
            assert_eq!(s.active(i, 1000).bytes, 4096);
        }
        assert_eq!(s.mean_bytes(), 4096.0);
        assert_eq!(s.max_bytes(), 4096);
    }

    #[test]
    fn sequence_schedule_switches_midway() {
        let s = PhaseSchedule::sequence(vec![Phase::new(1.0, ws(1024)), Phase::new(1.0, ws(8192))]);
        assert_eq!(s.active(0, 1000).bytes, 1024);
        assert_eq!(s.active(499, 1000).bytes, 1024);
        assert_eq!(s.active(500, 1000).bytes, 8192);
        assert_eq!(s.active(999, 1000).bytes, 8192);
    }

    #[test]
    fn periodic_schedule_repeats() {
        let s = PhaseSchedule::periodic(
            100,
            vec![Phase::new(1.0, ws(1024)), Phase::new(1.0, ws(8192))],
        );
        assert_eq!(s.active(0, 10_000).bytes, 1024);
        assert_eq!(s.active(60, 10_000).bytes, 8192);
        assert_eq!(s.active(100, 10_000).bytes, 1024);
        assert_eq!(s.active(160, 10_000).bytes, 8192);
    }

    #[test]
    fn mean_is_weighted() {
        let s = PhaseSchedule::sequence(vec![Phase::new(3.0, ws(1000)), Phase::new(1.0, ws(5000))]);
        assert!((s.mean_bytes() - 2000.0).abs() < 1e-9);
        assert_eq!(s.max_bytes(), 5000);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_panics() {
        let _ = PhaseSchedule::sequence(vec![]);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = PhaseSchedule::periodic(0, vec![Phase::new(1.0, ws(1024))]);
    }

    #[test]
    fn accessors() {
        let s = PhaseSchedule::periodic(10, vec![Phase::new(1.0, ws(1024))]);
        assert_eq!(s.kind(), ScheduleKind::Periodic { period: 10 });
        assert_eq!(s.phases().len(), 1);
    }
}
