//! Phase schedules: how a working set evolves over the course of execution.
//!
//! The paper classifies applications into three behaviours (Section 4.2.1):
//! constant working-set size, working-set *variation* (including periodic
//! variation), and required sizes that fall *between* offered sizes. Phase
//! schedules express the first two directly; the third is a property of the
//! chosen working-set sizes relative to the cache organization.

use crate::working_set::WorkingSetSpec;

/// One phase of execution: a working set that is active for a fraction of the
/// total instruction count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Relative weight of this phase; weights are normalised over the schedule.
    pub weight: f64,
    /// The working set active during this phase.
    pub spec: WorkingSetSpec,
}

impl Phase {
    /// Creates a phase with the given relative weight.
    pub fn new(weight: f64, spec: WorkingSetSpec) -> Self {
        Self { weight, spec }
    }
}

/// How the phases of a schedule are traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// The phases are visited once, in order, each occupying its weight
    /// fraction of the whole trace.
    Sequence,
    /// The phases repeat with the given period (in instructions), each
    /// occupying its weight fraction of the period.
    Periodic {
        /// Period length in dynamic instructions.
        period: u64,
    },
}

/// A schedule of working-set phases over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSchedule {
    kind: ScheduleKind,
    phases: Vec<Phase>,
}

impl PhaseSchedule {
    /// A schedule with a single, constant working set.
    pub fn constant(spec: WorkingSetSpec) -> Self {
        Self {
            kind: ScheduleKind::Sequence,
            phases: vec![Phase::new(1.0, spec)],
        }
    }

    /// A schedule that visits each phase once, in order.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or all weights are non-positive.
    pub fn sequence(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        assert!(
            phases.iter().any(|p| p.weight > 0.0),
            "at least one phase weight must be positive"
        );
        Self {
            kind: ScheduleKind::Sequence,
            phases,
        }
    }

    /// A schedule that repeats the phases with the given period.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, all weights are non-positive, or
    /// `period == 0`.
    pub fn periodic(period: u64, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        assert!(
            phases.iter().any(|p| p.weight > 0.0),
            "at least one phase weight must be positive"
        );
        assert!(period > 0, "period must be positive");
        Self {
            kind: ScheduleKind::Periodic { period },
            phases,
        }
    }

    /// The traversal mode of this schedule.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// The phases of this schedule.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Returns the working set active at dynamic instruction `index` of a
    /// trace of `total` instructions.
    pub fn active(&self, index: u64, total: u64) -> &WorkingSetSpec {
        &self.phases[self.active_index(index, total)].spec
    }

    /// Returns the index (into [`PhaseSchedule::phases`]) of the phase active
    /// at dynamic instruction `index` of a trace of `total` instructions.
    ///
    /// Within one traversal of the schedule (the whole trace for
    /// [`ScheduleKind::Sequence`], one period for
    /// [`ScheduleKind::Periodic`]) the returned index is non-decreasing in
    /// `index`, which is what lets [`ScheduleCursor`] locate phase
    /// boundaries by binary search.
    pub fn active_index(&self, index: u64, total: u64) -> usize {
        let total = total.max(1);
        let position = match self.kind {
            ScheduleKind::Sequence => index.min(total - 1) as f64 / total as f64,
            ScheduleKind::Periodic { period } => {
                let period = period.max(1);
                (index % period) as f64 / period as f64
            }
        };
        let weight_sum: f64 = self.phases.iter().map(|p| p.weight.max(0.0)).sum();
        let mut acc = 0.0;
        for (i, phase) in self.phases.iter().enumerate() {
            acc += phase.weight.max(0.0) / weight_sum;
            if position < acc {
                return i;
            }
        }
        self.phases.len() - 1
    }

    /// Returns `true` when the phase active at an instruction index does not
    /// depend on the trace's total length: periodic schedules place phases by
    /// `index % period`, and a sequence with a single positively-weighted
    /// phase (including [`PhaseSchedule::constant`]) is the same phase
    /// everywhere. Multi-phase sequences scale their boundaries with the
    /// total, so they are *not* length-invariant.
    ///
    /// Length invariance is what makes a generated trace of `N` records a
    /// bit-exact prefix of the same profile's `M > N`-record trace, which the
    /// experiment trace store relies on to share persisted chunks between
    /// overlapping trace lengths (see `AppProfile::length_invariant`).
    pub fn length_invariant(&self) -> bool {
        match self.kind {
            ScheduleKind::Periodic { .. } => true,
            ScheduleKind::Sequence => self.phases.iter().filter(|p| p.weight > 0.0).count() <= 1,
        }
    }

    /// The instruction-weighted mean working-set size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        let weight_sum: f64 = self.phases.iter().map(|p| p.weight.max(0.0)).sum();
        if weight_sum <= 0.0 {
            return 0.0;
        }
        self.phases
            .iter()
            .map(|p| p.weight.max(0.0) / weight_sum * p.spec.bytes as f64)
            .sum()
    }

    /// The largest working-set size in bytes across all phases.
    pub fn max_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.spec.bytes).max().unwrap_or(0)
    }
}

/// An amortized-O(1) reader of a [`PhaseSchedule`] for monotonically
/// increasing instruction indices.
///
/// [`PhaseSchedule::active`] scans the phase weights on every call — two such
/// calls per generated record made the schedule lookup the single largest
/// cost of trace generation. The cursor instead resolves the active phase
/// once per *segment*: on a miss it asks the schedule for the current phase,
/// then binary-searches (using [`PhaseSchedule::active_index`] as the oracle,
/// so the segmentation is exactly the schedule's own) for the first index at
/// which the phase changes, and serves every index up to that boundary from
/// the cached copy.
#[derive(Debug, Clone)]
pub struct ScheduleCursor {
    spec: WorkingSetSpec,
    /// First index at which `spec` is no longer known to be active.
    valid_until: u64,
}

impl ScheduleCursor {
    /// Creates a cursor; the first [`ScheduleCursor::active`] call resolves
    /// the initial phase.
    pub fn new() -> Self {
        Self {
            spec: WorkingSetSpec::default(),
            valid_until: 0,
        }
    }

    /// Returns the working set active at instruction `index` of a trace of
    /// `total` instructions — equal to `schedule.active(index, total)` for
    /// every input, provided `index` never decreases between calls against
    /// the same `(schedule, total)`.
    #[inline]
    pub fn active(&mut self, schedule: &PhaseSchedule, index: u64, total: u64) -> &WorkingSetSpec {
        if index >= self.valid_until {
            self.refresh(schedule, index, total);
        }
        &self.spec
    }

    /// Re-resolves the active phase at `index` and the segment it extends to.
    fn refresh(&mut self, schedule: &PhaseSchedule, index: u64, total: u64) {
        let phase = schedule.active_index(index, total);
        self.spec = schedule.phases()[phase].spec;
        // The phase index is non-decreasing up to the end of the current
        // schedule traversal, so the first change point is binary-searchable
        // in (index, limit]; `limit` itself stands for "end of traversal".
        let limit = match schedule.kind() {
            ScheduleKind::Sequence => total.max(index + 1),
            ScheduleKind::Periodic { period } => {
                let period = period.max(1);
                (index - index % period).saturating_add(period)
            }
        };
        let mut same = index; // highest index known to share `phase`
        let mut changed = limit; // lowest index known (or assumed) to differ
        while same + 1 < changed {
            let mid = same + (changed - same) / 2;
            if schedule.active_index(mid, total) == phase {
                same = mid;
            } else {
                changed = mid;
            }
        }
        self.valid_until = changed;
    }
}

impl Default for ScheduleCursor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(bytes: u64) -> WorkingSetSpec {
        WorkingSetSpec::uniform(bytes)
    }

    #[test]
    fn constant_schedule_is_constant() {
        let s = PhaseSchedule::constant(ws(4096));
        for i in [0u64, 10, 500, 999] {
            assert_eq!(s.active(i, 1000).bytes, 4096);
        }
        assert_eq!(s.mean_bytes(), 4096.0);
        assert_eq!(s.max_bytes(), 4096);
    }

    #[test]
    fn sequence_schedule_switches_midway() {
        let s = PhaseSchedule::sequence(vec![Phase::new(1.0, ws(1024)), Phase::new(1.0, ws(8192))]);
        assert_eq!(s.active(0, 1000).bytes, 1024);
        assert_eq!(s.active(499, 1000).bytes, 1024);
        assert_eq!(s.active(500, 1000).bytes, 8192);
        assert_eq!(s.active(999, 1000).bytes, 8192);
    }

    #[test]
    fn periodic_schedule_repeats() {
        let s = PhaseSchedule::periodic(
            100,
            vec![Phase::new(1.0, ws(1024)), Phase::new(1.0, ws(8192))],
        );
        assert_eq!(s.active(0, 10_000).bytes, 1024);
        assert_eq!(s.active(60, 10_000).bytes, 8192);
        assert_eq!(s.active(100, 10_000).bytes, 1024);
        assert_eq!(s.active(160, 10_000).bytes, 8192);
    }

    #[test]
    fn mean_is_weighted() {
        let s = PhaseSchedule::sequence(vec![Phase::new(3.0, ws(1000)), Phase::new(1.0, ws(5000))]);
        assert!((s.mean_bytes() - 2000.0).abs() < 1e-9);
        assert_eq!(s.max_bytes(), 5000);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_panics() {
        let _ = PhaseSchedule::sequence(vec![]);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = PhaseSchedule::periodic(0, vec![Phase::new(1.0, ws(1024))]);
    }

    #[test]
    fn accessors() {
        let s = PhaseSchedule::periodic(10, vec![Phase::new(1.0, ws(1024))]);
        assert_eq!(s.kind(), ScheduleKind::Periodic { period: 10 });
        assert_eq!(s.phases().len(), 1);
    }

    #[test]
    fn length_invariance_matches_the_active_phase_function() {
        let schedules = [
            PhaseSchedule::constant(ws(4096)),
            PhaseSchedule::sequence(vec![Phase::new(1.0, ws(1024)), Phase::new(1.0, ws(8192))]),
            PhaseSchedule::sequence(vec![Phase::new(0.0, ws(1024)), Phase::new(1.0, ws(8192))]),
            PhaseSchedule::periodic(
                100,
                vec![Phase::new(1.0, ws(1024)), Phase::new(1.0, ws(8192))],
            ),
        ];
        for s in &schedules {
            // The predicate must be exactly "active phase is the same under
            // every total": check it against the definition.
            let same_under_all_totals = (0..500u64).all(|i| {
                [600u64, 1_000, 5_000]
                    .iter()
                    .all(|t| s.active_index(i, 500) == s.active_index(i, *t))
            });
            assert_eq!(
                s.length_invariant(),
                same_under_all_totals,
                "{:?}",
                s.kind()
            );
        }
    }

    #[test]
    fn cursor_matches_direct_lookup_exactly() {
        // Include a repeated spec (1024 ... 1024) so the cursor must track
        // phase identity, not spec equality, across the A-B-A pattern.
        let schedules = [
            PhaseSchedule::constant(ws(4096)),
            PhaseSchedule::sequence(vec![
                Phase::new(0.3, ws(1024)),
                Phase::new(0.4, ws(8192)),
                Phase::new(0.3, ws(1024)),
            ]),
            PhaseSchedule::periodic(
                997,
                vec![
                    Phase::new(0.5, ws(2048)),
                    Phase::new(0.25, ws(16384)),
                    Phase::new(0.25, ws(2048)),
                ],
            ),
        ];
        for schedule in &schedules {
            for total in [1u64, 10, 997, 10_000] {
                let mut cursor = ScheduleCursor::new();
                for i in 0..total {
                    assert_eq!(
                        cursor.active(schedule, i, total),
                        schedule.active(i, total),
                        "index {i} of {total}"
                    );
                }
            }
        }
    }
}
