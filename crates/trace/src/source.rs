//! The [`TraceSource`] abstraction: pull-based, chunked record delivery.
//!
//! Every consumer of a trace — the in-order engine, the out-of-order engine,
//! summary statistics — iterates records in dynamic program order exactly
//! once. `TraceSource` captures that contract as a pull-based chunk stream,
//! which admits two very different producers behind one monomorphized
//! interface:
//!
//! * [`TraceCursor`] — a window over an already-materialized
//!   [`Trace`](crate::Trace) (`Arc<[InstrRecord]>` storage). It yields the
//!   whole window as a single chunk, so the engines' hot loops run over one
//!   contiguous slice exactly as they did before this abstraction existed;
//!   memoization and copy-free trace sharing are untouched.
//! * [`TraceStream`](crate::TraceStream) — a resumable generator that
//!   expands an [`AppProfile`](crate::AppProfile) chunk by chunk on demand,
//!   so a simulation over a fresh trace needs only one fixed-size chunk
//!   buffer resident instead of the full record array.

use crate::record::InstrRecord;
use crate::trace::Trace;

/// Number of records per chunk used by streaming sources.
///
/// 8 Ki records × 12 bytes = 96 KiB per chunk: large enough that the
/// per-chunk dispatch cost vanishes against per-record simulation work, small
/// enough to stay L2-resident on any host.
pub const CHUNK_RECORDS: usize = 8 * 1024;

/// A pull-based source of trace records, delivered in program order as
/// chunks.
///
/// Implementations hand out successive chunks until the trace is exhausted,
/// at which point [`TraceSource::next_chunk`] returns an empty slice (and
/// continues to do so on further calls). Consumers are expected to be
/// generic over `S: TraceSource`, so both the materialized and the streaming
/// paths monomorphize down to a plain slice loop.
pub trait TraceSource {
    /// The application name the records were generated from.
    fn name(&self) -> &str;

    /// Total number of records this source yields over its lifetime.
    fn total_records(&self) -> usize;

    /// Returns the next chunk of records, or an empty slice when the source
    /// is exhausted.
    fn next_chunk(&mut self) -> &[InstrRecord];
}

/// A [`TraceSource`] over a materialized [`Trace`] window.
///
/// Cloning the underlying trace is an `Arc` bump, so a cursor is cheap to
/// create per simulation; the single chunk it yields is the trace's full
/// record slice, keeping the consuming loop identical to direct slice
/// iteration.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    trace: Trace,
    exhausted: bool,
}

impl TraceCursor {
    /// Creates a cursor over (a copy-free clone of) the given trace window.
    pub fn new(trace: Trace) -> Self {
        Self {
            trace,
            exhausted: false,
        }
    }
}

impl TraceSource for TraceCursor {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn total_records(&self) -> usize {
        self.trace.len()
    }

    fn next_chunk(&mut self) -> &[InstrRecord] {
        if self.exhausted {
            return &[];
        }
        self.exhausted = true;
        self.trace.records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Op;

    fn sample() -> Trace {
        Trace::new(
            "s",
            vec![
                InstrRecord::new(0, Op::Int),
                InstrRecord::new(4, Op::Load(64)),
                InstrRecord::new(8, Op::Branch { taken: true }),
            ],
        )
    }

    #[test]
    fn cursor_yields_the_window_once() {
        let trace = sample();
        let mut cursor = TraceCursor::new(trace.clone());
        assert_eq!(cursor.name(), "s");
        assert_eq!(cursor.total_records(), 3);
        assert_eq!(cursor.next_chunk(), trace.records());
        assert!(cursor.next_chunk().is_empty());
        assert!(cursor.next_chunk().is_empty());
    }

    #[test]
    fn cursor_respects_window_slicing() {
        let trace = sample();
        let (_, tail) = trace.split_at(1);
        let mut cursor = TraceCursor::new(tail);
        assert_eq!(cursor.next_chunk(), &trace.records()[1..]);
        assert!(cursor.next_chunk().is_empty());
    }
}
