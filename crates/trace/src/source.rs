//! The [`TraceSource`] abstraction: pull-based, chunked record delivery.
//!
//! Every consumer of a trace — the in-order engine, the out-of-order engine,
//! summary statistics — iterates records in dynamic program order exactly
//! once. `TraceSource` captures that contract as a pull-based chunk stream,
//! which admits several very different producers behind one monomorphized
//! interface:
//!
//! * [`TraceCursor`] — a window over an already-materialized
//!   [`Trace`](crate::Trace) (`Arc<[InstrRecord]>` storage). It yields each
//!   delivery region as a single chunk, so the engines' hot loops run over
//!   one contiguous slice exactly as they did before this abstraction
//!   existed; memoization and copy-free trace sharing are untouched.
//! * [`TraceStream`](crate::TraceStream) — a resumable generator that
//!   expands an [`AppProfile`](crate::AppProfile) chunk by chunk on demand,
//!   so a simulation over a fresh trace needs only one fixed-size chunk
//!   buffer resident instead of the full record array.
//! * [`TraceFileSource`](crate::codec::TraceFileSource) — a chunk-by-chunk
//!   decoder over a persisted trace-store entry, the replay path of
//!   `RESCACHE_TRACE_DIR`-backed experiments.
//!
//! # The warm/measure split
//!
//! Experiments simulate a warm-up region, reset statistics, then simulate a
//! measured region over the *same* source with carried-over cache state. The
//! trait therefore exposes a resumable split protocol: [`TraceSource::split_at`]
//! fences delivery at an absolute record index — once [`TraceSource::position`]
//! reaches the fence, `next_chunk` reports exhaustion — and a later
//! `split_at` further out resumes delivery exactly where the previous region
//! stopped, even mid-chunk. [`TraceSource::skip`] advances past records
//! without delivering them. Both work across chunk boundaries for every
//! implementation (property-tested in `tests/source_split_properties.rs`).

use crate::format::TraceFormat;
use crate::record::InstrRecord;
use crate::trace::Trace;

/// Number of records per chunk used by streaming sources.
///
/// 8 Ki records × 12 bytes = 96 KiB per chunk: large enough that the
/// per-chunk dispatch cost vanishes against per-record simulation work, small
/// enough to stay L2-resident on any host.
pub const CHUNK_RECORDS: usize = 8 * 1024;

/// A pull-based source of trace records, delivered in program order as
/// chunks.
///
/// Implementations hand out successive chunks until the trace — or the
/// current split region (see [`TraceSource::split_at`]) — is exhausted, at
/// which point [`TraceSource::next_chunk`] returns an empty slice (and
/// continues to do so until the fence moves). Consumers are expected to be
/// generic over `S: TraceSource`, so the materialized, streaming and on-disk
/// paths all monomorphize down to a plain slice loop.
pub trait TraceSource {
    /// The application name the records were generated from.
    fn name(&self) -> &str;

    /// The [`TraceFormat`] version the records were generated under. A
    /// persisting consumer ([`crate::codec::save_source`]) writes this as
    /// the file's version magic, so streamed and materialized persists of
    /// one producer agree byte for byte.
    fn format(&self) -> TraceFormat;

    /// Total number of records this source yields over its lifetime.
    fn total_records(&self) -> usize;

    /// Returns the next chunk of records, or an empty slice when the source
    /// (or the current split region) is exhausted.
    fn next_chunk(&mut self) -> &[InstrRecord];

    /// Number of records delivered (or skipped) so far.
    fn position(&self) -> usize;

    /// Fences delivery at absolute record index `at`, clamped into
    /// `[position(), total_records()]`: `next_chunk` never crosses the fence,
    /// and reports exhaustion once `position()` reaches it. Calling
    /// `split_at` again with a larger index resumes delivery from exactly the
    /// fenced position — the warm/measure split of an experiment is
    /// `split_at(warm)`, drain, then `split_at(warm + measure)`, drain.
    fn split_at(&mut self, at: usize);

    /// Advances past the next `n` records (clamped to the end of the source)
    /// without delivering them, moving the fence along if it would fall
    /// behind. For a materialized cursor this is O(1); a generator still
    /// advances its internal state record by record.
    fn skip(&mut self, n: usize);
}

/// A [`TraceSource`] over a materialized [`Trace`] window.
///
/// Cloning the underlying trace is an `Arc` bump, so a cursor is cheap to
/// create per simulation; each delivery region it yields is one contiguous
/// sub-slice of the trace's record slice, keeping the consuming loop
/// identical to direct slice iteration.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    trace: Trace,
    pos: usize,
    fence: usize,
}

impl TraceCursor {
    /// Creates a cursor over (a copy-free clone of) the given trace window.
    pub fn new(trace: Trace) -> Self {
        let fence = trace.len();
        Self {
            trace,
            pos: 0,
            fence,
        }
    }
}

impl TraceSource for TraceCursor {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn format(&self) -> TraceFormat {
        self.trace.format()
    }

    fn total_records(&self) -> usize {
        self.trace.len()
    }

    fn next_chunk(&mut self) -> &[InstrRecord] {
        // Deliver the whole remaining region as one chunk: the consuming
        // loop stays a single contiguous-slice pass per region.
        let (start, end) = (self.pos, self.fence);
        self.pos = end;
        &self.trace.records()[start..end]
    }

    fn position(&self) -> usize {
        self.pos
    }

    fn split_at(&mut self, at: usize) {
        self.fence = at.clamp(self.pos, self.trace.len());
    }

    fn skip(&mut self, n: usize) {
        self.pos = self.pos.saturating_add(n).min(self.trace.len());
        self.fence = self.fence.max(self.pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Op;

    fn sample() -> Trace {
        Trace::new(
            "s",
            vec![
                InstrRecord::new(0, Op::Int),
                InstrRecord::new(4, Op::Load(64)),
                InstrRecord::new(8, Op::Branch { taken: true }),
            ],
        )
    }

    #[test]
    fn cursor_yields_the_window_once() {
        let trace = sample();
        let mut cursor = TraceCursor::new(trace.clone());
        assert_eq!(cursor.name(), "s");
        assert_eq!(cursor.total_records(), 3);
        assert_eq!(cursor.next_chunk(), trace.records());
        assert!(cursor.next_chunk().is_empty());
        assert!(cursor.next_chunk().is_empty());
        assert_eq!(cursor.position(), 3);
    }

    #[test]
    fn cursor_respects_window_slicing() {
        let trace = sample();
        let (_, tail) = trace.split_at(1);
        let mut cursor = TraceCursor::new(tail);
        assert_eq!(cursor.next_chunk(), &trace.records()[1..]);
        assert!(cursor.next_chunk().is_empty());
    }

    #[test]
    fn cursor_split_resumes_at_the_fence() {
        let trace = sample();
        let mut cursor = TraceCursor::new(trace.clone());
        cursor.split_at(1);
        assert_eq!(cursor.next_chunk(), &trace.records()[..1]);
        assert!(cursor.next_chunk().is_empty(), "region exhausted");
        assert_eq!(cursor.position(), 1);
        cursor.split_at(3);
        assert_eq!(cursor.next_chunk(), &trace.records()[1..]);
        assert!(cursor.next_chunk().is_empty());
    }

    #[test]
    fn cursor_split_clamps_into_the_window() {
        let trace = sample();
        let mut cursor = TraceCursor::new(trace.clone());
        cursor.split_at(99);
        assert_eq!(cursor.next_chunk().len(), 3);
        // A fence behind the position clamps up to it (empty region).
        cursor.split_at(0);
        assert!(cursor.next_chunk().is_empty());
    }

    #[test]
    fn cursor_skip_drops_records_and_drags_the_fence() {
        let trace = sample();
        let mut cursor = TraceCursor::new(trace.clone());
        cursor.split_at(1);
        cursor.skip(2);
        assert_eq!(cursor.position(), 2);
        // The fence (1) fell behind the skipped-to position and moved up.
        assert!(cursor.next_chunk().is_empty());
        cursor.split_at(3);
        assert_eq!(cursor.next_chunk(), &trace.records()[2..]);
        // Skipping past the end clamps.
        cursor.skip(10);
        assert_eq!(cursor.position(), 3);
        assert!(cursor.next_chunk().is_empty());
    }
}
