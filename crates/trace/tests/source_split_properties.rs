//! Property tests for the [`TraceSource`] warm/measure split protocol:
//! whatever the split points — 0, full length, chunk-boundary multiples of
//! 8 Ki (± 1), or arbitrary positions — draining the regions of a split
//! source concatenates to exactly the unsplit source's record sequence, for
//! every implementation (materialized cursor, resumable generator stream,
//! and on-disk chunk reader), and `skip` drops exactly the records it names.

use rescache_testutil::{check_cases, TestRng};
use rescache_trace::codec::TraceFileSource;
use rescache_trace::{spec, InstrRecord, TraceGenerator, TraceSource, CHUNK_RECORDS};

/// Drains the current region of `source` into `out`.
fn drain_region<S: TraceSource>(source: &mut S, out: &mut Vec<InstrRecord>) {
    loop {
        let chunk = source.next_chunk();
        if chunk.is_empty() {
            break;
        }
        out.extend_from_slice(chunk);
    }
}

/// A split plan: fence positions in increasing order, ending at the total.
fn split_plan(rng: &mut TestRng, total: usize) -> Vec<usize> {
    // Interesting split points the issue calls out explicitly, plus
    // arbitrary ones; sampled, sorted and deduplicated into a plan.
    let mut interesting = vec![
        0,
        1,
        total,
        total.saturating_sub(1),
        CHUNK_RECORDS.min(total),
        (CHUNK_RECORDS - 1).min(total),
        (CHUNK_RECORDS + 1).min(total),
        (2 * CHUNK_RECORDS).min(total),
    ];
    interesting.push(rng.below_usize(total + 1));
    interesting.push(rng.below_usize(total + 1));
    let mut plan: Vec<usize> = (0..3)
        .map(|_| interesting[rng.below_usize(interesting.len())])
        .collect();
    plan.push(total);
    plan.sort_unstable();
    plan.dedup();
    plan
}

/// Runs `source` through the plan's regions and checks the concatenation.
fn assert_split_equals_unsplit<S: TraceSource>(
    mut source: S,
    plan: &[usize],
    reference: &[InstrRecord],
    label: &str,
) {
    let mut records = Vec::with_capacity(reference.len());
    for at in plan {
        source.split_at(*at);
        drain_region(&mut source, &mut records);
        assert_eq!(
            source.position(),
            *at,
            "{label}: region must stop exactly at the fence {at} (plan {plan:?})"
        );
    }
    assert_eq!(
        records, reference,
        "{label}: split regions must concatenate to the unsplit sequence (plan {plan:?})"
    );
}

#[test]
fn split_regions_concatenate_to_the_unsplit_sequence() {
    // Lengths straddling one and two chunk boundaries, profiles covering
    // constant, multi-phase sequence and periodic schedules.
    let dir = std::env::temp_dir().join(format!("rescache-split-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let profiles = [spec::ammp(), spec::gcc(), spec::su2cor()];

    check_cases(24, |rng| {
        let profile = profiles[rng.below_usize(profiles.len())].clone();
        let total = match rng.below(3) {
            0 => rng.range_usize(1, 2 * CHUNK_RECORDS),
            1 => CHUNK_RECORDS * rng.range_usize(1, 3) + rng.below_usize(3) - 1,
            _ => rng.range_usize(2 * CHUNK_RECORDS, 3 * CHUNK_RECORDS),
        };
        let seed = rng.below(1 << 20);
        let generator = TraceGenerator::new(profile.clone(), seed);
        let reference = generator.generate(total);
        let plan = split_plan(rng, total);

        assert_split_equals_unsplit(
            reference.cursor(),
            &plan,
            reference.records(),
            &format!("cursor {}", profile.name),
        );
        assert_split_equals_unsplit(
            generator.stream(total),
            &plan,
            reference.records(),
            &format!("stream {}", profile.name),
        );

        let path = dir.join(format!("case-{seed}-{total}.rctrace"));
        rescache_trace::codec::save_trace(&path, &reference).expect("persist case");
        assert_split_equals_unsplit(
            TraceFileSource::open(&path, None).expect("open case"),
            &plan,
            reference.records(),
            &format!("file {}", profile.name),
        );
        std::fs::remove_file(&path).ok();
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn skip_then_drain_equals_the_suffix() {
    let dir = std::env::temp_dir().join(format!("rescache-skip-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    check_cases(16, |rng| {
        let total = rng.range_usize(1, 2 * CHUNK_RECORDS + 100);
        let skip = rng.below_usize(total + 2); // may exceed the total
        let generator = TraceGenerator::new(spec::compress(), rng.below(1 << 20));
        let reference = generator.generate(total);
        let expected = &reference.records()[skip.min(total)..];

        let mut cursor = reference.cursor();
        cursor.skip(skip);
        let mut records = Vec::new();
        drain_region(&mut cursor, &mut records);
        assert_eq!(records, expected, "cursor skip {skip} of {total}");

        let mut stream = generator.stream(total);
        stream.skip(skip);
        let mut records = Vec::new();
        drain_region(&mut stream, &mut records);
        assert_eq!(records, expected, "stream skip {skip} of {total}");

        let path = dir.join(format!("skip-{total}-{skip}.rctrace"));
        rescache_trace::codec::save_trace(&path, &reference).expect("persist case");
        let mut file = TraceFileSource::open(&path, None).expect("open case");
        file.skip(skip);
        let mut records = Vec::new();
        drain_region(&mut file, &mut records);
        assert_eq!(records, expected, "file skip {skip} of {total}");
        std::fs::remove_file(&path).ok();
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interleaved_skip_and_split_stay_consistent() {
    // Mix the two motions: skip some records, fence a region, drain, repeat.
    check_cases(12, |rng| {
        let total = rng.range_usize(CHUNK_RECORDS, 2 * CHUNK_RECORDS + 50);
        let generator = TraceGenerator::new(spec::vpr(), rng.below(1 << 16));
        let reference = generator.generate(total);

        let mut stream = generator.stream(total);
        let mut cursor = reference.cursor();
        let mut expected: Vec<InstrRecord> = Vec::new();
        let mut pos = 0usize;
        while pos < total {
            if rng.bool() {
                let n = rng.below_usize(CHUNK_RECORDS / 2);
                stream.skip(n);
                cursor.skip(n);
                pos = (pos + n).min(total);
            } else {
                let to = (pos + rng.below_usize(CHUNK_RECORDS)).min(total);
                stream.split_at(to);
                cursor.split_at(to);
                expected.extend_from_slice(&reference.records()[pos..to]);
                let mut got_stream = Vec::new();
                drain_region(&mut stream, &mut got_stream);
                let mut got_cursor = Vec::new();
                drain_region(&mut cursor, &mut got_cursor);
                assert_eq!(got_stream, &reference.records()[pos..to]);
                assert_eq!(got_cursor, &reference.records()[pos..to]);
                pos = to;
            }
            assert_eq!(stream.position(), pos);
            assert_eq!(cursor.position(), pos);
        }
    });
}

/// The trait's whole-trace default: a source with no splits at all is the
/// degenerate single-region plan, pinned here so the property above can
/// never silently weaken.
#[test]
fn unsplit_sources_still_deliver_everything() {
    let generator = TraceGenerator::new(spec::swim(), 3);
    let n = CHUNK_RECORDS + 77;
    let reference = generator.generate(n);
    let mut stream = generator.stream(n);
    let mut records = Vec::new();
    drain_region(&mut stream, &mut records);
    assert_eq!(records, reference.records());
}
