//! Distribution property tests for the dependency-distance sampler, under
//! both trace formats.
//!
//! The v2 (table-driven) sampler deliberately draws *different bits* than
//! the v1 (`ln`-based) sampler, so the two are not compared draw-for-draw.
//! What both must honour is the distribution contract of a capped geometric:
//! minimum 1, cap [`MAX_DISTANCE`], empirical mean and cap-mass within
//! analytic tolerance — checked here for every ILP behaviour shipped by the
//! SPEC profiles and the workload registry, plus randomized behaviours from
//! `rescache-testutil`. The v2 inverse-CDF table additionally gets exact
//! structural checks: monotone thresholds and a guide table consistent with
//! the thresholds.

use rescache_testutil::{check_cases, TestRng};
use rescache_trace::{spec, IlpBehavior, Prng, TraceFormat, WorkloadRegistry, MAX_DISTANCE};

/// Every distinct ILP behaviour the workspace ships: the twelve SPEC-like
/// profiles plus the workload registry's scenarios.
fn shipped_behaviors() -> Vec<(String, IlpBehavior)> {
    let mut behaviors: Vec<(String, IlpBehavior)> = Vec::new();
    for profile in spec::all_profiles() {
        behaviors.push((format!("spec/{}", profile.name), profile.ilp));
    }
    for workload in WorkloadRegistry::builtin().specs() {
        behaviors.push((
            format!("registry/{}", workload.name),
            workload.profile().ilp,
        ));
    }
    behaviors
}

/// Draws `n` capped distances through the sampler's public draw.
fn draw_distances(behavior: IlpBehavior, format: TraceFormat, seed: u64, n: usize) -> Vec<u8> {
    let sampler = behavior.sampler(format);
    let mut rng = Prng::new(seed);
    (0..n).map(|_| sampler.draw(&mut rng)).collect()
}

/// Analytic mean of `min(Geometric(p), cap)`:
/// `E = sum_{j=0}^{cap-1} q^j = (1 - q^cap) / (1 - q)`.
fn capped_geometric_mean(mean: f64) -> f64 {
    if mean <= 1.0 {
        return 1.0;
    }
    let q: f64 = 1.0 - 1.0 / mean;
    (1.0 - q.powi(i32::from(MAX_DISTANCE))) * mean
}

/// Analytic probability mass absorbed by the cap: `P(X >= cap) = q^(cap-1)`.
fn cap_mass(mean: f64) -> f64 {
    if mean <= 1.0 {
        return 0.0;
    }
    let q: f64 = 1.0 - 1.0 / mean;
    q.powi(i32::from(MAX_DISTANCE) - 1)
}

/// Asserts the distribution contract for one behaviour under one format.
fn assert_distribution(label: &str, behavior: IlpBehavior, format: TraceFormat, seed: u64) {
    let n = 200_000;
    let draws = draw_distances(behavior, format, seed, n);

    // Hard bounds: minimum 1 (a drawn distance is never "no dependency"),
    // cap at the record's 6-bit field.
    let (mut min, mut max) = (u8::MAX, 0u8);
    let mut sum = 0u64;
    let mut at_cap = 0u64;
    for &d in &draws {
        min = min.min(d);
        max = max.max(d);
        sum += u64::from(d);
        at_cap += u64::from(d == MAX_DISTANCE);
    }
    assert_eq!(min, 1, "{label} {format}: min distance must be 1");
    assert!(
        max <= MAX_DISTANCE,
        "{label} {format}: cap {MAX_DISTANCE} exceeded ({max})"
    );

    // Empirical mean vs the analytic capped mean. The standard error of the
    // mean is at most mean/sqrt(n) (geometric sd < mean), so 5 sigma plus a
    // small absolute floor gives a deterministic-seed test with no flake
    // margin to speak of.
    let expected_mean = capped_geometric_mean(behavior.mean_distance);
    let observed_mean = sum as f64 / n as f64;
    let tolerance = (5.0 * behavior.mean_distance / (n as f64).sqrt()).max(0.02);
    assert!(
        (observed_mean - expected_mean).abs() < tolerance,
        "{label} {format}: mean {observed_mean:.4} vs analytic {expected_mean:.4} (tol {tolerance:.4})"
    );

    // Tail: the mass the cap absorbs. Binomial 5-sigma tolerance plus an
    // absolute floor for near-zero expectations.
    let expected_cap = cap_mass(behavior.mean_distance);
    let observed_cap = at_cap as f64 / n as f64;
    let cap_tolerance = (5.0 * (expected_cap * (1.0 - expected_cap) / n as f64).sqrt()).max(5e-4);
    assert!(
        (observed_cap - expected_cap).abs() < cap_tolerance,
        "{label} {format}: cap mass {observed_cap:.6} vs analytic {expected_cap:.6} (tol {cap_tolerance:.6})"
    );
}

#[test]
fn sampler_distribution_matches_analytic_for_every_shipped_behavior() {
    for (label, behavior) in shipped_behaviors() {
        for format in TraceFormat::ALL {
            assert_distribution(&label, behavior, format, 0xD15_7A11CE);
        }
    }
}

#[test]
fn sampler_distribution_holds_for_randomized_behaviors() {
    check_cases(24, |rng: &mut TestRng| {
        // Means across the interesting range, including near-degenerate and
        // heavily cap-clipped ones; probabilities are irrelevant to `draw`
        // but randomized anyway to cover the construction paths.
        let mean = rng.f64_range(1.01, 80.0);
        let behavior = IlpBehavior::new(mean, rng.next_f64(), rng.next_f64());
        let seed = rng.next_u64();
        for format in TraceFormat::ALL {
            assert_distribution("randomized", behavior, format, seed);
        }
    });
}

#[test]
fn sampler_degenerate_mean_is_constant_one_in_both_formats() {
    for format in TraceFormat::ALL {
        for mean in [1.0] {
            let sampler = IlpBehavior::new(mean, 0.4, 0.1).sampler(format);
            let mut rng = Prng::new(3);
            let before = rng.clone();
            for _ in 0..1_000 {
                assert_eq!(sampler.draw(&mut rng), 1);
            }
            assert_eq!(
                rng, before,
                "{format}: constant draw must not touch the RNG"
            );
        }
    }
}

#[test]
fn sampler_table_inverse_cdf_is_exactly_monotone() {
    // The exact structural invariants of the v2 table, for every shipped
    // behaviour that has one and a mean sweep: thresholds non-decreasing
    // (a decreasing pair would make some distance's probability negative),
    // the last threshold saturated (the cap absorbs all remaining mass),
    // and the guide table non-decreasing and consistent with the
    // thresholds at every slice boundary.
    let mut means: Vec<f64> = shipped_behaviors()
        .iter()
        .map(|(_, b)| b.mean_distance)
        .collect();
    means.extend([1.001, 1.5, 2.0, 5.0, 10.0, 16.0, 63.0, 64.0, 1000.0]);
    let mut checked = 0;
    for mean in means {
        let behavior = IlpBehavior::new(mean.max(1.0), 0.4, 0.1);
        let sampler = behavior.sampler(TraceFormat::V2);
        let Some(table) = sampler.table() else {
            continue;
        };
        checked += 1;
        let cdf = table.cdf();
        for window in cdf.windows(2) {
            assert!(
                window[0] <= window[1],
                "mean {mean}: inverse CDF must be monotone ({} > {})",
                window[0],
                window[1]
            );
        }
        assert_eq!(
            cdf[MAX_DISTANCE as usize - 1],
            u64::MAX,
            "mean {mean}: the cap entry must absorb all remaining mass"
        );
        let guide = table.guide();
        for window in guide.windows(2) {
            assert!(
                window[0] <= window[1],
                "mean {mean}: guide must be monotone"
            );
        }
        for (byte, &g) in guide.iter().enumerate() {
            assert!((1..=MAX_DISTANCE).contains(&g), "mean {mean}, byte {byte}");
            // The guide entry is the distance of the slice's smallest value:
            // the CDF entry *below* it (if any) must not exceed the slice
            // start, and using it as a starting point must never overshoot.
            let r = (byte as u64) << 56;
            if g > 1 {
                assert!(
                    cdf[g as usize - 2] <= r,
                    "mean {mean}, byte {byte}: guide {g} skips mass"
                );
            }
            if g < MAX_DISTANCE {
                assert!(
                    cdf[g as usize - 1] > r,
                    "mean {mean}, byte {byte}: guide {g} overshoots the slice start"
                );
            }
        }
    }
    assert!(checked >= 10, "only {checked} table samplers checked");
}

#[test]
fn v1_and_v2_draw_different_bits_by_design() {
    // Not a distribution property, but the reason this is a format bump:
    // same RNG seed, same behaviour, different draw sequences.
    let behavior = IlpBehavior::moderate();
    let v1 = draw_distances(behavior, TraceFormat::V1, 7, 10_000);
    let v2 = draw_distances(behavior, TraceFormat::V2, 7, 10_000);
    assert_ne!(v1, v2);
}
