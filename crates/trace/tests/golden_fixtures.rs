//! Golden-fixture suite: committed encoded traces that pin the generator +
//! codec byte stream across refactors and across processes.
//!
//! Until now the only guard on trace bytes was in-process A/B comparison —
//! a refactor that changed generation and decoding *consistently* would
//! pass every test while silently invalidating persisted stores and
//! breaking cross-version reproducibility. These fixtures are the
//! cross-process anchor: small (4–12 KiB) encoded traces for three registry
//! workloads under **every** trace-format version, committed under
//! `tests/fixtures/`, with their FNV-1a content hashes pinned in this file.
//! The v3 fixtures are delta compressed (length-prefixed fields), so they
//! additionally pin the compressor's byte stream.
//!
//! A deliberate format bump re-blesses the fixtures (and their hashes) in
//! the same change:
//!
//! ```text
//! RESCACHE_BLESS_FIXTURES=1 cargo test -p rescache-trace --test golden_fixtures
//! ```
//!
//! then commit the regenerated files and paste the printed hash table over
//! `PINNED`. An unintentional byte change fails loudly instead.

use std::path::PathBuf;

use rescache_trace::{codec, TraceFormat, TraceGenerator, WorkloadRegistry};

/// Length of every fixture trace: 1000 records ≈ 12 KiB encoded, inside the
/// 4–16 KiB budget a committed binary fixture should stay in.
const FIXTURE_RECORDS: usize = 1000;

/// Generation seed shared by every fixture.
const FIXTURE_SEED: u64 = 42;

/// The pinned fixtures: (registry workload, format, FNV-1a hash of the
/// encoded file bytes). Regenerate with `RESCACHE_BLESS_FIXTURES=1` (see
/// the module docs) — and only on a deliberate format bump.
const PINNED: &[(&str, TraceFormat, u64)] = &[
    ("nominal", TraceFormat::V1, 0x781e9c9c2231723c),
    ("nominal", TraceFormat::V2, 0xb9ea4d41cbda29f5),
    ("nominal", TraceFormat::V3, 0x297d2cf0990a9031),
    ("pointer_chase", TraceFormat::V1, 0xe8d3be049f7ef0fd),
    ("pointer_chase", TraceFormat::V2, 0x31b75408d05c4528),
    ("pointer_chase", TraceFormat::V3, 0x7251c8676902eb09),
    ("phase_flip", TraceFormat::V1, 0x82bb8e12e87edae6),
    ("phase_flip", TraceFormat::V2, 0x9561a7310e5bf00d),
    ("phase_flip", TraceFormat::V3, 0xc47ec671bcb9c804),
];

/// FNV-1a over a byte stream (the same construction the workspace uses for
/// profile fingerprints; no external hashing dependency).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn fixture_path(workload: &str, format: TraceFormat) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!(
            "{workload}-s{FIXTURE_SEED}-n{FIXTURE_RECORDS}.{}.rctrace",
            format.tag()
        ))
}

/// Encodes the fixture trace for one (workload, format) pair exactly as the
/// committed fixture was produced.
fn encode_fixture(workload: &str, format: TraceFormat) -> Vec<u8> {
    let profile = WorkloadRegistry::builtin()
        .get(workload)
        .unwrap_or_else(|| panic!("{workload} is a registered workload"))
        .profile();
    let trace = TraceGenerator::new(profile, FIXTURE_SEED)
        .with_format(format)
        .generate(FIXTURE_RECORDS);
    let mut bytes = Vec::new();
    codec::write_trace(&mut bytes, &trace).expect("vec writes cannot fail");
    bytes
}

fn bless_requested() -> bool {
    std::env::var("RESCACHE_BLESS_FIXTURES")
        .map(|v| !matches!(v.trim(), "" | "0" | "false"))
        .unwrap_or(false)
}

#[test]
fn golden_fixtures_pin_generator_and_codec_bytes() {
    if bless_requested() {
        std::fs::create_dir_all(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures"))
            .expect("create fixtures dir");
        eprintln!("blessed fixture hashes (paste over PINNED):");
        for &(workload, format, _) in PINNED {
            let bytes = encode_fixture(workload, format);
            std::fs::write(fixture_path(workload, format), &bytes).expect("write fixture");
            let tag = match format {
                TraceFormat::V1 => "V1",
                TraceFormat::V2 => "V2",
                TraceFormat::V3 => "V3",
            };
            eprintln!(
                "    (\"{workload}\", TraceFormat::{tag}, {:#018x}),",
                fnv1a(&bytes)
            );
        }
    }

    for &(workload, format, pinned_hash) in PINNED {
        let path = fixture_path(workload, format);
        let committed = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing fixture {} ({e}); see module docs", path.display())
        });
        // v1/v2 are fixed 12 bytes/record; v3 fixtures carry delta
        // compressed chunks, so their ceiling doubles as a compression pin:
        // above ~6 KiB the codec has stopped at least halving the stream.
        let budget = match format {
            TraceFormat::V1 | TraceFormat::V2 => 4096..=16384,
            TraceFormat::V3 => 1024..=FIXTURE_RECORDS * 12 / 2,
        };
        assert!(
            budget.contains(&committed.len()),
            "{workload} {format}: fixture size {} outside the {budget:?} byte budget",
            committed.len()
        );

        // The committed bytes are what today's generator + codec produce…
        let regenerated = encode_fixture(workload, format);
        assert_eq!(
            regenerated, committed,
            "{workload} {format}: generator or codec bytes drifted from the committed fixture"
        );

        // …and what they have produced since the fixture was blessed.
        assert_eq!(
            fnv1a(&committed),
            pinned_hash,
            "{workload} {format}: committed fixture does not match its pinned hash"
        );

        // The fixture decodes, and the header carries the right identity.
        let decoded = codec::read_trace(&mut committed.as_slice())
            .unwrap_or_else(|e| panic!("{workload} {format}: fixture failed to decode: {e}"));
        assert_eq!(decoded.name(), workload);
        assert_eq!(decoded.format(), format);
        assert_eq!(decoded.len(), FIXTURE_RECORDS);
    }
}

#[test]
fn fixture_formats_differ_only_in_dependency_bits() {
    // The committed v1/v2 fixture pair of one workload must decode to
    // record sequences that agree on everything except the dependency
    // lanes — the exact scope of the format bump.
    for workload in ["nominal", "pointer_chase", "phase_flip"] {
        let v1 = codec::read_trace(
            &mut std::fs::read(fixture_path(workload, TraceFormat::V1))
                .expect("v1 fixture")
                .as_slice(),
        )
        .expect("v1 decodes");
        let v2 = codec::read_trace(
            &mut std::fs::read(fixture_path(workload, TraceFormat::V2))
                .expect("v2 fixture")
                .as_slice(),
        )
        .expect("v2 decodes");
        let mut dep_diffs = 0u64;
        for (a, b) in v1.iter().zip(v2.iter()) {
            assert_eq!(a.pc(), b.pc(), "{workload}: PC must be format-independent");
            assert_eq!(a.op(), b.op(), "{workload}: op must be format-independent");
            dep_diffs += u64::from((a.dep1(), a.dep2()) != (b.dep1(), b.dep2()));
        }
        assert!(
            dep_diffs > 0,
            "{workload}: the formats must actually differ"
        );
    }
}

#[test]
fn v3_fixture_records_coincide_with_v2() {
    // v3 redefines the mix draw at 2^-64 quantization (v2 draws at 2^-53),
    // so the formats only disagree inside ~2^-53-wide threshold windows —
    // never on these traces. The committed v2/v3 fixture pairs must decode
    // to identical record sequences while the files themselves differ
    // (magic, flags byte, compressed chunk payloads).
    for workload in ["nominal", "pointer_chase", "phase_flip"] {
        let v2_bytes = std::fs::read(fixture_path(workload, TraceFormat::V2)).expect("v2 fixture");
        let v3_bytes = std::fs::read(fixture_path(workload, TraceFormat::V3)).expect("v3 fixture");
        assert_ne!(v2_bytes, v3_bytes, "{workload}: containers must differ");
        assert_eq!(&v3_bytes[..8], b"RCTRACE3");
        assert_eq!(v3_bytes[8], 1, "{workload}: v3 fixtures are compressed");
        assert!(
            2 * v3_bytes.len() <= v2_bytes.len(),
            "{workload}: compression must at least halve the fixture: v3 {} vs v2 {}",
            v3_bytes.len(),
            v2_bytes.len()
        );

        let v2 = codec::read_trace(&mut v2_bytes.as_slice()).expect("v2 decodes");
        let v3 = codec::read_trace(&mut v3_bytes.as_slice()).expect("v3 decodes");
        assert_eq!(v3.format(), TraceFormat::V3);
        assert_eq!(v2.len(), v3.len());
        for (i, (a, b)) in v2.iter().zip(v3.iter()).enumerate() {
            assert_eq!(a, b, "{workload}: record {i} must coincide across v2/v3");
        }
    }
}
