//! Property-based tests of the workload substrate: whatever profile is
//! thrown at the generator, the resulting trace must respect the profile's
//! structural promises (footprints, mixes, determinism). Driven by the
//! in-repo deterministic case runner (`rescache-testutil`).

use rescache_testutil::{check_cases, TestRng};
use rescache_trace::address::AccessMix;
use rescache_trace::{
    AppProfile, CodeBehavior, DataBehavior, InstructionMix, Phase, PhaseSchedule, TraceGenerator,
    WorkingSetSpec,
};

/// Base address used for code footprints in the generated profiles (the
/// shipped SPEC-like profiles use the same convention: code low, data high).
const CODE_BASE: u64 = 0x0040_0000;

/// Draws a working-set size between 1 KiB and 64 KiB with 1..4 aliasing
/// segments at the given base address.
fn working_set(rng: &mut TestRng, base: u64) -> WorkingSetSpec {
    let kib = rng.range(1, 64);
    let ways = rng.range_u32(1, 4);
    WorkingSetSpec::conflicting(kib * 1024, ways).at_base(base)
}

fn schedule(rng: &mut TestRng, base: u64) -> PhaseSchedule {
    let phases = rng.range_usize(1, 4);
    PhaseSchedule::sequence(
        (0..phases)
            .map(|_| {
                let weight = rng.range(1, 10) as f64;
                let ws = working_set(rng, base);
                Phase::new(weight, ws)
            })
            .collect(),
    )
}

fn profile(rng: &mut TestRng) -> AppProfile {
    let data = schedule(rng, 0x1000_0000);
    let code = schedule(rng, CODE_BASE);
    let load = rng.f64_range(0.0, 0.4);
    let store = rng.f64_range(0.0, 0.2);
    AppProfile::new(
        "prop",
        DataBehavior::new(data).with_access_mix(AccessMix::new(0.5, 0.45, 0.05)),
        CodeBehavior::new(code),
    )
    .with_mix(InstructionMix::new(load, store, 0.05))
}

/// Generation is a pure function of (profile, seed, length).
#[test]
fn generation_is_deterministic() {
    check_cases(48, |rng| {
        let p = profile(rng);
        let seed = rng.below(1000);
        let a = TraceGenerator::new(p.clone(), seed).generate(3_000);
        let b = TraceGenerator::new(p, seed).generate(3_000);
        assert_eq!(a, b);
    });
}

/// The requested length is always honoured exactly.
#[test]
fn length_is_exact() {
    check_cases(48, |rng| {
        let p = profile(rng);
        let len = rng.range_usize(1, 5_000);
        assert_eq!(TraceGenerator::new(p, 1).generate(len).len(), len);
    });
}

/// Data addresses stay within the union of the working sets plus the
/// dedicated streaming region; instruction addresses stay within the code
/// footprint region.
#[test]
fn addresses_stay_in_their_regions() {
    check_cases(48, |rng| {
        let p = profile(rng);
        let trace = TraceGenerator::new(p, 7).generate(5_000);
        for record in trace.iter() {
            assert!(
                record.pc() < 0x1000_0000,
                "code addresses live below the data base"
            );
            if let Some(addr) = record.op().address() {
                assert!(
                    addr >= 0x1000_0000,
                    "data addresses live above the code region"
                );
            }
        }
    });
}

/// The memory-instruction share of the trace follows the requested mix (up to
/// the share taken by branches).
#[test]
fn memory_fraction_tracks_mix() {
    check_cases(48, |rng| {
        let p = profile(rng);
        let mem_target = p.mix.mem();
        if mem_target <= 0.05 {
            return;
        }
        let trace = TraceGenerator::new(p, 3).generate(20_000);
        let observed = trace.stats().mem_fraction();
        assert!(
            observed > mem_target * 0.6 && observed < mem_target * 1.1,
            "observed mem fraction {observed} vs requested {mem_target}"
        );
    });
}

/// Branch records always make up a plausible share of the stream: the code
/// stream emits one conditional per basic block.
#[test]
fn branch_fraction_is_plausible() {
    check_cases(48, |rng| {
        let p = profile(rng);
        let trace = TraceGenerator::new(p, 11).generate(20_000);
        let frac = trace.stats().branch_fraction();
        assert!((0.05..=0.3).contains(&frac), "branch fraction {frac}");
    });
}

/// Dependency distances never exceed the 63-instruction encoding limit.
#[test]
fn dependency_distances_are_bounded() {
    check_cases(48, |rng| {
        let p = profile(rng);
        let seed = rng.below(50);
        let trace = TraceGenerator::new(p, seed).generate(2_000);
        for r in trace.iter() {
            assert!(r.dep1() <= 63 && r.dep2() <= 63);
        }
    });
}
