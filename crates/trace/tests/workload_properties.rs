//! Property-based tests of the workload substrate: whatever profile is
//! thrown at the generator, the resulting trace must respect the profile's
//! structural promises (footprints, mixes, determinism).

use proptest::prelude::*;
use rescache_trace::address::AccessMix;
use rescache_trace::{
    AppProfile, CodeBehavior, DataBehavior, InstructionMix, Phase, PhaseSchedule, TraceGenerator,
    WorkingSetSpec,
};

/// Base address used for code footprints in the generated profiles (the
/// shipped SPEC-like profiles use the same convention: code low, data high).
const CODE_BASE: u64 = 0x0040_0000;

/// Strategy for a working-set size between 1 KiB and 64 KiB with 1..4
/// aliasing segments at the given base address.
fn working_set(base: u64) -> impl Strategy<Value = WorkingSetSpec> {
    (1u64..64, 1u32..4)
        .prop_map(move |(kib, ways)| WorkingSetSpec::conflicting(kib * 1024, ways).at_base(base))
}

fn schedule(base: u64) -> impl Strategy<Value = PhaseSchedule> {
    prop::collection::vec((1u64..10, working_set(base)), 1..4).prop_map(|phases| {
        PhaseSchedule::sequence(
            phases
                .into_iter()
                .map(|(w, ws)| Phase::new(w as f64, ws))
                .collect(),
        )
    })
}

fn profile() -> impl Strategy<Value = AppProfile> {
    (
        schedule(0x1000_0000),
        schedule(CODE_BASE),
        0.0f64..0.4,
        0.0f64..0.2,
    )
        .prop_map(|(data, code, load, store)| {
            AppProfile::new(
                "prop",
                DataBehavior::new(data).with_access_mix(AccessMix::new(0.5, 0.45, 0.05)),
                CodeBehavior::new(code.clone()),
            )
            .with_mix(InstructionMix::new(load, store, 0.05))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generation is a pure function of (profile, seed, length).
    #[test]
    fn generation_is_deterministic(p in profile(), seed in 0u64..1000) {
        let a = TraceGenerator::new(p.clone(), seed).generate(3_000);
        let b = TraceGenerator::new(p, seed).generate(3_000);
        prop_assert_eq!(a, b);
    }

    /// The requested length is always honoured exactly.
    #[test]
    fn length_is_exact(p in profile(), len in 1usize..5_000) {
        prop_assert_eq!(TraceGenerator::new(p, 1).generate(len).len(), len);
    }

    /// Data addresses stay within the union of the working sets plus the
    /// dedicated streaming region; instruction addresses stay within the code
    /// footprint region.
    #[test]
    fn addresses_stay_in_their_regions(p in profile()) {
        let trace = TraceGenerator::new(p, 7).generate(5_000);
        for record in trace.iter() {
            prop_assert!(record.pc < 0x1000_0000, "code addresses live below the data base");
            if let Some(addr) = record.op.address() {
                prop_assert!(addr >= 0x1000_0000, "data addresses live above the code region");
            }
        }
    }

    /// The memory-instruction share of the trace follows the requested mix
    /// (up to the share taken by branches).
    #[test]
    fn memory_fraction_tracks_mix(p in profile()) {
        let mem_target = p.mix.mem();
        prop_assume!(mem_target > 0.05);
        let trace = TraceGenerator::new(p, 3).generate(20_000);
        let stats = trace.stats();
        let observed = stats.mem_fraction();
        prop_assert!(
            observed > mem_target * 0.6 && observed < mem_target * 1.1,
            "observed mem fraction {} vs requested {}",
            observed,
            mem_target
        );
    }

    /// Branch records always make up a plausible share of the stream: the
    /// code stream emits one conditional per basic block.
    #[test]
    fn branch_fraction_is_plausible(p in profile()) {
        let trace = TraceGenerator::new(p, 11).generate(20_000);
        let frac = trace.stats().branch_fraction();
        prop_assert!((0.05..=0.3).contains(&frac), "branch fraction {}", frac);
    }

    /// Dependency distances never exceed the 63-instruction encoding limit.
    #[test]
    fn dependency_distances_are_bounded(p in profile(), seed in 0u64..50) {
        let trace = TraceGenerator::new(p, seed).generate(2_000);
        for r in trace.iter() {
            prop_assert!(r.dep1 <= 63 && r.dep2 <= 63);
        }
    }
}
