//! Differential property tests for the batched engine pipeline: the
//! struct-of-arrays issue/complete loops in `rescache_cpu::{ooo, inorder}`
//! must be bit-identical to the scalar per-record reference loops in
//! `rescache_cpu::scalar` — for every source kind, every warm/measure split
//! plan (0, batch ± 1 == chunk ± 1, full length, arbitrary), and with the
//! observer hook attached.
//!
//! The batch width equals the streaming chunk width, so the `LANE_BATCH ± 1`
//! split points exercised here are simultaneously the chunk-boundary cases
//! the issue calls out.

use rescache_cache::{HierarchyConfig, HierarchySnapshot, MemoryHierarchy};
use rescache_cpu::hook::{NoopHook, SimHook};
use rescache_cpu::{scalar, CpuConfig, SimResult, Simulator, LANE_BATCH};
use rescache_testutil::{check_cases, TestRng};
use rescache_trace::{spec, TraceFormat, TraceGenerator, TraceSource, CHUNK_RECORDS};

/// A hook that folds every observation into a checksum, so hook-visible
/// divergence (call count, committed index, or the cycle passed) is caught
/// even where the final result would agree.
struct ChecksumHook {
    calls: u64,
    digest: u64,
}

impl ChecksumHook {
    fn new() -> Self {
        Self {
            calls: 0,
            digest: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl SimHook for ChecksumHook {
    fn post_commit(&mut self, committed: u64, cycle: u64, _hierarchy: &mut MemoryHierarchy) {
        self.calls += 1;
        self.digest =
            (self.digest ^ committed ^ cycle.rotate_left(17)).wrapping_mul(0x100_0000_01b3);
    }
}

/// One engine run's observable outcome: the measured-region result, the
/// final hierarchy snapshot, and the hook's call count and digest.
type Outcome = (SimResult, HierarchySnapshot, u64, u64);

/// Runs the batched engine and the scalar reference over identical fresh
/// hierarchies and sources, through the same warm/measure split plan, and
/// returns both outcomes.
fn run_both<S: TraceSource + Clone>(
    config: CpuConfig,
    source: &S,
    warm: usize,
    measure: usize,
    hooked: bool,
) -> (Outcome, Outcome) {
    let run_scalar = |src: &mut S, hierarchy: &mut MemoryHierarchy, hook: &mut dyn SimHook| {
        let start = src.position();
        src.split_at(start + warm);
        scalar::run_engine_reference(&config, src, hierarchy, hook);
        hierarchy.reset_stats();
        src.split_at(start + warm + measure);
        scalar::run_engine_reference(&config, src, hierarchy, hook)
    };
    let run_batched = |src: &mut S, hierarchy: &mut MemoryHierarchy, hook: &mut dyn SimHook| {
        let sim = Simulator::new(config);
        sim.run_warm_measure_with_hook(src, warm, measure, hierarchy, hook)
    };

    let mut batched_hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
    let mut scalar_hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
    let mut batched_source = source.clone();
    let mut scalar_source = source.clone();

    if hooked {
        let mut batched_hook = ChecksumHook::new();
        let mut scalar_hook = ChecksumHook::new();
        let batched = run_batched(
            &mut batched_source,
            &mut batched_hierarchy,
            &mut batched_hook,
        );
        let scalar = run_scalar(&mut scalar_source, &mut scalar_hierarchy, &mut scalar_hook);
        (
            (
                batched,
                batched_hierarchy.snapshot(),
                batched_hook.calls,
                batched_hook.digest,
            ),
            (
                scalar,
                scalar_hierarchy.snapshot(),
                scalar_hook.calls,
                scalar_hook.digest,
            ),
        )
    } else {
        let batched = run_batched(&mut batched_source, &mut batched_hierarchy, &mut NoopHook);
        let scalar = run_scalar(&mut scalar_source, &mut scalar_hierarchy, &mut NoopHook);
        (
            (batched, batched_hierarchy.snapshot(), 0, 0),
            (scalar, scalar_hierarchy.snapshot(), 0, 0),
        )
    }
}

/// The boundary-sensitive warm lengths the issue names: 0, batch ± 1 (which
/// equals chunk ± 1), the exact batch width, twice it, and the full trace.
fn boundary_warm_lengths(total: usize) -> Vec<usize> {
    assert_eq!(
        LANE_BATCH, CHUNK_RECORDS,
        "batch width is defined to match the streaming chunk width"
    );
    vec![
        0,
        1,
        LANE_BATCH - 1,
        LANE_BATCH,
        LANE_BATCH + 1,
        2 * LANE_BATCH,
        total.saturating_sub(1),
        total,
    ]
}

fn assert_equivalent(
    config: CpuConfig,
    profile_name: &str,
    warm: usize,
    measure: usize,
    hooked: bool,
    source_label: &str,
    outcome: (Outcome, Outcome),
) {
    let (batched, reference) = outcome;
    let label = format!(
        "{profile_name}/{source_label} engine={:?} warm={warm} measure={measure} hooked={hooked}",
        config.engine
    );
    // Asserted before the whole-struct comparison so a latency-accounting
    // divergence is named as such: the lanes path and the scalar oracle must
    // count delayed hits, primary misses and their cycles identically at
    // every split point.
    assert_eq!(
        batched.0.latency, reference.0.latency,
        "LatencyStats diverged: {label}"
    );
    assert_eq!(batched.0, reference.0, "SimResult diverged: {label}");
    assert_eq!(batched.1, reference.1, "snapshot diverged: {label}");
    assert_eq!(batched.2, reference.2, "hook call count diverged: {label}");
    assert_eq!(batched.3, reference.3, "hook digest diverged: {label}");
}

#[test]
fn batched_ooo_and_inorder_match_scalar_reference_at_batch_boundaries() {
    // Long enough that every boundary warm length leaves a measured region
    // crossing at least one further batch boundary.
    let total = 2 * LANE_BATCH + 2 * LANE_BATCH / 3;
    let trace = TraceGenerator::new(spec::gcc(), 23).generate(total);
    for config in [CpuConfig::base_out_of_order(), CpuConfig::base_in_order()] {
        for &warm in &boundary_warm_lengths(total) {
            let measure = total - warm;
            for hooked in [false, true] {
                assert_equivalent(
                    config,
                    "gcc",
                    warm,
                    measure,
                    hooked,
                    "cursor",
                    run_both(config, &trace.cursor(), warm, measure, hooked),
                );
            }
        }
    }
}

#[test]
fn batched_engines_match_scalar_reference_on_streamed_sources() {
    // The streamed generator delivers true CHUNK_RECORDS-wide chunks, so this
    // exercises the one-batch-per-chunk path (plus a trailing short chunk) —
    // under both trace formats: the engines must be format-agnostic, and the
    // v1 differential stays alive alongside the default.
    let total = LANE_BATCH + LANE_BATCH / 2;
    for format in TraceFormat::ALL {
        let generator = TraceGenerator::new(spec::su2cor(), 7).with_format(format);
        for config in [CpuConfig::base_out_of_order(), CpuConfig::base_in_order()] {
            for warm in [0, 1, LANE_BATCH - 1, LANE_BATCH, LANE_BATCH + 1, total] {
                let measure = total - warm;
                for hooked in [false, true] {
                    assert_equivalent(
                        config,
                        "su2cor",
                        warm,
                        measure,
                        hooked,
                        if format == TraceFormat::V1 {
                            "stream-v1"
                        } else {
                            "stream-v2"
                        },
                        run_both(config, &generator.stream(total), warm, measure, hooked),
                    );
                }
            }
        }
    }
}

#[test]
fn latency_parity_is_not_vacuous() {
    // The LatencyStats assertions above would pass trivially if neither
    // path accounted anything; pin that a missy profile actually produces
    // nonzero latency counters in the measured region under both engines,
    // and that the means derive from those counters.
    let total = 2 * LANE_BATCH;
    let trace = TraceGenerator::new(spec::gcc(), 23).generate(total);
    for config in [CpuConfig::base_out_of_order(), CpuConfig::base_in_order()] {
        let (batched, reference) = run_both(
            config,
            &trace.cursor(),
            LANE_BATCH / 2,
            total - LANE_BATCH / 2,
            false,
        );
        let latency = batched.0.latency;
        assert!(
            latency.d_primary_misses > 0,
            "gcc must miss in the measured region (engine {:?})",
            config.engine
        );
        assert!(
            latency.d_miss_cycles >= latency.d_primary_misses,
            "every primary miss costs at least one cycle (engine {:?})",
            config.engine
        );
        assert_eq!(
            latency.l2_hit_fills + latency.memory_fills,
            latency.d_primary_misses,
            "every primary miss fills from exactly one level (engine {:?})",
            config.engine
        );
        assert_eq!(latency, reference.0.latency);
    }
}

#[test]
fn batched_engines_match_scalar_reference_on_arbitrary_splits() {
    let profiles = [spec::ammp(), spec::vortex(), spec::swim()];
    check_cases(12, |rng: &mut TestRng| {
        let profile = profiles[rng.below_usize(profiles.len())].clone();
        let total = LANE_BATCH + rng.below_usize(2 * LANE_BATCH);
        let warm = rng.below_usize(total + 1);
        let measure = total - warm;
        let seed = rng.next_u64();
        let name = profile.name;
        let format = if rng.bool() {
            TraceFormat::V2
        } else {
            TraceFormat::V1
        };
        let generator = TraceGenerator::new(profile, seed).with_format(format);
        let trace = generator.generate(total);
        let config = if rng.below(2) == 0 {
            CpuConfig::base_out_of_order()
        } else {
            CpuConfig::base_in_order()
        };
        let hooked = rng.below(2) == 0;
        assert_equivalent(
            config,
            name,
            warm,
            measure,
            hooked,
            "cursor",
            run_both(config, &trace.cursor(), warm, measure, hooked),
        );
        assert_equivalent(
            config,
            name,
            warm,
            measure,
            hooked,
            "stream",
            run_both(config, &generator.stream(total), warm, measure, hooked),
        );
    });
}
