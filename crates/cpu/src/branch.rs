//! Branch predictors: bimodal, gshare, and the combining predictor of the
//! paper's base configuration (Table 2: "combination").

/// Which predictor organisation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredictorKind {
    /// Per-PC two-bit saturating counters.
    Bimodal,
    /// Global-history XOR PC indexed two-bit counters.
    Gshare,
    /// A chooser selects between a bimodal and a gshare component.
    #[default]
    Combining,
}

/// Prediction accuracy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Mispredicted conditional branches.
    pub mispredictions: u64,
}

impl BranchStats {
    /// Misprediction ratio (0 when no branches were seen).
    pub fn mispredict_ratio(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

const TABLE_BITS: usize = 11;
const TABLE_SIZE: usize = 1 << TABLE_BITS;
const HISTORY_BITS: u32 = 10;

fn counter_predict(counter: u8) -> bool {
    counter >= 2
}

/// Two-bit saturating-counter update.
///
/// Both directions are computed and the result selected: `taken` follows the
/// simulated program, so a host branch here is unpredictable, and the
/// combining predictor performs up to three of these per simulated branch.
#[inline(always)]
fn counter_update(counter: &mut u8, taken: bool) {
    let up = (*counter + 1).min(3);
    let down = counter.saturating_sub(1);
    *counter = if taken { up } else { down };
}

/// A branch direction predictor.
///
/// The counter tables are fixed-size boxed arrays rather than `Vec`s: every
/// index is masked with `TABLE_SIZE - 1` before use, so with the length
/// encoded in the type the compiler drops the bounds checks from
/// [`BranchPredictor::resolve`] — which runs once per simulated conditional
/// branch and performs up to four table reads and three writes.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    kind: PredictorKind,
    bimodal: Box<[u8; TABLE_SIZE]>,
    gshare: Box<[u8; TABLE_SIZE]>,
    chooser: Box<[u8; TABLE_SIZE]>,
    history: u64,
    stats: BranchStats,
}

impl BranchPredictor {
    /// Creates a predictor of the given kind with 2K-entry tables.
    pub fn new(kind: PredictorKind) -> Self {
        Self {
            kind,
            bimodal: Box::new([2; TABLE_SIZE]),
            gshare: Box::new([2; TABLE_SIZE]),
            chooser: Box::new([2; TABLE_SIZE]),
            history: 0,
            stats: BranchStats::default(),
        }
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (TABLE_SIZE - 1)
    }

    fn gshare_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) as usize) & (TABLE_SIZE - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        match self.kind {
            PredictorKind::Bimodal => counter_predict(self.bimodal[self.bimodal_index(pc)]),
            PredictorKind::Gshare => counter_predict(self.gshare[self.gshare_index(pc)]),
            PredictorKind::Combining => {
                let use_gshare = counter_predict(self.chooser[self.bimodal_index(pc)]);
                if use_gshare {
                    counter_predict(self.gshare[self.gshare_index(pc)])
                } else {
                    counter_predict(self.bimodal[self.bimodal_index(pc)])
                }
            }
        }
    }

    /// Resolves the branch at `pc`: predicts, updates all tables and
    /// statistics, and returns whether the prediction was correct.
    pub fn resolve(&mut self, pc: u64, taken: bool) -> bool {
        let bimodal_idx = self.bimodal_index(pc);
        let gshare_idx = self.gshare_index(pc);
        let bimodal_pred = counter_predict(self.bimodal[bimodal_idx]);
        let gshare_pred = counter_predict(self.gshare[gshare_idx]);
        // Combine from the component predictions already read rather than
        // re-reading the tables through `predict` (this runs once per
        // conditional branch of every simulation).
        let prediction = match self.kind {
            PredictorKind::Bimodal => bimodal_pred,
            PredictorKind::Gshare => gshare_pred,
            PredictorKind::Combining => {
                if counter_predict(self.chooser[bimodal_idx]) {
                    gshare_pred
                } else {
                    bimodal_pred
                }
            }
        };

        // Chooser learns which component was right (only when they disagree).
        // The no-change case stores the current value back, so the update is
        // a select rather than a branch on simulated data.
        let chooser_cur = self.chooser[bimodal_idx];
        let mut chooser_new = chooser_cur;
        counter_update(&mut chooser_new, gshare_pred == taken);
        self.chooser[bimodal_idx] = if bimodal_pred != gshare_pred {
            chooser_new
        } else {
            chooser_cur
        };
        counter_update(&mut self.bimodal[bimodal_idx], taken);
        counter_update(&mut self.gshare[gshare_idx], taken);
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << HISTORY_BITS) - 1);

        self.stats.predictions += 1;
        let correct = prediction == taken;
        self.stats.mispredictions += u64::from(!correct);
        correct
    }

    /// Accuracy statistics accumulated so far.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new(PredictorKind::Combining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken_branch() {
        let mut p = BranchPredictor::new(PredictorKind::Bimodal);
        for _ in 0..100 {
            p.resolve(0x400, true);
        }
        assert!(p.predict(0x400));
        assert!(p.stats().mispredict_ratio() < 0.1);
    }

    #[test]
    fn learns_alternating_pattern_with_gshare() {
        let mut p = BranchPredictor::new(PredictorKind::Gshare);
        let mut taken = false;
        // Warm up, then measure.
        for _ in 0..200 {
            p.resolve(0x800, taken);
            taken = !taken;
        }
        let before = p.stats().mispredictions;
        for _ in 0..200 {
            p.resolve(0x800, taken);
            taken = !taken;
        }
        let after = p.stats().mispredictions;
        assert!(
            after - before < 20,
            "gshare should capture an alternating pattern, got {} extra misses",
            after - before
        );
    }

    #[test]
    fn combining_tracks_best_component() {
        let mut p = BranchPredictor::new(PredictorKind::Combining);
        // Loop-style branch: taken 15 times, then not taken, repeatedly.
        let mut misses = 0;
        for i in 0..1600 {
            let taken = i % 16 != 15;
            if !p.resolve(0xC00, taken) {
                misses += 1;
            }
        }
        assert!(
            (misses as f64) / 1600.0 < 0.2,
            "combining predictor should do well on loop branches"
        );
    }

    #[test]
    fn random_branches_miss_about_half() {
        let mut p = BranchPredictor::default();
        let mut x = 0x12345u64;
        let mut misses = 0;
        let n = 4000;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let taken = x & 1 == 1;
            if !p.resolve(0x1000, taken) {
                misses += 1;
            }
        }
        let ratio = misses as f64 / n as f64;
        assert!(
            (0.3..=0.65).contains(&ratio),
            "random branches should be near-unpredictable, ratio {ratio}"
        );
    }

    #[test]
    fn stats_ratio_zero_without_predictions() {
        assert_eq!(BranchStats::default().mispredict_ratio(), 0.0);
    }

    #[test]
    fn different_pcs_use_different_entries() {
        let mut p = BranchPredictor::new(PredictorKind::Bimodal);
        for _ in 0..50 {
            p.resolve(0x400, true);
            p.resolve(0x404, false);
        }
        assert!(p.predict(0x400));
        assert!(!p.predict(0x404));
    }
}
