//! The [`Simulator`] facade: picks the engine named by the configuration.

use rescache_cache::MemoryHierarchy;
use rescache_trace::{Trace, TraceSource};

use crate::config::{CpuConfig, EngineKind};
use crate::hook::SimHook;
use crate::inorder::InOrderEngine;
use crate::ooo::OutOfOrderEngine;
use crate::result::SimResult;

/// Runs a trace on the processor configuration's engine.
///
/// # Examples
///
/// ```
/// use rescache_cache::{HierarchyConfig, MemoryHierarchy};
/// use rescache_cpu::{CpuConfig, Simulator};
/// use rescache_trace::{spec, TraceGenerator};
///
/// let trace = TraceGenerator::new(spec::ammp(), 7).generate(2_000);
/// let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
/// let result = Simulator::new(CpuConfig::base_in_order()).run(&trace, &mut hierarchy);
/// assert_eq!(result.instructions, 2_000);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: CpuConfig,
}

impl Simulator {
    /// Creates a simulator for the given processor configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero-sized structures.
    pub fn new(config: CpuConfig) -> Self {
        config.assert_valid();
        Self { config }
    }

    /// The processor configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Replays `trace` against `hierarchy` with no observer hook.
    ///
    /// Dispatches to the engines' monomorphized no-hook entry points, so
    /// plain (non-resizing) simulations pay no per-instruction virtual call
    /// — this is the path every static sweep run takes.
    pub fn run(&self, trace: &Trace, hierarchy: &mut MemoryHierarchy) -> SimResult {
        match self.config.engine {
            EngineKind::InOrderBlocking => InOrderEngine::new(self.config).run(trace, hierarchy),
            EngineKind::OutOfOrderNonBlocking => {
                OutOfOrderEngine::new(self.config).run(trace, hierarchy)
            }
        }
    }

    /// Replays `trace` against `hierarchy`, invoking `hook` after every
    /// committed instruction.
    pub fn run_with_hook(
        &self,
        trace: &Trace,
        hierarchy: &mut MemoryHierarchy,
        hook: &mut dyn SimHook,
    ) -> SimResult {
        match self.config.engine {
            EngineKind::InOrderBlocking => {
                InOrderEngine::new(self.config).run_with_hook(trace, hierarchy, hook)
            }
            EngineKind::OutOfOrderNonBlocking => {
                OutOfOrderEngine::new(self.config).run_with_hook(trace, hierarchy, hook)
            }
        }
    }

    /// Consumes `source` chunk by chunk against `hierarchy` with no observer
    /// hook — the streaming twin of [`Simulator::run`]. With a
    /// [`rescache_trace::TraceStream`] source, generation and simulation
    /// interleave per chunk and only one chunk buffer is ever resident.
    pub fn run_source<S: TraceSource>(
        &self,
        source: &mut S,
        hierarchy: &mut MemoryHierarchy,
    ) -> SimResult {
        match self.config.engine {
            EngineKind::InOrderBlocking => {
                InOrderEngine::new(self.config).run_source(source, hierarchy)
            }
            EngineKind::OutOfOrderNonBlocking => {
                OutOfOrderEngine::new(self.config).run_source(source, hierarchy)
            }
        }
    }

    /// Consumes `source` chunk by chunk, invoking `hook` after every
    /// committed instruction.
    pub fn run_source_with_hook<S: TraceSource>(
        &self,
        source: &mut S,
        hierarchy: &mut MemoryHierarchy,
        hook: &mut dyn SimHook,
    ) -> SimResult {
        match self.config.engine {
            EngineKind::InOrderBlocking => {
                InOrderEngine::new(self.config).run_source_with_hook(source, hierarchy, hook)
            }
            EngineKind::OutOfOrderNonBlocking => {
                OutOfOrderEngine::new(self.config).run_source_with_hook(source, hierarchy, hook)
            }
        }
    }

    /// The experiment sequence over one source on the configured engine with
    /// no observer hook: runs the next `warm` records (the warm-up region),
    /// resets the hierarchy statistics, then runs the following `measure`
    /// records and returns that region's result.
    ///
    /// Each region is a fresh engine invocation (pipeline, predictor, window
    /// and fetch state restart; cache state carries over), exactly as the
    /// materialized two-trace path behaves — so a streamed warm/measure run
    /// is bit-identical to splitting the trace up front (asserted by
    /// `tests/dynamic_streaming_equivalence.rs`). With a
    /// [`rescache_trace::TraceStream`] or an on-disk
    /// [`rescache_trace::TraceFileSource`] only one chunk buffer is resident,
    /// and like [`Simulator::run_source`] the engine loops monomorphize over
    /// the no-op hook — no per-instruction virtual call.
    pub fn run_warm_measure<S: TraceSource>(
        &self,
        source: &mut S,
        warm: usize,
        measure: usize,
        hierarchy: &mut MemoryHierarchy,
    ) -> SimResult {
        let start = source.position();
        source.split_at(start + warm);
        self.run_source(source, hierarchy);
        hierarchy.reset_stats();
        source.split_at(start + warm + measure);
        self.run_source(source, hierarchy)
    }

    /// [`Simulator::run_warm_measure`] with `hook` invoked after every
    /// committed instruction of both regions (hook state carries across the
    /// warm/measure boundary — this is how the dynamic resizing controller
    /// rides a streamed experiment).
    pub fn run_warm_measure_with_hook<S: TraceSource>(
        &self,
        source: &mut S,
        warm: usize,
        measure: usize,
        hierarchy: &mut MemoryHierarchy,
        hook: &mut dyn SimHook,
    ) -> SimResult {
        let start = source.position();
        source.split_at(start + warm);
        self.run_source_with_hook(source, hierarchy, hook);
        hierarchy.reset_stats();
        source.split_at(start + warm + measure);
        self.run_source_with_hook(source, hierarchy, hook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescache_cache::HierarchyConfig;
    use rescache_trace::{spec, TraceGenerator};

    #[test]
    fn dispatches_to_the_configured_engine() {
        let trace = TraceGenerator::new(spec::compress(), 9).generate(10_000);
        let mut h1 = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut h2 = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let ooo = Simulator::new(CpuConfig::base_out_of_order()).run(&trace, &mut h1);
        let ino = Simulator::new(CpuConfig::base_in_order()).run(&trace, &mut h2);
        assert_eq!(ooo.instructions, ino.instructions);
        assert_ne!(
            ooo.cycles, ino.cycles,
            "the two engines have different timing"
        );
    }

    #[test]
    fn warm_measure_split_matches_the_two_trace_sequence() {
        use crate::hook::NoopHook;
        let warm = 3_000;
        let measure = 9_000;
        let generator = TraceGenerator::new(spec::su2cor(), 5);
        let full = generator.generate(warm + measure);
        let (warm_trace, measure_trace) = full.split_at(warm);

        for config in [CpuConfig::base_in_order(), CpuConfig::base_out_of_order()] {
            let sim = Simulator::new(config);

            let mut h_mat = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
            sim.run(&warm_trace, &mut h_mat);
            h_mat.reset_stats();
            let materialized = sim.run(&measure_trace, &mut h_mat);

            let mut stream = generator.stream(warm + measure);
            let mut h_stream = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
            let streamed = sim.run_warm_measure(&mut stream, warm, measure, &mut h_stream);

            let mut stream = generator.stream(warm + measure);
            let mut h_hook = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
            let hooked = sim.run_warm_measure_with_hook(
                &mut stream,
                warm,
                measure,
                &mut h_hook,
                &mut NoopHook,
            );

            assert_eq!(materialized, streamed, "{config:?}");
            assert_eq!(materialized, hooked, "{config:?}");
            assert_eq!(h_mat.snapshot(), h_stream.snapshot(), "{config:?}");
            assert_eq!(h_mat.snapshot(), h_hook.snapshot(), "{config:?}");
        }
    }

    #[test]
    fn results_are_deterministic() {
        let trace = TraceGenerator::new(spec::vpr(), 1).generate(5_000);
        let sim = Simulator::new(CpuConfig::base_out_of_order());
        let mut h1 = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut h2 = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        assert_eq!(sim.run(&trace, &mut h1), sim.run(&trace, &mut h2));
    }
}
