//! Processor configuration.

/// Which execution engine to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// In-order issue with a blocking data cache: every d-cache miss stalls
    /// the pipeline until the fill returns.
    InOrderBlocking,
    /// Out-of-order issue with a non-blocking data cache: misses overlap with
    /// independent work, bounded by the ROB, LSQ and MSHRs.
    OutOfOrderNonBlocking,
}

/// Processor configuration (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuConfig {
    /// Execution engine kind.
    pub engine: EngineKind,
    /// Instructions issued / decoded / committed per cycle (4 in Table 2).
    pub issue_width: u32,
    /// Reorder-buffer entries (64 in Table 2).
    pub rob_entries: usize,
    /// Load/store-queue entries (32 in Table 2).
    pub lsq_entries: usize,
    /// Miss-status holding registers for the non-blocking d-cache (8).
    pub mshr_entries: usize,
    /// Branch misprediction penalty in cycles (front-end refill).
    pub mispredict_penalty: u64,
    /// Execution latency of integer ALU operations.
    pub int_latency: u64,
    /// Execution latency of floating-point operations.
    pub fp_latency: u64,
}

impl CpuConfig {
    /// The paper's base configuration: four-way out-of-order issue with a
    /// non-blocking d-cache.
    pub fn base_out_of_order() -> Self {
        Self {
            engine: EngineKind::OutOfOrderNonBlocking,
            issue_width: 4,
            rob_entries: 64,
            lsq_entries: 32,
            mshr_entries: 8,
            mispredict_penalty: 7,
            int_latency: 1,
            fp_latency: 3,
        }
    }

    /// The paper's alternative configuration: in-order issue with a blocking
    /// d-cache (Section 4.2), used to expose d-cache miss latency.
    pub fn base_in_order() -> Self {
        Self {
            engine: EngineKind::InOrderBlocking,
            ..Self::base_out_of_order()
        }
    }

    /// Validates structural parameters.
    ///
    /// # Panics
    ///
    /// Panics if any width or queue size is zero.
    pub fn assert_valid(&self) {
        assert!(self.issue_width > 0, "issue width must be positive");
        assert!(self.rob_entries > 0, "ROB must have entries");
        assert!(self.lsq_entries > 0, "LSQ must have entries");
        assert!(self.mshr_entries > 0, "MSHR file must have entries");
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::base_out_of_order()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_table_2() {
        let c = CpuConfig::base_out_of_order();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.rob_entries, 64);
        assert_eq!(c.lsq_entries, 32);
        assert_eq!(c.mshr_entries, 8);
        assert_eq!(c.engine, EngineKind::OutOfOrderNonBlocking);
        c.assert_valid();
    }

    #[test]
    fn in_order_variant_differs_only_in_engine() {
        let ooo = CpuConfig::base_out_of_order();
        let ino = CpuConfig::base_in_order();
        assert_eq!(ino.engine, EngineKind::InOrderBlocking);
        assert_eq!(ino.issue_width, ooo.issue_width);
        assert_eq!(ino.rob_entries, ooo.rob_entries);
    }

    #[test]
    #[should_panic(expected = "issue width")]
    fn zero_width_is_invalid() {
        let mut c = CpuConfig::base_out_of_order();
        c.issue_width = 0;
        c.assert_valid();
    }

    #[test]
    fn default_is_out_of_order() {
        assert_eq!(
            CpuConfig::default().engine,
            EngineKind::OutOfOrderNonBlocking
        );
    }
}
