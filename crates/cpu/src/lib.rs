//! Trace-driven in-order and out-of-order processor models with activity
//! accounting.
//!
//! The HPCA 2002 resizable-cache study evaluates two processor
//! configurations, because the win of dynamic over static resizing hinges on
//! whether cache-miss latency is exposed to the execution's critical path:
//!
//! * an **in-order issue engine with a blocking d-cache** — every d-cache
//!   miss stalls the pipeline, i-cache misses are comparatively less critical;
//! * an **out-of-order issue engine with a non-blocking d-cache** (the base
//!   configuration of Table 2: 4-wide, 64-entry ROB, 32-entry LSQ, 8 MSHRs) —
//!   d-cache misses largely overlap with independent work, i-cache misses
//!   stall fetch and are exposed.
//!
//! Both engines are trace-driven: they replay a [`rescache_trace::Trace`]
//! against a [`rescache_cache::MemoryHierarchy`], produce a cycle count and
//! per-structure [`ActivityCounters`] for the energy model, and invoke a
//! [`SimHook`] after every committed instruction so that resizing controllers
//! (in `rescache-core`) can observe and resize the caches mid-run.
//!
//! # Example
//!
//! ```
//! use rescache_cache::{HierarchyConfig, MemoryHierarchy};
//! use rescache_cpu::{CpuConfig, Simulator};
//! use rescache_trace::{spec, TraceGenerator};
//!
//! let trace = TraceGenerator::new(spec::m88ksim(), 1).generate(5_000);
//! let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
//! let result = Simulator::new(CpuConfig::base_out_of_order()).run(&trace, &mut hierarchy);
//! assert!(result.cycles > 0);
//! assert_eq!(result.instructions, 5_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod branch;
pub mod config;
pub mod fetch;
pub mod hook;
pub mod inorder;
pub mod lanes;
pub mod lsq;
pub mod ooo;
pub mod result;
pub mod rob;
pub mod scalar;
pub mod simulator;

pub use activity::ActivityCounters;
pub use branch::{BranchPredictor, BranchStats, PredictorKind};
pub use config::{CpuConfig, EngineKind};
pub use fetch::FetchUnit;
pub use hook::{NoopHook, SimHook};
pub use inorder::InOrderEngine;
pub use lanes::{BatchTotals, LaneBatch, COMPLETION_RING, LANE_BATCH};
pub use lsq::LoadStoreQueue;
pub use ooo::OutOfOrderEngine;
pub use result::{LatencyStats, SimResult};
pub use rob::ReorderBuffer;
pub use simulator::Simulator;
