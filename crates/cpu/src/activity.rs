//! Per-structure activity counters for the energy model.
//!
//! Wattch charges each processor structure per access and scales by activity;
//! these counters are the activity side of that contract. Cache accesses are
//! counted by the caches themselves (`rescache_cache::CacheStats`), so only
//! the core-pipeline structures appear here.

/// Activity counts accumulated during one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounters {
    /// Instructions fetched (front-end occupancy).
    pub fetched: u64,
    /// Instructions renamed / dispatched into the window.
    pub dispatched: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Integer ALU operations executed.
    pub int_alu_ops: u64,
    /// Floating-point operations executed.
    pub fp_ops: u64,
    /// Load/store-queue accesses (one per memory operation).
    pub lsq_accesses: u64,
    /// Reorder-buffer accesses (dispatch, writeback and commit touches).
    pub rob_accesses: u64,
    /// Register-file read ports exercised.
    pub regfile_reads: u64,
    /// Register-file write ports exercised.
    pub regfile_writes: u64,
    /// Result-bus transfers (one per completing instruction).
    pub result_bus: u64,
    /// Branch-predictor accesses (lookup plus update).
    pub bpred_accesses: u64,
}

impl ActivityCounters {
    /// Builds the counters for a completed run of `instructions` committed
    /// instructions in one step.
    ///
    /// Every instruction is fetched, dispatched, executed and committed
    /// exactly once in both engines, so all per-instruction counters are
    /// derivable from the totals; the engines accumulate only the four inputs
    /// that vary per instruction and call this once per run instead of
    /// updating eleven counters per instruction in the hot loop. The result
    /// is identical to calling `record_dispatch` / `record_execute` /
    /// `record_commit` (and `record_branch` per branch) for each instruction.
    pub fn from_run_totals(
        instructions: u64,
        fp_ops: u64,
        mem_ops: u64,
        branches: u64,
        regfile_reads: u64,
    ) -> Self {
        Self {
            fetched: instructions,
            dispatched: instructions,
            committed: instructions,
            int_alu_ops: instructions - fp_ops,
            fp_ops,
            lsq_accesses: mem_ops,
            // Dispatch, writeback and commit each touch the ROB once.
            rob_accesses: 3 * instructions,
            regfile_reads,
            regfile_writes: instructions,
            result_bus: instructions,
            bpred_accesses: 2 * branches,
        }
    }

    /// Records the front-end and dispatch work for one instruction with the
    /// given number of register sources.
    pub fn record_dispatch(&mut self, sources: u32) {
        self.fetched += 1;
        self.dispatched += 1;
        self.rob_accesses += 1;
        self.regfile_reads += u64::from(sources);
    }

    /// Records execution of one instruction.
    pub fn record_execute(&mut self, is_fp: bool, is_mem: bool) {
        if is_fp {
            self.fp_ops += 1;
        } else {
            self.int_alu_ops += 1;
        }
        if is_mem {
            self.lsq_accesses += 1;
        }
        self.result_bus += 1;
        self.regfile_writes += 1;
        self.rob_accesses += 1;
    }

    /// Records commit of one instruction.
    pub fn record_commit(&mut self) {
        self.committed += 1;
        self.rob_accesses += 1;
    }

    /// Records one branch-predictor lookup-and-update pair.
    pub fn record_branch(&mut self) {
        self.bpred_accesses += 2;
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &ActivityCounters) {
        self.fetched += other.fetched;
        self.dispatched += other.dispatched;
        self.committed += other.committed;
        self.int_alu_ops += other.int_alu_ops;
        self.fp_ops += other.fp_ops;
        self.lsq_accesses += other.lsq_accesses;
        self.rob_accesses += other.rob_accesses;
        self.regfile_reads += other.regfile_reads;
        self.regfile_writes += other.regfile_writes;
        self.result_bus += other.result_bus;
        self.bpred_accesses += other.bpred_accesses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_execute_commit_sequence() {
        let mut a = ActivityCounters::default();
        a.record_dispatch(2);
        a.record_execute(false, true);
        a.record_commit();
        assert_eq!(a.fetched, 1);
        assert_eq!(a.dispatched, 1);
        assert_eq!(a.committed, 1);
        assert_eq!(a.int_alu_ops, 1);
        assert_eq!(a.lsq_accesses, 1);
        assert_eq!(a.rob_accesses, 3);
        assert_eq!(a.regfile_reads, 2);
        assert_eq!(a.regfile_writes, 1);
    }

    #[test]
    fn fp_ops_counted_separately() {
        let mut a = ActivityCounters::default();
        a.record_execute(true, false);
        assert_eq!(a.fp_ops, 1);
        assert_eq!(a.int_alu_ops, 0);
        assert_eq!(a.lsq_accesses, 0);
    }

    #[test]
    fn branch_counts_lookup_and_update() {
        let mut a = ActivityCounters::default();
        a.record_branch();
        assert_eq!(a.bpred_accesses, 2);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = ActivityCounters::default();
        a.record_dispatch(1);
        let mut b = ActivityCounters::default();
        b.record_dispatch(2);
        b.record_commit();
        a.merge(&b);
        assert_eq!(a.dispatched, 2);
        assert_eq!(a.committed, 1);
        assert_eq!(a.regfile_reads, 3);
    }
}
