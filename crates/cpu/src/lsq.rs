//! A load/store queue modelled as a bounded window of in-flight memory
//! operations.

/// The load/store queue of the out-of-order engine.
///
/// Memory operations occupy an entry from dispatch until they complete; when
/// the queue is full, dispatch of the next memory operation stalls until the
/// oldest in-flight operation finishes.
///
/// Like the reorder buffer, the storage is a fixed ring over a boxed slice
/// (one entry per in-flight operation, oldest at `head`): `reserve` runs once
/// per simulated memory operation, so the push/retire pair stays a few
/// arithmetic operations with no queue-growth logic.
#[derive(Debug, Clone)]
pub struct LoadStoreQueue {
    /// Completion cycles, oldest at `head`, `len` entries in use.
    completions: Box<[u64]>,
    head: usize,
    len: usize,
}

impl LoadStoreQueue {
    /// Creates a queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LSQ capacity must be positive");
        Self {
            completions: vec![0; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Number of in-flight memory operations at `cycle` (completed entries
    /// are retired lazily).
    pub fn occupancy(&mut self, cycle: u64) -> usize {
        self.retire(cycle);
        self.len
    }

    /// Retires every operation that has completed by `cycle`.
    #[inline]
    pub fn retire(&mut self, cycle: u64) {
        while self.len > 0 && self.completions[self.head] <= cycle {
            self.head += 1;
            if self.head == self.completions.len() {
                self.head = 0;
            }
            self.len -= 1;
        }
    }

    /// Reserves an entry for a memory operation dispatched at `cycle` and
    /// completing at `completion`. Returns the cycle at which the entry
    /// becomes available (equal to `cycle` unless the queue was full).
    #[inline]
    pub fn reserve(&mut self, cycle: u64, completion: u64) -> u64 {
        self.retire(cycle);
        let capacity = self.completions.len();
        let available = if self.len >= capacity {
            let wait_until = self.completions[self.head];
            self.retire(wait_until);
            wait_until.max(cycle)
        } else {
            cycle
        };
        let mut tail = self.head + self.len;
        if tail >= capacity {
            tail -= capacity;
        }
        self.completions[tail] = completion.max(available);
        self.len += 1;
        available
    }

    /// [`LoadStoreQueue::reserve`] expressed as the *delay* queue pressure
    /// adds to the operation: 0 when an entry was free at `cycle`, otherwise
    /// the cycles until the oldest in-flight operation vacated one.
    ///
    /// The engines' completion arithmetic is
    /// `finish + reserve_delay(ready, finish)`, which keeps the common
    /// no-pressure case a plain add of zero.
    #[inline(always)]
    pub fn reserve_delay(&mut self, cycle: u64, completion: u64) -> u64 {
        self.reserve(cycle, completion) - cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_without_pressure_is_immediate() {
        let mut lsq = LoadStoreQueue::new(2);
        assert_eq!(lsq.reserve(5, 10), 5);
        assert_eq!(lsq.occupancy(5), 1);
    }

    #[test]
    fn full_queue_delays_dispatch() {
        let mut lsq = LoadStoreQueue::new(1);
        lsq.reserve(0, 100);
        assert_eq!(lsq.reserve(3, 110), 100, "must wait for the oldest entry");
    }

    #[test]
    fn completed_entries_retire() {
        let mut lsq = LoadStoreQueue::new(1);
        lsq.reserve(0, 10);
        assert_eq!(lsq.occupancy(20), 0);
        assert_eq!(lsq.reserve(20, 30), 20);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = LoadStoreQueue::new(0);
    }

    #[test]
    fn reserve_delay_is_reserve_relative_to_dispatch() {
        let mut lsq = LoadStoreQueue::new(1);
        assert_eq!(lsq.reserve_delay(0, 100), 0, "free entry: no delay");
        assert_eq!(
            lsq.reserve_delay(3, 110),
            97,
            "full queue: wait until cycle 100"
        );
    }
}
