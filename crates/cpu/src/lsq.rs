//! A load/store queue modelled as a bounded window of in-flight memory
//! operations.

use std::collections::VecDeque;

/// The load/store queue of the out-of-order engine.
///
/// Memory operations occupy an entry from dispatch until they complete; when
/// the queue is full, dispatch of the next memory operation stalls until the
/// oldest in-flight operation finishes.
#[derive(Debug, Clone)]
pub struct LoadStoreQueue {
    capacity: usize,
    completions: VecDeque<u64>,
}

impl LoadStoreQueue {
    /// Creates a queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LSQ capacity must be positive");
        Self {
            capacity,
            completions: VecDeque::with_capacity(capacity),
        }
    }

    /// Number of in-flight memory operations at `cycle` (completed entries
    /// are retired lazily).
    pub fn occupancy(&mut self, cycle: u64) -> usize {
        self.retire(cycle);
        self.completions.len()
    }

    /// Retires every operation that has completed by `cycle`.
    pub fn retire(&mut self, cycle: u64) {
        while let Some(front) = self.completions.front() {
            if *front <= cycle {
                self.completions.pop_front();
            } else {
                break;
            }
        }
    }

    /// Reserves an entry for a memory operation dispatched at `cycle` and
    /// completing at `completion`. Returns the cycle at which the entry
    /// becomes available (equal to `cycle` unless the queue was full).
    pub fn reserve(&mut self, cycle: u64, completion: u64) -> u64 {
        self.retire(cycle);
        let available = if self.completions.len() >= self.capacity {
            let wait_until = *self
                .completions
                .front()
                .expect("full queue has a front entry");
            self.retire(wait_until);
            wait_until.max(cycle)
        } else {
            cycle
        };
        self.completions.push_back(completion.max(available));
        available
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_without_pressure_is_immediate() {
        let mut lsq = LoadStoreQueue::new(2);
        assert_eq!(lsq.reserve(5, 10), 5);
        assert_eq!(lsq.occupancy(5), 1);
    }

    #[test]
    fn full_queue_delays_dispatch() {
        let mut lsq = LoadStoreQueue::new(1);
        lsq.reserve(0, 100);
        assert_eq!(lsq.reserve(3, 110), 100, "must wait for the oldest entry");
    }

    #[test]
    fn completed_entries_retire() {
        let mut lsq = LoadStoreQueue::new(1);
        lsq.reserve(0, 10);
        assert_eq!(lsq.occupancy(20), 0);
        assert_eq!(lsq.reserve(20, 30), 20);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = LoadStoreQueue::new(0);
    }
}
