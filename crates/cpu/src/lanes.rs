//! The batched decode front end shared by both execution engines.
//!
//! Both engines consume a [`rescache_trace::TraceSource`] whose chunks carry
//! packed [`InstrRecord`]s. The timing loops are serial by nature — every
//! instruction's dispatch cycle depends on its predecessor's — but a share of
//! the per-record work is *not* serial: classifying the operation, counting
//! activity (FP/memory/branch populations and register-file reads), and
//! deciding whether the instruction starts a new fetch group are all pure
//! functions of the record stream. Interleaving that work with the timing
//! recurrence keeps it on the critical dependency chain.
//!
//! [`LaneBatch::decode`] hoists it into one branch-light pass per batch:
//! a *dispatch lane* of one byte per record (the raw kind tag with the
//! i-cache-access mark — the PC-pure half of the [`FetchUnit`] — in the top
//! bit) plus the batch's activity totals, accumulated as four scalars. The
//! timing loop then zips the records with the dispatch lane: per-kind
//! dispatch reads one precomputed byte (the ALU-latency split is a two-entry
//! table lookup, not a branch), and no counters or group tracking remain in
//! the loop.
//!
//! A full struct-of-arrays transpose (separate kind/PC/address/dependency
//! lanes) was measured here first and *lost* 6–19 % against the scalar
//! loops: the 12-byte packed record is already the densest layout the timing
//! loop can stream, and mirroring it into six lanes only added memory
//! traffic. The dispatch lane keeps the batching win — classification and
//! accounting off the serial chain — at one byte per record.
//!
//! The batch width equals [`CHUNK_RECORDS`], so a streamed source's chunks
//! (the dynamic-controller path included) map one-to-one onto batches with no
//! extra buffering; a materialized cursor's whole-window chunk is simply
//! sub-sliced into batch-width pieces. Batch boundaries are invisible to the
//! timing loop: results are bit-identical whatever the chunking (pinned by
//! `tests/batch_boundaries.rs` against the scalar reference engines in
//! [`crate::scalar`]).
//!
//! On the store-serve path the chunk slices handed to [`LaneBatch::decode`]
//! alias the codec's own decode buffer: a v3 compressed entry is expanded
//! delta-compressed chunk by chunk straight into that buffer, and the file
//! source serves sub-slices of it with no intermediate record `Vec` between
//! disk bytes and this front end.

use rescache_trace::{kind, InstrRecord, CHUNK_RECORDS};

use crate::fetch::FetchUnit;

/// Records per decoded batch; equal to the streaming chunk size so streamed
/// chunks decode one-to-one into batches.
pub const LANE_BATCH: usize = CHUNK_RECORDS;

/// Bit set in a dispatch-lane byte when the instruction starts a new fetch
/// group and must access the i-cache at its dispatch cycle.
pub const ICACHE_FLAG: u8 = 0x80;

/// Mask extracting the raw kind tag from a dispatch-lane byte.
pub const KIND_MASK: u8 = 0x7f;

/// Ring-buffer size for producer completion times. Valid dependency
/// distances are `1..=COMPLETION_RING`; see [`producer_ready`] for how
/// out-of-range distances are resolved (generated traces never exceed 63).
pub const COMPLETION_RING: usize = 128;

/// Activity totals of one decoded batch, accumulated during the decode pass
/// so the timing loop carries no per-instruction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchTotals {
    /// Floating-point operations in the batch.
    pub fp_ops: u64,
    /// Loads and stores in the batch.
    pub mem_ops: u64,
    /// Conditional branches in the batch.
    pub branches: u64,
    /// Register-file reads (non-zero dependency distances) in the batch.
    pub regfile_reads: u64,
}

/// A reusable buffer holding one decoded batch's dispatch lane and totals.
///
/// Allocated once per engine run ([`LANE_BATCH`] capacity, 8 KiB) and
/// refilled per batch by [`LaneBatch::decode`].
#[derive(Debug)]
pub struct LaneBatch {
    len: usize,
    dispatch: Box<[u8]>,
    totals: BatchTotals,
}

impl LaneBatch {
    /// Creates an empty batch buffer with [`LANE_BATCH`] capacity.
    pub fn new() -> Self {
        Self {
            len: 0,
            dispatch: vec![0; LANE_BATCH].into_boxed_slice(),
            totals: BatchTotals::default(),
        }
    }

    /// Number of records in the currently decoded batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no batch has been decoded (or the last one was empty).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Activity totals of the currently decoded batch.
    pub fn totals(&self) -> BatchTotals {
        self.totals
    }

    /// The decoded dispatch lane: per record, the raw kind tag with
    /// [`ICACHE_FLAG`] set when the instruction starts a new fetch group.
    pub fn dispatch(&self) -> &[u8] {
        &self.dispatch[..self.len]
    }

    /// Decodes `records` into the dispatch lane and accumulates the batch's
    /// activity totals.
    ///
    /// `fetch` supplies (and advances) the PC-pure fetch-group tracking; the
    /// i-cache accesses themselves are performed later, in program order, by
    /// the timing loop wherever [`ICACHE_FLAG`] is set.
    ///
    /// # Panics
    ///
    /// Panics if `records` exceeds [`LANE_BATCH`] entries.
    pub fn decode(&mut self, records: &[InstrRecord], fetch: &mut FetchUnit) {
        let n = records.len();
        assert!(n <= LANE_BATCH, "batch of {n} exceeds {LANE_BATCH} records");
        self.len = n;
        let dispatch = &mut self.dispatch[..n];
        let mut totals = BatchTotals::default();
        for (slot, rec) in dispatch.iter_mut().zip(records) {
            let k = rec.kind_tag();
            let group = fetch.advance_group(rec.pc());
            *slot = k | (u8::from(group) << 7);
            totals.fp_ops += u64::from(k == kind::FP);
            totals.mem_ops += u64::from(k == kind::LOAD || k == kind::STORE);
            totals.branches += u64::from(k >= kind::BRANCH_NOT_TAKEN);
            totals.regfile_reads += u64::from(rec.dep1() > 0) + u64::from(rec.dep2() > 0);
        }
        self.totals = totals;
    }
}

impl Default for LaneBatch {
    fn default() -> Self {
        Self::new()
    }
}

/// Completion cycle of the producer `distance` instructions before `idx`,
/// or 0 if there is no such producer (shared by both engines).
///
/// The ring read is unconditional (the index is masked into range) and the
/// no-producer case resolves through a select rather than a branch: the
/// dependency distances follow the simulated program, so a host branch here
/// is unpredictable, and this runs twice per simulated instruction.
///
/// Distances are saturated against the ring capacity: the ring slot for
/// `distance == COMPLETION_RING` still holds that exact producer's completion
/// (it is overwritten only after the current instruction's operands are
/// read), but any larger distance would alias a *younger* instruction's slot,
/// so distances beyond `COMPLETION_RING` — which generated traces never emit
/// (their maximum is 63) but hand-built or foreign decoded traces may carry —
/// are treated as producers that have long since completed, exactly like the
/// pre-history case `distance > idx`.
#[inline(always)]
pub fn producer_ready(completion: &[u64; COMPLETION_RING], idx: usize, distance: u8) -> u64 {
    let distance = distance as usize;
    let value = completion[idx.wrapping_sub(distance) % COMPLETION_RING];
    if distance == 0 || distance > idx || distance > COMPLETION_RING {
        0
    } else {
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescache_trace::Op;

    fn sample_records() -> Vec<InstrRecord> {
        (0..20u64)
            .map(|i| {
                let op = match i % 5 {
                    0 => Op::Load(0x10_0000 + i * 64),
                    1 => Op::Fp,
                    2 => Op::Store(0x20_0000 + i * 64),
                    3 => Op::Branch { taken: i % 2 == 1 },
                    _ => Op::Int,
                };
                InstrRecord::with_deps(0x40_0000 + i * 4, op, (i % 3) as u8, (i % 7) as u8)
            })
            .collect()
    }

    #[test]
    fn decode_tags_and_group_marks_match_the_records() {
        let records = sample_records();
        let mut decode_fetch = FetchUnit::new(32, 4);
        let mut lanes = LaneBatch::new();
        lanes.decode(&records, &mut decode_fetch);
        assert_eq!(lanes.len(), records.len());
        assert!(!lanes.is_empty());

        let mut reference_fetch = FetchUnit::new(32, 4);
        for (&flags, rec) in lanes.dispatch().iter().zip(&records) {
            assert_eq!(flags & KIND_MASK, rec.kind_tag());
            assert_eq!(
                flags & ICACHE_FLAG != 0,
                reference_fetch.advance_group(rec.pc()),
                "group mark at pc {:#x}",
                rec.pc()
            );
        }
    }

    #[test]
    fn decode_totals_match_a_scalar_count() {
        let records = sample_records();
        let mut fetch = FetchUnit::new(32, 4);
        let mut lanes = LaneBatch::new();
        lanes.decode(&records, &mut fetch);
        let expected = BatchTotals {
            fp_ops: records.iter().filter(|r| r.op() == Op::Fp).count() as u64,
            mem_ops: records.iter().filter(|r| r.op().is_mem()).count() as u64,
            branches: records.iter().filter(|r| r.op().is_branch()).count() as u64,
            regfile_reads: records
                .iter()
                .map(|r| u64::from(r.dep1() > 0) + u64::from(r.dep2() > 0))
                .sum(),
        };
        assert_eq!(lanes.totals(), expected);
    }

    #[test]
    fn decode_reuses_the_buffer_across_batches() {
        let records = sample_records();
        let mut fetch = FetchUnit::new(32, 4);
        let mut lanes = LaneBatch::new();
        lanes.decode(&records, &mut fetch);
        lanes.decode(&records[..3], &mut fetch);
        assert_eq!(lanes.len(), 3);
        assert_eq!(lanes.dispatch().len(), 3);
        lanes.decode(&[], &mut fetch);
        assert!(lanes.is_empty());
        assert_eq!(lanes.totals(), BatchTotals::default());
    }

    #[test]
    fn producer_ready_reads_in_ring_producers() {
        let mut completion = [0u64; COMPLETION_RING];
        completion[5] = 42;
        assert_eq!(producer_ready(&completion, 6, 1), 42);
        assert_eq!(producer_ready(&completion, 6, 0), 0, "no producer");
        assert_eq!(producer_ready(&completion, 6, 7), 0, "pre-history");
    }

    #[test]
    fn producer_ready_full_ring_distance_reads_the_exact_producer() {
        // Slot idx % RING is written *after* operands are read, so it still
        // holds the completion of the instruction exactly RING back.
        let mut completion = [0u64; COMPLETION_RING];
        let idx = 300usize;
        completion[(idx - COMPLETION_RING) % COMPLETION_RING] = 77;
        assert_eq!(producer_ready(&completion, idx, COMPLETION_RING as u8), 77);
    }

    #[test]
    fn producer_ready_saturates_beyond_the_ring() {
        // A distance one past the ring would alias the slot written one
        // iteration ago (a *younger* instruction); the saturation returns
        // "long completed" instead.
        let completion = [7777u64; COMPLETION_RING];
        for distance in [129u8, 200, 255] {
            assert_eq!(
                producer_ready(&completion, 300, distance),
                0,
                "distance {distance} exceeds the ring and must read as complete"
            );
        }
    }
}
