//! Scalar (per-record) reference implementations of both engines.
//!
//! These are the pre-batching engine loops, kept verbatim as differential
//! oracles: they consume records one at a time straight from the source
//! chunks, with no struct-of-arrays decode, no precomputed fetch-group
//! marks and no batched activity totals. The batched pipelines in
//! [`crate::ooo`] and [`crate::inorder`] are required to be bit-identical to
//! these loops on every source, chunking and split plan — asserted by the
//! `batch_boundaries` property tests — so any divergence localizes a bug to
//! the batching layer.
//!
//! Both references share the engines' building blocks ([`FetchUnit`],
//! [`ReorderBuffer`], [`LoadStoreQueue`], [`BranchPredictor`],
//! [`producer_ready`]) on purpose: the differential pins the *batch
//! restructuring*, not the microarchitectural model.
//!
//! This module is not part of the supported API surface; it exists for the
//! test suite and is hidden from documentation.

#![doc(hidden)]

use rescache_cache::{MemoryHierarchy, MshrFile};
use rescache_trace::{Op, TraceSource};

use crate::activity::ActivityCounters;
use crate::branch::BranchPredictor;
use crate::config::{CpuConfig, EngineKind};
use crate::fetch::FetchUnit;
use crate::hook::SimHook;
use crate::lanes::{producer_ready, COMPLETION_RING};
use crate::lsq::LoadStoreQueue;
use crate::result::{LatencyStats, SimResult};
use crate::rob::ReorderBuffer;

/// Dispatches to the scalar reference loop of the configuration's engine —
/// the reference twin of `Simulator::run_source_with_hook`.
pub fn run_engine_reference<S: TraceSource, H: SimHook + ?Sized>(
    cfg: &CpuConfig,
    source: &mut S,
    hierarchy: &mut MemoryHierarchy,
    hook: &mut H,
) -> SimResult {
    match cfg.engine {
        EngineKind::InOrderBlocking => run_inorder_reference(cfg, source, hierarchy, hook),
        EngineKind::OutOfOrderNonBlocking => run_ooo_reference(cfg, source, hierarchy, hook),
    }
}

/// Per-record reference of the out-of-order engine loop.
pub fn run_ooo_reference<S: TraceSource, H: SimHook + ?Sized>(
    cfg: &CpuConfig,
    source: &mut S,
    hierarchy: &mut MemoryHierarchy,
    hook: &mut H,
) -> SimResult {
    let mut dispatch_cycle: u64 = 1;
    let mut dispatched_this_cycle: u32 = 0;
    let mut fetch_resume_cycle: u64 = 0;
    let mut completion = [0u64; COMPLETION_RING];
    let mut rob = ReorderBuffer::new(cfg.rob_entries, cfg.issue_width);
    let mut lsq = LoadStoreQueue::new(cfg.lsq_entries);
    let mut mshr = MshrFile::new(cfg.mshr_entries);
    let mut fetch = FetchUnit::new(hierarchy.config().l1i.block_bytes, cfg.issue_width);
    let mut predictor = BranchPredictor::default();
    let mut last_forced_commit: u64 = 0;
    let block_shift = hierarchy.config().l1d.block_bytes.max(1).trailing_zeros();
    let store_latency_cap = hierarchy.config().l1d.hit_latency + 1;
    let mut fp_ops: u64 = 0;
    let mut mem_ops: u64 = 0;
    let mut branches: u64 = 0;
    let mut regfile_reads: u64 = 0;
    let mut latency = LatencyStats::default();

    let mut idx: usize = 0;
    loop {
        let chunk = source.next_chunk();
        if chunk.is_empty() {
            break;
        }
        for rec in chunk {
            let wrap = dispatched_this_cycle >= cfg.issue_width;
            dispatch_cycle += u64::from(wrap);
            if wrap {
                dispatched_this_cycle = 0;
            }
            let redirected = dispatch_cycle < fetch_resume_cycle;
            dispatch_cycle = dispatch_cycle.max(fetch_resume_cycle);
            if redirected {
                dispatched_this_cycle = 0;
            }

            let fetch_stall = fetch.fetch(rec.pc(), dispatch_cycle, hierarchy);
            if fetch_stall > 0 {
                dispatch_cycle += fetch_stall;
                dispatched_this_cycle = 0;
            }

            if rob.is_full() {
                let commit_cycle = rob.commit_oldest().expect("full ROB is non-empty");
                last_forced_commit = last_forced_commit.max(commit_cycle);
                let bumped = commit_cycle > dispatch_cycle;
                dispatch_cycle = dispatch_cycle.max(commit_cycle);
                if bumped {
                    dispatched_this_cycle = 0;
                }
            }

            regfile_reads += u64::from(rec.dep1() > 0) + u64::from(rec.dep2() > 0);

            let dep_ready = producer_ready(&completion, idx, rec.dep1()).max(producer_ready(
                &completion,
                idx,
                rec.dep2(),
            ));
            let ready = dispatch_cycle.max(dep_ready);

            let complete = match rec.op() {
                Op::Int => ready + cfg.int_latency,
                Op::Fp => {
                    fp_ops += 1;
                    ready + cfg.fp_latency
                }
                Op::Load(addr) => {
                    mem_ops += 1;
                    let access = hierarchy.access_data(addr, false, ready);
                    let finish = if access.l1_hit {
                        mshr.retire_completed(ready);
                        ready + access.latency
                    } else {
                        let block = addr >> block_shift;
                        if let Some(hit) = mshr.lookup_retire(block, ready) {
                            let finish = hit.ready_cycle.max(ready + 1);
                            let remaining = finish - ready;
                            latency.delayed_hits += 1;
                            latency.delayed_hit_cycles += remaining;
                            hierarchy.note_delayed_hit(addr, remaining);
                            finish
                        } else if mshr.is_full() {
                            let free_at = mshr
                                .earliest_completion()
                                .expect("full MSHR file is non-empty");
                            mshr.retire_completed(free_at);
                            let start = free_at.max(ready);
                            let finish = start + access.latency;
                            mshr.allocate(block, start, finish);
                            latency.d_primary_misses += 1;
                            latency.d_miss_cycles += access.latency;
                            latency.l2_hit_fills += u64::from(access.l2_hit);
                            latency.memory_fills += u64::from(!access.l2_hit);
                            finish
                        } else {
                            let finish = ready + access.latency;
                            mshr.allocate(block, ready, finish);
                            latency.d_primary_misses += 1;
                            latency.d_miss_cycles += access.latency;
                            latency.l2_hit_fills += u64::from(access.l2_hit);
                            latency.memory_fills += u64::from(!access.l2_hit);
                            finish
                        }
                    };
                    let available = lsq.reserve(ready, finish);
                    finish + available.saturating_sub(ready)
                }
                Op::Store(addr) => {
                    mem_ops += 1;
                    let access = hierarchy.access_data(addr, true, ready);
                    if !access.l1_hit {
                        latency.d_primary_misses += 1;
                        latency.d_miss_cycles += access.latency.min(store_latency_cap);
                        latency.l2_hit_fills += u64::from(access.l2_hit);
                        latency.memory_fills += u64::from(!access.l2_hit);
                    }
                    let finish = ready + access.latency.min(store_latency_cap);
                    let available = lsq.reserve(ready, finish);
                    finish + available.saturating_sub(ready)
                }
                Op::Branch { taken } => {
                    branches += 1;
                    let correct = predictor.resolve(rec.pc(), taken);
                    let finish = ready + cfg.int_latency;
                    if !correct {
                        fetch_resume_cycle =
                            fetch_resume_cycle.max(finish + cfg.mispredict_penalty);
                    }
                    finish
                }
            };

            rob.dispatch(complete);
            completion[idx % COMPLETION_RING] = complete;
            dispatched_this_cycle += 1;
            idx += 1;
            hook.post_commit(idx as u64, dispatch_cycle, hierarchy);
        }
    }

    let drained = rob.drain();
    let cycles = drained.max(last_forced_commit).max(dispatch_cycle);
    SimResult {
        cycles,
        instructions: idx as u64,
        activity: ActivityCounters::from_run_totals(
            idx as u64,
            fp_ops,
            mem_ops,
            branches,
            regfile_reads,
        ),
        branch: predictor.stats(),
        latency,
    }
}

/// Per-record reference of the in-order engine loop.
pub fn run_inorder_reference<S: TraceSource, H: SimHook + ?Sized>(
    cfg: &CpuConfig,
    source: &mut S,
    hierarchy: &mut MemoryHierarchy,
    hook: &mut H,
) -> SimResult {
    let mut cycle: u64 = 1;
    let mut issued_this_cycle: u32 = 0;
    let mut completion = [0u64; COMPLETION_RING];
    let mut fetch = FetchUnit::new(hierarchy.config().l1i.block_bytes, cfg.issue_width);
    let mut predictor = BranchPredictor::default();
    let mut max_completion: u64 = 0;
    let mut fp_ops: u64 = 0;
    let mut mem_ops: u64 = 0;
    let mut branches: u64 = 0;
    let mut regfile_reads: u64 = 0;
    let mut latency = LatencyStats::default();

    let mut idx: usize = 0;
    loop {
        let chunk = source.next_chunk();
        if chunk.is_empty() {
            break;
        }
        for rec in chunk {
            let wrap = issued_this_cycle >= cfg.issue_width;
            cycle += u64::from(wrap);
            if wrap {
                issued_this_cycle = 0;
            }

            let fetch_stall = fetch.fetch(rec.pc(), cycle, hierarchy);
            if fetch_stall > 0 {
                cycle += fetch_stall;
                issued_this_cycle = 0;
            }

            let dep_ready = producer_ready(&completion, idx, rec.dep1()).max(producer_ready(
                &completion,
                idx,
                rec.dep2(),
            ));
            let waited = dep_ready > cycle;
            cycle = cycle.max(dep_ready);
            if waited {
                issued_this_cycle = 0;
            }

            regfile_reads += u64::from(rec.dep1() > 0) + u64::from(rec.dep2() > 0);

            let complete = match rec.op() {
                Op::Int => cycle + cfg.int_latency,
                Op::Fp => {
                    fp_ops += 1;
                    cycle + cfg.fp_latency
                }
                Op::Load(addr) | Op::Store(addr) => {
                    mem_ops += 1;
                    let write = rec.op().is_store();
                    let access = hierarchy.access_data(addr, write, cycle);
                    if access.l1_hit {
                        cycle + access.latency
                    } else {
                        latency.d_primary_misses += 1;
                        latency.d_miss_cycles += access.latency;
                        latency.l2_hit_fills += u64::from(access.l2_hit);
                        latency.memory_fills += u64::from(!access.l2_hit);
                        cycle += access.latency;
                        issued_this_cycle = 0;
                        cycle
                    }
                }
                Op::Branch { taken } => {
                    branches += 1;
                    let correct = predictor.resolve(rec.pc(), taken);
                    if !correct {
                        cycle += cfg.mispredict_penalty;
                        issued_this_cycle = 0;
                    }
                    cycle + cfg.int_latency
                }
            };

            completion[idx % COMPLETION_RING] = complete;
            max_completion = max_completion.max(complete);
            issued_this_cycle += 1;
            idx += 1;
            hook.post_commit(idx as u64, cycle, hierarchy);
        }
    }

    SimResult {
        cycles: cycle.max(max_completion),
        instructions: idx as u64,
        activity: ActivityCounters::from_run_totals(
            idx as u64,
            fp_ops,
            mem_ops,
            branches,
            regfile_reads,
        ),
        branch: predictor.stats(),
        latency,
    }
}
