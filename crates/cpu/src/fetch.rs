//! The fetch front end shared by both engines: accesses the i-cache once per
//! fetch group and reports stall cycles on i-cache misses.

use rescache_cache::MemoryHierarchy;

/// Tracks fetch-group boundaries and performs i-cache accesses.
///
/// The i-cache is accessed whenever a new fetch group starts — either because
/// `fetch_width` instructions have been delivered from the previous access or
/// because the stream crossed into a different cache block (sequential
/// overrun or a taken branch). This mirrors Wattch's accounting, where the
/// i-cache is read (and all its enabled subarrays precharged) once per fetch
/// cycle rather than once per instruction.
///
/// An i-cache miss stalls fetch for the full miss latency — in both engine
/// styles instruction misses sit on the critical path, which is exactly the
/// asymmetry the paper's Section 4.2 exploits.
#[derive(Debug, Clone)]
pub struct FetchUnit {
    /// log2 of the i-cache block size; blocks are power-of-two sized
    /// (validated by `CacheConfig`), so the per-instruction block computation
    /// is a shift rather than a division.
    block_shift: u32,
    fetch_width: u32,
    /// Block address of the current fetch group, or `u64::MAX` when no group
    /// is active (block addresses are byte addresses shifted right, so the
    /// sentinel can never collide with a real block).
    last_block: u64,
    delivered_in_group: u32,
}

/// Sentinel for "no active fetch group".
const NO_BLOCK: u64 = u64::MAX;

impl FetchUnit {
    /// Creates a fetch unit for an i-cache with the given block size and a
    /// front end delivering `fetch_width` instructions per access.
    ///
    /// # Panics
    ///
    /// Panics if `fetch_width` is zero.
    pub fn new(block_bytes: u64, fetch_width: u32) -> Self {
        assert!(fetch_width > 0, "fetch width must be positive");
        Self {
            block_shift: block_bytes.max(1).trailing_zeros(),
            fetch_width,
            last_block: NO_BLOCK,
            delivered_in_group: 0,
        }
    }

    /// Fetches the instruction at `pc` at the given cycle.
    ///
    /// Returns the number of stall cycles fetch imposes on the pipeline
    /// (zero when the instruction comes from the current fetch group or the
    /// access hits in the L1 i-cache).
    #[inline]
    pub fn fetch(&mut self, pc: u64, cycle: u64, hierarchy: &mut MemoryHierarchy) -> u64 {
        if self.advance_group(pc) {
            self.access(pc, cycle, hierarchy)
        } else {
            0
        }
    }

    /// Advances the fetch-group tracking for the instruction at `pc` and
    /// returns `true` when it starts a new fetch group (and therefore needs
    /// an i-cache access via [`FetchUnit::access`]).
    ///
    /// Group boundaries are a pure function of the PC stream and the fetch
    /// width — no cache or cycle state is consulted — which is what lets the
    /// struct-of-arrays front end (`crate::lanes`) precompute an
    /// access-needed lane for a whole record batch before the timing loop
    /// runs.
    #[inline(always)]
    pub fn advance_group(&mut self, pc: u64) -> bool {
        let block = pc >> self.block_shift;
        if self.last_block == block && self.delivered_in_group < self.fetch_width {
            self.delivered_in_group += 1;
            false
        } else {
            self.last_block = block;
            self.delivered_in_group = 1;
            true
        }
    }

    /// Performs the i-cache access that starts a fetch group and returns the
    /// stall cycles it imposes (zero on an L1 i-cache hit).
    ///
    /// Callers pair this with [`FetchUnit::advance_group`]: the group
    /// decision is PC-pure and may run ahead of time, while the access itself
    /// must happen in program order at the dispatching instruction's cycle.
    #[inline]
    pub fn access(&self, pc: u64, cycle: u64, hierarchy: &mut MemoryHierarchy) -> u64 {
        let result = hierarchy.access_instruction(pc, cycle);
        if result.l1_hit {
            0
        } else {
            // The hit latency is pipelined away; only the miss portion stalls.
            result
                .latency
                .saturating_sub(hierarchy.config().l1i.hit_latency)
        }
    }

    /// Forgets the current fetch group (e.g. after a redirect in tests).
    pub fn reset(&mut self) {
        self.last_block = NO_BLOCK;
        self.delivered_in_group = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescache_cache::HierarchyConfig;

    #[test]
    fn fetch_group_reuses_one_access() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut f = FetchUnit::new(32, 4);
        let stall = f.fetch(0x40_0000, 0, &mut h);
        assert!(stall > 0, "cold miss stalls");
        assert_eq!(f.fetch(0x40_0004, 1, &mut h), 0);
        assert_eq!(f.fetch(0x40_0008, 2, &mut h), 0);
        assert_eq!(f.fetch(0x40_000C, 3, &mut h), 0);
        assert_eq!(h.l1i().stats().accesses, 1);
    }

    #[test]
    fn exhausted_group_accesses_again_even_in_same_block() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut f = FetchUnit::new(32, 4);
        for i in 0..5u64 {
            f.fetch(0x40_0000 + i * 4, i, &mut h);
        }
        assert_eq!(
            h.l1i().stats().accesses,
            2,
            "fifth instruction starts a new group"
        );
    }

    #[test]
    fn new_block_accesses_icache_again() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut f = FetchUnit::new(32, 8);
        f.fetch(0x40_0000, 0, &mut h);
        f.fetch(0x40_0020, 1, &mut h);
        assert_eq!(h.l1i().stats().accesses, 2);
    }

    #[test]
    fn warm_blocks_do_not_stall() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut f = FetchUnit::new(32, 4);
        f.fetch(0x40_0000, 0, &mut h);
        f.reset();
        assert_eq!(f.fetch(0x40_0000, 5, &mut h), 0);
    }

    #[test]
    #[should_panic(expected = "fetch width")]
    fn zero_width_panics() {
        let _ = FetchUnit::new(32, 0);
    }

    #[test]
    fn advance_group_precomputed_matches_interleaved_fetch() {
        // The group decision is PC-pure: precomputing it for a whole batch
        // (as the lane decode does) marks exactly the fetches that would
        // access the i-cache when interleaved with timing.
        let pcs: Vec<u64> = [
            0x40_0000, 0x40_0004, 0x40_0008, 0x40_000C, 0x40_0010, // overrun
            0x40_0020, 0x50_0000, 0x50_0004, 0x40_0020, // jumps back
        ]
        .into();
        let mut precompute = FetchUnit::new(32, 4);
        let marks: Vec<bool> = pcs.iter().map(|&pc| precompute.advance_group(pc)).collect();

        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut interleaved = FetchUnit::new(32, 4);
        for (i, &pc) in pcs.iter().enumerate() {
            let before = h.l1i().stats().accesses;
            interleaved.fetch(pc, i as u64, &mut h);
            let accessed = h.l1i().stats().accesses > before;
            assert_eq!(accessed, marks[i], "instruction {i} at {pc:#x}");
        }
    }
}
