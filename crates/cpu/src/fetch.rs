//! The fetch front end shared by both engines: accesses the i-cache once per
//! fetch group and reports stall cycles on i-cache misses.

use rescache_cache::MemoryHierarchy;

/// Tracks fetch-group boundaries and performs i-cache accesses.
///
/// The i-cache is accessed whenever a new fetch group starts — either because
/// `fetch_width` instructions have been delivered from the previous access or
/// because the stream crossed into a different cache block (sequential
/// overrun or a taken branch). This mirrors Wattch's accounting, where the
/// i-cache is read (and all its enabled subarrays precharged) once per fetch
/// cycle rather than once per instruction.
///
/// An i-cache miss stalls fetch for the full miss latency — in both engine
/// styles instruction misses sit on the critical path, which is exactly the
/// asymmetry the paper's Section 4.2 exploits.
#[derive(Debug, Clone)]
pub struct FetchUnit {
    /// log2 of the i-cache block size; blocks are power-of-two sized
    /// (validated by `CacheConfig`), so the per-instruction block computation
    /// is a shift rather than a division.
    block_shift: u32,
    fetch_width: u32,
    /// Block address of the current fetch group, or `u64::MAX` when no group
    /// is active (block addresses are byte addresses shifted right, so the
    /// sentinel can never collide with a real block).
    last_block: u64,
    delivered_in_group: u32,
}

/// Sentinel for "no active fetch group".
const NO_BLOCK: u64 = u64::MAX;

impl FetchUnit {
    /// Creates a fetch unit for an i-cache with the given block size and a
    /// front end delivering `fetch_width` instructions per access.
    ///
    /// # Panics
    ///
    /// Panics if `fetch_width` is zero.
    pub fn new(block_bytes: u64, fetch_width: u32) -> Self {
        assert!(fetch_width > 0, "fetch width must be positive");
        Self {
            block_shift: block_bytes.max(1).trailing_zeros(),
            fetch_width,
            last_block: NO_BLOCK,
            delivered_in_group: 0,
        }
    }

    /// Fetches the instruction at `pc` at the given cycle.
    ///
    /// Returns the number of stall cycles fetch imposes on the pipeline
    /// (zero when the instruction comes from the current fetch group or the
    /// access hits in the L1 i-cache).
    #[inline]
    pub fn fetch(&mut self, pc: u64, cycle: u64, hierarchy: &mut MemoryHierarchy) -> u64 {
        let block = pc >> self.block_shift;
        if self.last_block == block && self.delivered_in_group < self.fetch_width {
            self.delivered_in_group += 1;
            return 0;
        }
        self.last_block = block;
        self.delivered_in_group = 1;
        let result = hierarchy.access_instruction(pc, cycle);
        if result.l1_hit {
            0
        } else {
            // The hit latency is pipelined away; only the miss portion stalls.
            result
                .latency
                .saturating_sub(hierarchy.config().l1i.hit_latency)
        }
    }

    /// Forgets the current fetch group (e.g. after a redirect in tests).
    pub fn reset(&mut self) {
        self.last_block = NO_BLOCK;
        self.delivered_in_group = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescache_cache::HierarchyConfig;

    #[test]
    fn fetch_group_reuses_one_access() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut f = FetchUnit::new(32, 4);
        let stall = f.fetch(0x40_0000, 0, &mut h);
        assert!(stall > 0, "cold miss stalls");
        assert_eq!(f.fetch(0x40_0004, 1, &mut h), 0);
        assert_eq!(f.fetch(0x40_0008, 2, &mut h), 0);
        assert_eq!(f.fetch(0x40_000C, 3, &mut h), 0);
        assert_eq!(h.l1i().stats().accesses, 1);
    }

    #[test]
    fn exhausted_group_accesses_again_even_in_same_block() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut f = FetchUnit::new(32, 4);
        for i in 0..5u64 {
            f.fetch(0x40_0000 + i * 4, i, &mut h);
        }
        assert_eq!(
            h.l1i().stats().accesses,
            2,
            "fifth instruction starts a new group"
        );
    }

    #[test]
    fn new_block_accesses_icache_again() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut f = FetchUnit::new(32, 8);
        f.fetch(0x40_0000, 0, &mut h);
        f.fetch(0x40_0020, 1, &mut h);
        assert_eq!(h.l1i().stats().accesses, 2);
    }

    #[test]
    fn warm_blocks_do_not_stall() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut f = FetchUnit::new(32, 4);
        f.fetch(0x40_0000, 0, &mut h);
        f.reset();
        assert_eq!(f.fetch(0x40_0000, 5, &mut h), 0);
    }

    #[test]
    #[should_panic(expected = "fetch width")]
    fn zero_width_panics() {
        let _ = FetchUnit::new(32, 0);
    }
}
