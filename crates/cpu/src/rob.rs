//! A reorder buffer modelled as a queue of completion times with an in-order,
//! width-limited commit stage.

/// The reorder buffer of the out-of-order engine.
///
/// Each entry records the cycle at which its instruction finishes execution.
/// Instructions commit strictly in order, at most `commit_width` per cycle,
/// and never earlier than the cycle after they complete.
///
/// The storage is a fixed ring over a boxed slice rather than a `VecDeque`:
/// the engine dispatches into (and, once warm, commits out of) the ROB on
/// every simulated instruction, and a ring sized exactly to the capacity
/// keeps that per-instruction push/pop pair to a handful of arithmetic
/// operations with no growth or spare-capacity logic.
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    commit_width: u32,
    /// Completion cycles, oldest at `head`, `len` entries in use.
    entries: Box<[u64]>,
    head: usize,
    len: usize,
    commit_cursor: u64,
    committed_in_cursor: u32,
    committed: u64,
}

impl ReorderBuffer {
    /// Creates a reorder buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `commit_width` is zero.
    pub fn new(capacity: usize, commit_width: u32) -> Self {
        assert!(capacity > 0, "ROB capacity must be positive");
        assert!(commit_width > 0, "commit width must be positive");
        Self {
            commit_width,
            entries: vec![0; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
            commit_cursor: 0,
            committed_in_cursor: 0,
            committed: 0,
        }
    }

    /// Number of occupied entries.
    pub fn occupancy(&self) -> usize {
        self.len
    }

    /// Returns `true` if no more instructions can be dispatched.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len >= self.entries.len()
    }

    /// Total instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Dispatches an instruction that will complete execution at
    /// `completion_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full; callers must commit first.
    #[inline]
    pub fn dispatch(&mut self, completion_cycle: u64) {
        assert!(!self.is_full(), "dispatch into a full ROB");
        let capacity = self.entries.len();
        let mut tail = self.head + self.len;
        if tail >= capacity {
            tail -= capacity;
        }
        self.entries[tail] = completion_cycle;
        self.len += 1;
    }

    /// Commits the oldest instruction, returning the cycle at which it
    /// commits, or `None` if the buffer is empty.
    #[inline]
    pub fn commit_oldest(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let completion = self.pop_oldest();
        Some(self.commit_at(completion))
    }

    /// Commits the oldest instruction if — and only if — the buffer is full,
    /// returning its commit cycle.
    ///
    /// This is the dispatch-pressure check of the out-of-order engine fused
    /// into one call: in the steady state of a long run the ROB is full on
    /// every dispatch, so the engine pays this once per instruction. Fusing
    /// the full-test with the pop lets the hot path skip the emptiness
    /// re-check inside [`ReorderBuffer::commit_oldest`].
    #[inline(always)]
    pub fn commit_if_full(&mut self) -> Option<u64> {
        if self.len < self.entries.len() {
            return None;
        }
        let completion = self.pop_oldest();
        Some(self.commit_at(completion))
    }

    /// Removes and returns the oldest entry's completion cycle; callers have
    /// already established that the buffer is non-empty.
    #[inline(always)]
    fn pop_oldest(&mut self) -> u64 {
        let completion = self.entries[self.head];
        self.head += 1;
        if self.head == self.entries.len() {
            self.head = 0;
        }
        self.len -= 1;
        completion
    }

    /// Advances the in-order commit stage for an instruction that completed
    /// execution at `completion` and returns its commit cycle.
    #[inline(always)]
    fn commit_at(&mut self, completion: u64) -> u64 {
        let earliest = completion + 1;
        if earliest > self.commit_cursor {
            self.commit_cursor = earliest;
            self.committed_in_cursor = 0;
        }
        let commit_cycle = self.commit_cursor;
        self.committed_in_cursor += 1;
        if self.committed_in_cursor >= self.commit_width {
            self.commit_cursor += 1;
            self.committed_in_cursor = 0;
        }
        self.committed += 1;
        commit_cycle
    }

    /// Commits everything still in flight and returns the cycle of the last
    /// commit (or the current commit cursor if the buffer was already empty).
    pub fn drain(&mut self) -> u64 {
        let mut last = self.commit_cursor;
        while let Some(cycle) = self.commit_oldest() {
            last = cycle;
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_respects_completion_time() {
        let mut rob = ReorderBuffer::new(4, 4);
        rob.dispatch(10);
        assert_eq!(rob.commit_oldest(), Some(11));
    }

    #[test]
    fn commit_width_limits_per_cycle_commits() {
        let mut rob = ReorderBuffer::new(8, 2);
        for _ in 0..4 {
            rob.dispatch(0);
        }
        let cycles: Vec<u64> = (0..4).map(|_| rob.commit_oldest().unwrap()).collect();
        assert_eq!(cycles, vec![1, 1, 2, 2]);
        assert_eq!(rob.committed(), 4);
    }

    #[test]
    fn in_order_commit_never_goes_backwards() {
        let mut rob = ReorderBuffer::new(8, 4);
        rob.dispatch(100);
        rob.dispatch(5); // completes earlier but must commit after the first
        let c1 = rob.commit_oldest().unwrap();
        let c2 = rob.commit_oldest().unwrap();
        assert!(c2 >= c1);
        assert_eq!(c1, 101);
    }

    #[test]
    fn full_and_drain() {
        let mut rob = ReorderBuffer::new(2, 4);
        rob.dispatch(3);
        rob.dispatch(9);
        assert!(rob.is_full());
        let last = rob.drain();
        assert_eq!(last, 10);
        assert_eq!(rob.occupancy(), 0);
    }

    #[test]
    fn commit_if_full_only_fires_under_pressure() {
        let mut rob = ReorderBuffer::new(2, 4);
        rob.dispatch(10);
        assert_eq!(rob.commit_if_full(), None, "not full yet");
        rob.dispatch(20);
        assert_eq!(rob.commit_if_full(), Some(11), "full: pops the oldest");
        assert_eq!(rob.occupancy(), 1);
        assert_eq!(rob.committed(), 1);
    }

    #[test]
    fn commit_if_full_matches_explicit_full_check_and_commit() {
        let mut fused = ReorderBuffer::new(4, 2);
        let mut split = ReorderBuffer::new(4, 2);
        let completions = [5u64, 3, 9, 9, 12, 2, 40, 41, 41, 7];
        for &c in &completions {
            let a = fused.commit_if_full();
            let b = if split.is_full() {
                split.commit_oldest()
            } else {
                None
            };
            assert_eq!(a, b);
            fused.dispatch(c);
            split.dispatch(c);
        }
        assert_eq!(fused.drain(), split.drain());
        assert_eq!(fused.committed(), split.committed());
    }

    #[test]
    #[should_panic(expected = "full ROB")]
    fn dispatch_into_full_rob_panics() {
        let mut rob = ReorderBuffer::new(1, 1);
        rob.dispatch(1);
        rob.dispatch(2);
    }

    #[test]
    fn drain_of_empty_rob_returns_cursor() {
        let mut rob = ReorderBuffer::new(2, 1);
        assert_eq!(rob.drain(), 0);
    }
}
