//! Simulation results.

use crate::activity::ActivityCounters;
use crate::branch::BranchStats;

/// Result of replaying one trace on one engine.
///
/// Cache-side statistics stay on the [`rescache_cache::MemoryHierarchy`] that
/// was passed to the engine; this struct carries the processor-side numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimResult {
    /// Total execution time in cycles.
    pub cycles: u64,
    /// Instructions committed (equals the trace length).
    pub instructions: u64,
    /// Per-structure activity for the energy model.
    pub activity: ActivityCounters,
    /// Branch-prediction accuracy.
    pub branch: BranchStats,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per committed instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_cpi_are_reciprocal() {
        let r = SimResult {
            cycles: 500,
            instructions: 1000,
            activity: ActivityCounters::default(),
            branch: BranchStats::default(),
        };
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.cpi() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_results_do_not_divide_by_zero() {
        let r = SimResult {
            cycles: 0,
            instructions: 0,
            activity: ActivityCounters::default(),
            branch: BranchStats::default(),
        };
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.cpi(), 0.0);
    }
}
