//! Simulation results.

use crate::activity::ActivityCounters;
use crate::branch::BranchStats;

/// Latency-domain accounting for the data side of one run.
///
/// Every d-cache access the engine prices lands in exactly one class:
/// an L1 hit (not counted here), a **delayed hit** (the block's fill is
/// still in flight, so the access pays only the *remaining* latency), or a
/// **primary miss** (a fresh fill from L2 or memory). Fields are integers so
/// [`SimResult`] stays `Copy + Eq`; means are derived by methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Loads that merged with an in-flight fill (secondary misses).
    pub delayed_hits: u64,
    /// Total stall cycles those delayed hits paid (remaining fill latency).
    pub delayed_hit_cycles: u64,
    /// Data accesses that started a fresh fill (or, on the blocking engine,
    /// any d-cache miss).
    pub d_primary_misses: u64,
    /// Total latency cycles those primary misses paid.
    pub d_miss_cycles: u64,
    /// Primary misses satisfied by the unified L2.
    pub l2_hit_fills: u64,
    /// Primary misses that went all the way to main memory.
    pub memory_fills: u64,
}

impl LatencyStats {
    /// Mean stall cycles per delayed hit.
    pub fn mean_delayed_hit_cycles(&self) -> f64 {
        if self.delayed_hits == 0 {
            0.0
        } else {
            self.delayed_hit_cycles as f64 / self.delayed_hits as f64
        }
    }

    /// Mean latency cycles per primary miss.
    pub fn mean_miss_cycles(&self) -> f64 {
        if self.d_primary_misses == 0 {
            0.0
        } else {
            self.d_miss_cycles as f64 / self.d_primary_misses as f64
        }
    }
}

/// Result of replaying one trace on one engine.
///
/// Cache-side statistics stay on the [`rescache_cache::MemoryHierarchy`] that
/// was passed to the engine; this struct carries the processor-side numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimResult {
    /// Total execution time in cycles.
    pub cycles: u64,
    /// Instructions committed (equals the trace length).
    pub instructions: u64,
    /// Per-structure activity for the energy model.
    pub activity: ActivityCounters,
    /// Branch-prediction accuracy.
    pub branch: BranchStats,
    /// Latency-domain breakdown of the data-side accesses.
    pub latency: LatencyStats,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per committed instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_cpi_are_reciprocal() {
        let r = SimResult {
            cycles: 500,
            instructions: 1000,
            activity: ActivityCounters::default(),
            branch: BranchStats::default(),
            latency: LatencyStats::default(),
        };
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.cpi() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn latency_means_follow_the_counters() {
        let l = LatencyStats {
            delayed_hits: 4,
            delayed_hit_cycles: 20,
            d_primary_misses: 2,
            d_miss_cycles: 36,
            l2_hit_fills: 1,
            memory_fills: 1,
        };
        assert!((l.mean_delayed_hit_cycles() - 5.0).abs() < 1e-12);
        assert!((l.mean_miss_cycles() - 18.0).abs() < 1e-12);
        let empty = LatencyStats::default();
        assert_eq!(empty.mean_delayed_hit_cycles(), 0.0);
        assert_eq!(empty.mean_miss_cycles(), 0.0);
    }

    #[test]
    fn degenerate_results_do_not_divide_by_zero() {
        let r = SimResult {
            cycles: 0,
            instructions: 0,
            activity: ActivityCounters::default(),
            branch: BranchStats::default(),
            latency: LatencyStats::default(),
        };
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.cpi(), 0.0);
    }
}
