//! Simulation hooks: the mechanism by which resizing controllers observe a
//! running simulation.
//!
//! The dynamic resizing framework of the paper monitors the cache in
//! fixed-length intervals measured in cache accesses and resizes it
//! mid-execution. To keep the policy out of the processor model, the engines
//! call a [`SimHook`] after every committed instruction with mutable access
//! to the memory hierarchy; `rescache-core`'s controllers implement the trait.

use rescache_cache::MemoryHierarchy;

/// Observer invoked by the execution engines during simulation.
pub trait SimHook {
    /// Called after each committed instruction.
    ///
    /// * `committed` — number of instructions committed so far (1-based).
    /// * `cycle` — the engine's current cycle estimate.
    /// * `hierarchy` — the memory hierarchy, mutable so the hook may resize
    ///   the L1 caches.
    fn post_commit(&mut self, committed: u64, cycle: u64, hierarchy: &mut MemoryHierarchy);
}

/// A hook that does nothing (plain, non-resizing simulation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopHook;

impl SimHook for NoopHook {
    fn post_commit(&mut self, _committed: u64, _cycle: u64, _hierarchy: &mut MemoryHierarchy) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescache_cache::HierarchyConfig;

    struct CountingHook {
        calls: u64,
        last_cycle: u64,
    }

    impl SimHook for CountingHook {
        fn post_commit(&mut self, committed: u64, cycle: u64, _h: &mut MemoryHierarchy) {
            self.calls = committed;
            self.last_cycle = cycle;
        }
    }

    #[test]
    fn hooks_receive_progress() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut hook = CountingHook {
            calls: 0,
            last_cycle: 0,
        };
        hook.post_commit(10, 42, &mut h);
        assert_eq!(hook.calls, 10);
        assert_eq!(hook.last_cycle, 42);
    }

    #[test]
    fn noop_hook_is_callable() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        NoopHook.post_commit(1, 1, &mut h);
    }
}
