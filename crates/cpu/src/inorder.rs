//! The in-order issue engine with a blocking data cache.
//!
//! Like the out-of-order engine, this runs as a two-stage batch pipeline:
//! [`LaneBatch::decode`] transposes each incoming chunk into
//! struct-of-arrays lanes (one shared decode front end for both engines),
//! and the serial issue loop runs over the lanes. See [`crate::lanes`].

use rescache_cache::MemoryHierarchy;
use rescache_trace::{kind, Trace, TraceSource};

use crate::activity::ActivityCounters;
use crate::branch::BranchPredictor;
use crate::config::CpuConfig;
use crate::fetch::FetchUnit;
use crate::hook::{NoopHook, SimHook};
use crate::lanes::{
    producer_ready, LaneBatch, COMPLETION_RING, ICACHE_FLAG, KIND_MASK, LANE_BATCH,
};
use crate::result::{LatencyStats, SimResult};

/// In-order, width-limited issue with a blocking d-cache: every data-cache
/// miss stalls the pipeline until the fill returns, so d-cache miss latency
/// is fully exposed to execution time.
#[derive(Debug, Clone)]
pub struct InOrderEngine {
    config: CpuConfig,
}

impl InOrderEngine {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero-sized structures.
    pub fn new(config: CpuConfig) -> Self {
        config.assert_valid();
        Self { config }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Replays `trace` against `hierarchy` with no observer hook.
    ///
    /// This monomorphizes the engine loop over [`NoopHook`] and the
    /// materialized [`rescache_trace::TraceCursor`] source, so plain
    /// (non-resizing) simulations pay no per-instruction virtual call and
    /// run over one contiguous record slice.
    pub fn run(&self, trace: &Trace, hierarchy: &mut MemoryHierarchy) -> SimResult {
        self.run_impl(&mut trace.cursor(), hierarchy, &mut NoopHook)
    }

    /// Replays `trace` against `hierarchy`, invoking `hook` after every
    /// committed instruction.
    pub fn run_with_hook(
        &self,
        trace: &Trace,
        hierarchy: &mut MemoryHierarchy,
        hook: &mut dyn SimHook,
    ) -> SimResult {
        self.run_impl(&mut trace.cursor(), hierarchy, hook)
    }

    /// Consumes `source` chunk by chunk against `hierarchy` with no observer
    /// hook — the streaming twin of [`InOrderEngine::run`]: a generator-backed
    /// source simulates without ever materializing the full trace.
    pub fn run_source<S: TraceSource>(
        &self,
        source: &mut S,
        hierarchy: &mut MemoryHierarchy,
    ) -> SimResult {
        self.run_impl(source, hierarchy, &mut NoopHook)
    }

    /// Consumes `source` chunk by chunk, invoking `hook` after every
    /// committed instruction.
    pub fn run_source_with_hook<S: TraceSource>(
        &self,
        source: &mut S,
        hierarchy: &mut MemoryHierarchy,
        hook: &mut dyn SimHook,
    ) -> SimResult {
        self.run_impl(source, hierarchy, hook)
    }

    fn run_impl<S: TraceSource, H: SimHook + ?Sized>(
        &self,
        source: &mut S,
        hierarchy: &mut MemoryHierarchy,
        hook: &mut H,
    ) -> SimResult {
        let cfg = &self.config;
        let mut cycle: u64 = 1;
        let mut issued_this_cycle: u32 = 0;
        let mut completion = [0u64; COMPLETION_RING];
        let mut fetch = FetchUnit::new(hierarchy.config().l1i.block_bytes, cfg.issue_width);
        let mut predictor = BranchPredictor::default();
        let mut lanes = LaneBatch::new();
        let mut max_completion: u64 = 0;
        // The ALU classes (the most common pair) resolve their latency by a
        // two-entry table indexed with the kind tag instead of a branch.
        let alu_latency = [cfg.int_latency, cfg.fp_latency];
        // Activity totals are accumulated per decoded batch (see
        // `LaneBatch::totals`) and expanded into the full counter set once at
        // the end (see `ActivityCounters::from_run_totals`).
        let mut fp_ops: u64 = 0;
        let mut mem_ops: u64 = 0;
        let mut branches: u64 = 0;
        let mut regfile_reads: u64 = 0;
        // The blocking d-cache admits no overlap, so there are no delayed
        // hits by construction: every d-miss is a primary miss whose full
        // latency the pipeline pays.
        let mut latency = LatencyStats::default();

        let mut idx: usize = 0;
        loop {
            let chunk = source.next_chunk();
            if chunk.is_empty() {
                break;
            }
            // Streamed chunks are at most one batch wide; a materialized
            // cursor's whole-window chunk is sub-sliced into batches here.
            for records in chunk.chunks(LANE_BATCH) {
                lanes.decode(records, &mut fetch);
                let totals = lanes.totals();
                fp_ops += totals.fp_ops;
                mem_ops += totals.mem_ops;
                branches += totals.branches;
                regfile_reads += totals.regfile_reads;
                for (rec, &flags) in records.iter().zip(lanes.dispatch()) {
                    let lane_kind = flags & KIND_MASK;
                    // Width wrap and dependency waits resolve through selects
                    // where possible: both follow simulated data, so host
                    // branches here are unpredictable (this loop head runs
                    // once per instruction).
                    let wrap = issued_this_cycle >= cfg.issue_width;
                    cycle += u64::from(wrap);
                    if wrap {
                        issued_this_cycle = 0;
                    }

                    if flags & ICACHE_FLAG != 0 {
                        let fetch_stall = fetch.access(rec.pc(), cycle, hierarchy);
                        if fetch_stall > 0 {
                            cycle += fetch_stall;
                            issued_this_cycle = 0;
                        }
                    }

                    // In-order issue: wait for both producers to have completed.
                    let dep_ready = producer_ready(&completion, idx, rec.dep1())
                        .max(producer_ready(&completion, idx, rec.dep2()));
                    let waited = dep_ready > cycle;
                    cycle = cycle.max(dep_ready);
                    if waited {
                        issued_this_cycle = 0;
                    }

                    let complete = if lane_kind >= kind::BRANCH_NOT_TAKEN {
                        let taken = lane_kind == kind::BRANCH_TAKEN;
                        let correct = predictor.resolve(rec.pc(), taken);
                        if !correct {
                            cycle += cfg.mispredict_penalty;
                            issued_this_cycle = 0;
                        }
                        cycle + cfg.int_latency
                    } else if lane_kind >= kind::LOAD {
                        let write = lane_kind == kind::STORE;
                        let access = hierarchy.access_data(u64::from(rec.addr_raw()), write, cycle);
                        if access.l1_hit {
                            cycle + access.latency
                        } else {
                            // Blocking cache: the whole pipeline waits for
                            // the fill.
                            latency.d_primary_misses += 1;
                            latency.d_miss_cycles += access.latency;
                            latency.l2_hit_fills += u64::from(access.l2_hit);
                            latency.memory_fills += u64::from(!access.l2_hit);
                            cycle += access.latency;
                            issued_this_cycle = 0;
                            cycle
                        }
                    } else {
                        cycle + alu_latency[usize::from(lane_kind)]
                    };

                    completion[idx % COMPLETION_RING] = complete;
                    max_completion = max_completion.max(complete);
                    issued_this_cycle += 1;
                    idx += 1;
                    hook.post_commit(idx as u64, cycle, hierarchy);
                }
            }
        }

        SimResult {
            cycles: cycle.max(max_completion),
            instructions: idx as u64,
            activity: ActivityCounters::from_run_totals(
                idx as u64,
                fp_ops,
                mem_ops,
                branches,
                regfile_reads,
            ),
            branch: predictor.stats(),
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescache_cache::HierarchyConfig;
    use rescache_trace::{spec, InstrRecord, Op, TraceGenerator};

    fn run_trace(trace: &Trace) -> (SimResult, MemoryHierarchy) {
        let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let result = InOrderEngine::new(CpuConfig::base_in_order()).run(trace, &mut hierarchy);
        (result, hierarchy)
    }

    #[test]
    fn independent_alu_ops_issue_wide() {
        let records = (0..4000)
            .map(|i| InstrRecord::new(0x40_0000 + (i % 8) * 4, Op::Int))
            .collect();
        let trace = Trace::new("alu", records);
        let (result, _) = run_trace(&trace);
        let ipc = result.ipc();
        assert!(
            ipc > 2.0,
            "independent ALU ops should issue wide, ipc {ipc}"
        );
    }

    #[test]
    fn dependent_chain_serialises() {
        let records = (0..4000)
            .map(|i| InstrRecord::with_deps(0x40_0000 + (i % 8) * 4, Op::Int, 1, 0))
            .collect();
        let trace = Trace::new("chain", records);
        let (result, _) = run_trace(&trace);
        assert!(
            result.ipc() <= 1.05,
            "a dependent chain cannot exceed 1 IPC, got {}",
            result.ipc()
        );
    }

    #[test]
    fn dcache_misses_stall_the_pipeline() {
        // Loads striding far apart so every one misses.
        let records = (0..2000u64)
            .map(|i| InstrRecord::new(0x40_0000, Op::Load(0x100_0000 + i * 4096)))
            .collect();
        let trace = Trace::new("misses", records);
        let (result, hierarchy) = run_trace(&trace);
        assert!(hierarchy.l1d().stats().miss_ratio() > 0.9);
        assert!(
            result.cpi() > 50.0,
            "blocking misses should dominate execution, cpi {}",
            result.cpi()
        );
    }

    #[test]
    fn runs_full_spec_profile() {
        let trace = TraceGenerator::new(spec::m88ksim(), 3).generate(20_000);
        let (result, hierarchy) = run_trace(&trace);
        assert_eq!(result.instructions, 20_000);
        assert!(result.cycles > 5_000);
        assert!(result.ipc() > 0.1 && result.ipc() < 4.0);
        assert!(hierarchy.l1d().stats().accesses > 3_000);
        assert!(hierarchy.l1i().stats().accesses > 1_000);
        assert_eq!(result.activity.committed, 20_000);
    }

    #[test]
    fn branch_mispredicts_add_cycles() {
        // Alternate predictable and random-looking branch outcomes.
        let predictable: Vec<_> = (0..4000)
            .map(|_| InstrRecord::new(0x40_0000, Op::Branch { taken: true }))
            .collect();
        let mut x = 9u64;
        let random: Vec<_> = (0..4000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                InstrRecord::new(0x40_0000, Op::Branch { taken: x & 1 == 1 })
            })
            .collect();
        let (good, _) = run_trace(&Trace::new("predictable", predictable));
        let (bad, _) = run_trace(&Trace::new("random", random));
        assert!(
            bad.cycles > good.cycles * 2,
            "mispredictions should cost cycles: {} vs {}",
            bad.cycles,
            good.cycles
        );
        assert!(bad.branch.mispredict_ratio() > 0.3);
        assert!(good.branch.mispredict_ratio() < 0.05);
    }

    #[test]
    fn hook_sees_every_commit() {
        struct Counter(u64);
        impl SimHook for Counter {
            fn post_commit(&mut self, committed: u64, _c: u64, _h: &mut MemoryHierarchy) {
                self.0 = committed;
            }
        }
        let trace = TraceGenerator::new(spec::ammp(), 1).generate(1_000);
        let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut hook = Counter(0);
        InOrderEngine::new(CpuConfig::base_in_order()).run_with_hook(
            &trace,
            &mut hierarchy,
            &mut hook,
        );
        assert_eq!(hook.0, 1_000);
    }
}
