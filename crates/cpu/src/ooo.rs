//! The out-of-order issue engine with a non-blocking data cache.

use rescache_cache::{MemoryHierarchy, MshrFile};
use rescache_trace::{Op, Trace};

use crate::activity::ActivityCounters;
use crate::branch::BranchPredictor;
use crate::config::CpuConfig;
use crate::fetch::FetchUnit;
use crate::hook::{NoopHook, SimHook};
use crate::lsq::LoadStoreQueue;
use crate::result::SimResult;
use crate::rob::ReorderBuffer;

/// Ring-buffer size for producer completion times; must exceed the maximum
/// dependency distance encoded in traces (63).
const COMPLETION_RING: usize = 128;

/// Four-wide out-of-order issue with a non-blocking d-cache.
///
/// The model is dispatch-driven: instructions enter the window at up to
/// `issue_width` per cycle (stalling on i-cache misses, branch mispredictions
/// and a full ROB/LSQ), execute as soon as their producers are ready, and
/// commit in order. Data-cache misses overlap with younger independent work
/// as long as MSHRs and the ROB have capacity — which is precisely why the
/// paper finds static resizing competitive with dynamic resizing on this
/// configuration: the extra d-cache misses a smaller static size causes are
/// largely off the critical path.
#[derive(Debug, Clone)]
pub struct OutOfOrderEngine {
    config: CpuConfig,
}

impl OutOfOrderEngine {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero-sized structures.
    pub fn new(config: CpuConfig) -> Self {
        config.assert_valid();
        Self { config }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Replays `trace` against `hierarchy` with no observer hook.
    pub fn run(&self, trace: &Trace, hierarchy: &mut MemoryHierarchy) -> SimResult {
        self.run_with_hook(trace, hierarchy, &mut NoopHook)
    }

    /// Replays `trace` against `hierarchy`, invoking `hook` after every
    /// dispatched-and-eventually-committed instruction.
    pub fn run_with_hook(
        &self,
        trace: &Trace,
        hierarchy: &mut MemoryHierarchy,
        hook: &mut dyn SimHook,
    ) -> SimResult {
        let cfg = &self.config;
        let mut dispatch_cycle: u64 = 1;
        let mut dispatched_this_cycle: u32 = 0;
        let mut fetch_resume_cycle: u64 = 0;
        let mut completion = [0u64; COMPLETION_RING];
        let mut rob = ReorderBuffer::new(cfg.rob_entries, cfg.issue_width);
        let mut lsq = LoadStoreQueue::new(cfg.lsq_entries);
        let mut mshr = MshrFile::new(cfg.mshr_entries);
        let mut fetch = FetchUnit::new(hierarchy.config().l1i.block_bytes, cfg.issue_width);
        let mut predictor = BranchPredictor::default();
        let mut activity = ActivityCounters::default();
        let mut last_forced_commit: u64 = 0;
        let block_bytes = hierarchy.config().l1d.block_bytes;

        for (idx, rec) in trace.iter().enumerate() {
            if dispatched_this_cycle >= cfg.issue_width {
                dispatch_cycle += 1;
                dispatched_this_cycle = 0;
            }
            if dispatch_cycle < fetch_resume_cycle {
                dispatch_cycle = fetch_resume_cycle;
                dispatched_this_cycle = 0;
            }

            // Instruction fetch: misses stall dispatch directly.
            let fetch_stall = fetch.fetch(rec.pc, dispatch_cycle, hierarchy);
            if fetch_stall > 0 {
                dispatch_cycle += fetch_stall;
                dispatched_this_cycle = 0;
            }

            // Window space: a full ROB forces the oldest instruction to
            // commit before this one can dispatch.
            if rob.is_full() {
                let commit_cycle = rob.commit_oldest().expect("full ROB is non-empty");
                last_forced_commit = last_forced_commit.max(commit_cycle);
                if commit_cycle > dispatch_cycle {
                    dispatch_cycle = commit_cycle;
                    dispatched_this_cycle = 0;
                }
            }

            let sources = u32::from(rec.dep1 > 0) + u32::from(rec.dep2 > 0);
            activity.record_dispatch(sources);

            // Operands become ready when both producers have completed.
            let dep_ready = producer_ready(&completion, idx, rec.dep1).max(producer_ready(
                &completion,
                idx,
                rec.dep2,
            ));
            let ready = dispatch_cycle.max(dep_ready);

            let complete = match rec.op {
                Op::Int => ready + cfg.int_latency,
                Op::Fp => ready + cfg.fp_latency,
                Op::Load(addr) => {
                    mshr.retire_completed(ready);
                    let access = hierarchy.access_data(addr, false, ready);
                    let finish = if access.l1_hit {
                        ready + access.latency
                    } else {
                        let block = addr / block_bytes;
                        if let Some(outstanding) = mshr.lookup(block) {
                            // Secondary miss: merge with the in-flight fill.
                            outstanding.max(ready + 1)
                        } else if mshr.is_full() {
                            // All MSHRs busy: the miss waits for one to free.
                            let free_at = mshr
                                .earliest_completion()
                                .expect("full MSHR file is non-empty");
                            mshr.retire_completed(free_at);
                            let start = free_at.max(ready);
                            let finish = start + access.latency;
                            mshr.allocate(block, finish);
                            finish
                        } else {
                            let finish = ready + access.latency;
                            mshr.allocate(block, finish);
                            finish
                        }
                    };
                    let available = lsq.reserve(ready, finish);
                    finish + available.saturating_sub(ready)
                }
                Op::Store(addr) => {
                    // Stores update the cache but retire through the write
                    // buffer: the pipeline only pays the L1 access.
                    let access = hierarchy.access_data(addr, true, ready);
                    let finish = ready + access.latency.min(hierarchy.config().l1d.hit_latency + 1);
                    let available = lsq.reserve(ready, finish);
                    finish + available.saturating_sub(ready)
                }
                Op::Branch { taken } => {
                    activity.record_branch();
                    let correct = predictor.resolve(rec.pc, taken);
                    let finish = ready + cfg.int_latency;
                    if !correct {
                        // Fetch resumes only after the branch resolves and the
                        // front end refills.
                        fetch_resume_cycle =
                            fetch_resume_cycle.max(finish + cfg.mispredict_penalty);
                    }
                    finish
                }
            };

            activity.record_execute(matches!(rec.op, Op::Fp), rec.op.is_mem());
            activity.record_commit();
            rob.dispatch(complete);
            completion[idx % COMPLETION_RING] = complete;
            dispatched_this_cycle += 1;
            hook.post_commit(idx as u64 + 1, dispatch_cycle, hierarchy);
        }

        let drained = rob.drain();
        let cycles = drained.max(last_forced_commit).max(dispatch_cycle);
        SimResult {
            cycles,
            instructions: trace.len() as u64,
            activity,
            branch: predictor.stats(),
        }
    }
}

/// Completion cycle of the producer `distance` instructions before `idx`,
/// or 0 if there is no such producer.
fn producer_ready(completion: &[u64; COMPLETION_RING], idx: usize, distance: u8) -> u64 {
    let distance = distance as usize;
    if distance == 0 || distance > idx {
        0
    } else {
        completion[(idx - distance) % COMPLETION_RING]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inorder::InOrderEngine;
    use rescache_cache::HierarchyConfig;
    use rescache_trace::{spec, InstrRecord, TraceGenerator};

    fn run_ooo(trace: &Trace) -> (SimResult, MemoryHierarchy) {
        let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let result =
            OutOfOrderEngine::new(CpuConfig::base_out_of_order()).run(trace, &mut hierarchy);
        (result, hierarchy)
    }

    fn run_inorder(trace: &Trace) -> SimResult {
        let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        InOrderEngine::new(CpuConfig::base_in_order()).run(trace, &mut hierarchy)
    }

    /// A trace of independent loads over a working set larger than the L1 so
    /// that misses are frequent but overlappable.
    fn independent_miss_trace(n: usize) -> Trace {
        let records = (0..n as u64)
            .map(|i| {
                // 8 independent ALU ops per load give the window work to hide
                // the miss under.
                if i % 8 == 0 {
                    InstrRecord::new(0x40_0000 + (i % 8) * 4, Op::Load(0x100_0000 + (i * 67 % 4096) * 4096))
                } else {
                    InstrRecord::new(0x40_0000 + (i % 8) * 4, Op::Int)
                }
            })
            .collect();
        Trace::new("overlap", records)
    }

    #[test]
    fn independent_work_issues_wide() {
        let records = (0..4000)
            .map(|i| InstrRecord::new(0x40_0000 + (i % 8) * 4, Op::Int))
            .collect();
        let trace = Trace::new("alu", records);
        let (result, _) = run_ooo(&trace);
        assert!(result.ipc() > 3.0, "ipc {}", result.ipc());
    }

    #[test]
    fn nonblocking_cache_hides_miss_latency_relative_to_blocking() {
        let trace = independent_miss_trace(16_000);
        let (ooo, _) = run_ooo(&trace);
        let ino = run_inorder(&trace);
        assert!(
            ino.cycles as f64 > ooo.cycles as f64 * 1.5,
            "out-of-order should hide a large part of the miss latency: in-order {} vs ooo {}",
            ino.cycles,
            ooo.cycles
        );
    }

    #[test]
    fn rob_bounds_runahead() {
        // A single enormous-latency chain of misses: the window cannot hide
        // everything because the ROB fills.
        let records: Vec<_> = (0..4000u64)
            .map(|i| InstrRecord::with_deps(0x40_0000, Op::Load(0x100_0000 + i * 4096), 1, 0))
            .collect();
        let trace = Trace::new("serial-misses", records);
        let (result, _) = run_ooo(&trace);
        assert!(
            result.cpi() > 50.0,
            "dependent misses cannot be hidden, cpi {}",
            result.cpi()
        );
    }

    #[test]
    fn icache_misses_stall_dispatch() {
        // Instructions spread over a footprint far larger than the 32K L1I,
        // with no data accesses: cycles are dominated by i-cache misses.
        let records: Vec<_> = (0..20_000u64)
            .map(|i| InstrRecord::new(0x40_0000 + (i * 97 % 8192) * 32, Op::Int))
            .collect();
        let trace = Trace::new("ifootprint", records);
        let (result, hierarchy) = run_ooo(&trace);
        assert!(hierarchy.l1i().stats().miss_ratio() > 0.5);
        assert!(
            result.cpi() > 10.0,
            "i-cache misses are exposed in the OoO engine, cpi {}",
            result.cpi()
        );
    }

    #[test]
    fn runs_full_spec_profiles() {
        for profile in [spec::gcc(), spec::swim(), spec::vortex()] {
            let name = profile.name;
            let trace = TraceGenerator::new(profile, 11).generate(30_000);
            let (result, hierarchy) = run_ooo(&trace);
            assert_eq!(result.instructions, 30_000, "{name}");
            assert!(result.ipc() > 0.05 && result.ipc() < 4.0, "{name}: {}", result.ipc());
            assert!(hierarchy.l1d().stats().accesses > 3_000, "{name}");
            assert_eq!(result.activity.committed, 30_000, "{name}");
        }
    }

    #[test]
    fn ooo_is_faster_than_inorder_on_real_profiles() {
        let trace = TraceGenerator::new(spec::su2cor(), 5).generate(30_000);
        let (ooo, _) = run_ooo(&trace);
        let ino = run_inorder(&trace);
        assert!(
            ooo.cycles < ino.cycles,
            "ooo {} should beat in-order {}",
            ooo.cycles,
            ino.cycles
        );
    }

    #[test]
    fn hook_called_once_per_instruction() {
        struct Counter(u64);
        impl SimHook for Counter {
            fn post_commit(&mut self, committed: u64, _c: u64, _h: &mut MemoryHierarchy) {
                assert_eq!(committed, self.0 + 1);
                self.0 = committed;
            }
        }
        let trace = TraceGenerator::new(spec::vpr(), 2).generate(2_000);
        let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut hook = Counter(0);
        OutOfOrderEngine::new(CpuConfig::base_out_of_order()).run_with_hook(
            &trace,
            &mut hierarchy,
            &mut hook,
        );
        assert_eq!(hook.0, 2_000);
    }
}
