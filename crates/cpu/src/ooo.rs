//! The out-of-order issue engine with a non-blocking data cache.
//!
//! The engine runs as a two-stage batch pipeline: for each incoming
//! [`TraceSource`] chunk, [`LaneBatch::decode`] produces a one-byte
//! dispatch lane (raw operation tag + i-cache-access mark) and the batch's
//! activity totals, and the serial issue/complete/retire recurrence then
//! zips the packed records with that lane — the per-record classification
//! work is hoisted, while the record stream itself stays in its dense
//! 12-byte layout (a full multi-lane transpose measured slower; see
//! [`crate::lanes`] for the rationale). [`crate::scalar`] holds the
//! per-record reference implementation the batch pipeline is
//! differentially tested against.

use rescache_cache::{MemoryHierarchy, MshrFile};
use rescache_trace::{kind, Trace, TraceSource};

use crate::activity::ActivityCounters;
use crate::branch::BranchPredictor;
use crate::config::CpuConfig;
use crate::fetch::FetchUnit;
use crate::hook::{NoopHook, SimHook};
use crate::lanes::{
    producer_ready, LaneBatch, COMPLETION_RING, ICACHE_FLAG, KIND_MASK, LANE_BATCH,
};
use crate::lsq::LoadStoreQueue;
use crate::result::{LatencyStats, SimResult};
use crate::rob::ReorderBuffer;

/// Four-wide out-of-order issue with a non-blocking d-cache.
///
/// The model is dispatch-driven: instructions enter the window at up to
/// `issue_width` per cycle (stalling on i-cache misses, branch mispredictions
/// and a full ROB/LSQ), execute as soon as their producers are ready, and
/// commit in order. Data-cache misses overlap with younger independent work
/// as long as MSHRs and the ROB have capacity — which is precisely why the
/// paper finds static resizing competitive with dynamic resizing on this
/// configuration: the extra d-cache misses a smaller static size causes are
/// largely off the critical path.
#[derive(Debug, Clone)]
pub struct OutOfOrderEngine {
    config: CpuConfig,
}

impl OutOfOrderEngine {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero-sized structures.
    pub fn new(config: CpuConfig) -> Self {
        config.assert_valid();
        Self { config }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Replays `trace` against `hierarchy` with no observer hook.
    ///
    /// This monomorphizes the engine loop over [`NoopHook`] and the
    /// materialized [`rescache_trace::TraceCursor`] source, so plain
    /// (non-resizing) simulations pay no per-instruction virtual call and
    /// run over one contiguous record slice.
    pub fn run(&self, trace: &Trace, hierarchy: &mut MemoryHierarchy) -> SimResult {
        self.run_impl(&mut trace.cursor(), hierarchy, &mut NoopHook)
    }

    /// Replays `trace` against `hierarchy`, invoking `hook` after every
    /// dispatched-and-eventually-committed instruction.
    pub fn run_with_hook(
        &self,
        trace: &Trace,
        hierarchy: &mut MemoryHierarchy,
        hook: &mut dyn SimHook,
    ) -> SimResult {
        self.run_impl(&mut trace.cursor(), hierarchy, hook)
    }

    /// Consumes `source` chunk by chunk against `hierarchy` with no observer
    /// hook — the streaming twin of [`OutOfOrderEngine::run`]: a
    /// generator-backed source simulates without ever materializing the full
    /// trace.
    pub fn run_source<S: TraceSource>(
        &self,
        source: &mut S,
        hierarchy: &mut MemoryHierarchy,
    ) -> SimResult {
        self.run_impl(source, hierarchy, &mut NoopHook)
    }

    /// Consumes `source` chunk by chunk, invoking `hook` after every
    /// dispatched-and-eventually-committed instruction.
    pub fn run_source_with_hook<S: TraceSource>(
        &self,
        source: &mut S,
        hierarchy: &mut MemoryHierarchy,
        hook: &mut dyn SimHook,
    ) -> SimResult {
        self.run_impl(source, hierarchy, hook)
    }

    fn run_impl<S: TraceSource, H: SimHook + ?Sized>(
        &self,
        source: &mut S,
        hierarchy: &mut MemoryHierarchy,
        hook: &mut H,
    ) -> SimResult {
        let cfg = &self.config;
        let mut dispatch_cycle: u64 = 1;
        let mut dispatched_this_cycle: u32 = 0;
        let mut fetch_resume_cycle: u64 = 0;
        let mut completion = [0u64; COMPLETION_RING];
        let mut rob = ReorderBuffer::new(cfg.rob_entries, cfg.issue_width);
        let mut lsq = LoadStoreQueue::new(cfg.lsq_entries);
        let mut mshr = MshrFile::new(cfg.mshr_entries);
        let mut fetch = FetchUnit::new(hierarchy.config().l1i.block_bytes, cfg.issue_width);
        let mut predictor = BranchPredictor::default();
        let mut lanes = LaneBatch::new();
        let mut last_forced_commit: u64 = 0;
        let block_shift = hierarchy.config().l1d.block_bytes.max(1).trailing_zeros();
        let store_latency_cap = hierarchy.config().l1d.hit_latency + 1;
        // The ALU classes (the most common pair) resolve their latency by a
        // two-entry table indexed with the kind tag instead of a branch.
        let alu_latency = [cfg.int_latency, cfg.fp_latency];
        // Activity totals are accumulated per decoded batch (see
        // `LaneBatch::totals`) and expanded into the full counter set once at
        // the end (see `ActivityCounters::from_run_totals`).
        let mut fp_ops: u64 = 0;
        let mut mem_ops: u64 = 0;
        let mut branches: u64 = 0;
        let mut regfile_reads: u64 = 0;
        let mut latency = LatencyStats::default();

        let mut idx: usize = 0;
        loop {
            let chunk = source.next_chunk();
            if chunk.is_empty() {
                break;
            }
            // Streamed chunks are at most one batch wide; a materialized
            // cursor's whole-window chunk is sub-sliced into batches here.
            for records in chunk.chunks(LANE_BATCH) {
                lanes.decode(records, &mut fetch);
                let totals = lanes.totals();
                fp_ops += totals.fp_ops;
                mem_ops += totals.mem_ops;
                branches += totals.branches;
                regfile_reads += totals.regfile_reads;
                for (rec, &flags) in records.iter().zip(lanes.dispatch()) {
                    let lane_kind = flags & KIND_MASK;
                    // Width wrap and misprediction redirects resolve through
                    // selects: both follow simulated data, so host branches
                    // here are unpredictable (this loop head runs once per
                    // instruction).
                    let wrap = dispatched_this_cycle >= cfg.issue_width;
                    dispatch_cycle += u64::from(wrap);
                    if wrap {
                        dispatched_this_cycle = 0;
                    }
                    let redirected = dispatch_cycle < fetch_resume_cycle;
                    dispatch_cycle = dispatch_cycle.max(fetch_resume_cycle);
                    if redirected {
                        dispatched_this_cycle = 0;
                    }

                    // Instruction fetch: the group decision was precomputed in
                    // the decode pass; misses stall dispatch directly.
                    if flags & ICACHE_FLAG != 0 {
                        let fetch_stall = fetch.access(rec.pc(), dispatch_cycle, hierarchy);
                        if fetch_stall > 0 {
                            dispatch_cycle += fetch_stall;
                            dispatched_this_cycle = 0;
                        }
                    }

                    // Window space: a full ROB forces the oldest instruction
                    // to commit before this one can dispatch.
                    if let Some(commit_cycle) = rob.commit_if_full() {
                        last_forced_commit = last_forced_commit.max(commit_cycle);
                        let bumped = commit_cycle > dispatch_cycle;
                        dispatch_cycle = dispatch_cycle.max(commit_cycle);
                        if bumped {
                            dispatched_this_cycle = 0;
                        }
                    }

                    // Operands become ready when both producers have completed.
                    let dep_ready = producer_ready(&completion, idx, rec.dep1())
                        .max(producer_ready(&completion, idx, rec.dep2()));
                    let ready = dispatch_cycle.max(dep_ready);

                    let complete = if lane_kind >= kind::BRANCH_NOT_TAKEN {
                        let taken = lane_kind == kind::BRANCH_TAKEN;
                        let correct = predictor.resolve(rec.pc(), taken);
                        let finish = ready + cfg.int_latency;
                        if !correct {
                            // Fetch resumes only after the branch resolves and
                            // the front end refills.
                            fetch_resume_cycle =
                                fetch_resume_cycle.max(finish + cfg.mispredict_penalty);
                        }
                        finish
                    } else if lane_kind == kind::LOAD {
                        let addr = u64::from(rec.addr_raw());
                        let access = hierarchy.access_data(addr, false, ready);
                        let finish = if access.l1_hit {
                            // Retire on every load, hit or miss: `ready` is
                            // not monotone across loads (dependency delays can
                            // push a hit's `ready` past a later miss's), so
                            // retiring only on misses would let a later,
                            // earlier-`ready` miss merge with an entry an
                            // intervening hit would have retired. Misses
                            // retire inside `lookup_retire`; hits pay this
                            // one predictable branch.
                            mshr.retire_completed(ready);
                            ready + access.latency
                        } else {
                            let block = addr >> block_shift;
                            if let Some(hit) = mshr.lookup_retire(block, ready) {
                                // Secondary miss: merge with the in-flight
                                // fill — a delayed hit, priced at the fill's
                                // remaining latency (at least the one-cycle
                                // merge).
                                let finish = hit.ready_cycle.max(ready + 1);
                                let remaining = finish - ready;
                                latency.delayed_hits += 1;
                                latency.delayed_hit_cycles += remaining;
                                hierarchy.note_delayed_hit(addr, remaining);
                                finish
                            } else if mshr.is_full() {
                                // All MSHRs busy: the miss waits for one to free.
                                let free_at = mshr
                                    .earliest_completion()
                                    .expect("full MSHR file is non-empty");
                                mshr.retire_completed(free_at);
                                let start = free_at.max(ready);
                                let finish = start + access.latency;
                                mshr.allocate(block, start, finish);
                                latency.d_primary_misses += 1;
                                latency.d_miss_cycles += access.latency;
                                latency.l2_hit_fills += u64::from(access.l2_hit);
                                latency.memory_fills += u64::from(!access.l2_hit);
                                finish
                            } else {
                                let finish = ready + access.latency;
                                mshr.allocate(block, ready, finish);
                                latency.d_primary_misses += 1;
                                latency.d_miss_cycles += access.latency;
                                latency.l2_hit_fills += u64::from(access.l2_hit);
                                latency.memory_fills += u64::from(!access.l2_hit);
                                finish
                            }
                        };
                        finish + lsq.reserve_delay(ready, finish)
                    } else if lane_kind == kind::STORE {
                        // Stores update the cache but retire through the write
                        // buffer: the pipeline only pays the L1 access.
                        let access = hierarchy.access_data(u64::from(rec.addr_raw()), true, ready);
                        if !access.l1_hit {
                            // A store miss starts a fill too, but the pipeline
                            // only ever pays the capped write-buffer latency.
                            latency.d_primary_misses += 1;
                            latency.d_miss_cycles += access.latency.min(store_latency_cap);
                            latency.l2_hit_fills += u64::from(access.l2_hit);
                            latency.memory_fills += u64::from(!access.l2_hit);
                        }
                        let finish = ready + access.latency.min(store_latency_cap);
                        finish + lsq.reserve_delay(ready, finish)
                    } else {
                        ready + alu_latency[usize::from(lane_kind)]
                    };

                    rob.dispatch(complete);
                    completion[idx % COMPLETION_RING] = complete;
                    dispatched_this_cycle += 1;
                    idx += 1;
                    hook.post_commit(idx as u64, dispatch_cycle, hierarchy);
                }
            }
        }

        let drained = rob.drain();
        let cycles = drained.max(last_forced_commit).max(dispatch_cycle);
        SimResult {
            cycles,
            instructions: idx as u64,
            activity: ActivityCounters::from_run_totals(
                idx as u64,
                fp_ops,
                mem_ops,
                branches,
                regfile_reads,
            ),
            branch: predictor.stats(),
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inorder::InOrderEngine;
    use rescache_cache::HierarchyConfig;
    use rescache_trace::{spec, InstrRecord, Op, TraceGenerator};

    fn run_ooo(trace: &Trace) -> (SimResult, MemoryHierarchy) {
        let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let result =
            OutOfOrderEngine::new(CpuConfig::base_out_of_order()).run(trace, &mut hierarchy);
        (result, hierarchy)
    }

    fn run_inorder(trace: &Trace) -> SimResult {
        let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        InOrderEngine::new(CpuConfig::base_in_order()).run(trace, &mut hierarchy)
    }

    /// A trace of independent loads over a working set larger than the L1 so
    /// that misses are frequent but overlappable.
    fn independent_miss_trace(n: usize) -> Trace {
        let records = (0..n as u64)
            .map(|i| {
                // 8 independent ALU ops per load give the window work to hide
                // the miss under.
                if i % 8 == 0 {
                    InstrRecord::new(
                        0x40_0000 + (i % 8) * 4,
                        Op::Load(0x100_0000 + (i * 67 % 4096) * 4096),
                    )
                } else {
                    InstrRecord::new(0x40_0000 + (i % 8) * 4, Op::Int)
                }
            })
            .collect();
        Trace::new("overlap", records)
    }

    #[test]
    fn independent_work_issues_wide() {
        let records = (0..4000)
            .map(|i| InstrRecord::new(0x40_0000 + (i % 8) * 4, Op::Int))
            .collect();
        let trace = Trace::new("alu", records);
        let (result, _) = run_ooo(&trace);
        assert!(result.ipc() > 3.0, "ipc {}", result.ipc());
    }

    #[test]
    fn nonblocking_cache_hides_miss_latency_relative_to_blocking() {
        let trace = independent_miss_trace(16_000);
        let (ooo, _) = run_ooo(&trace);
        let ino = run_inorder(&trace);
        assert!(
            ino.cycles as f64 > ooo.cycles as f64 * 1.5,
            "out-of-order should hide a large part of the miss latency: in-order {} vs ooo {}",
            ino.cycles,
            ooo.cycles
        );
    }

    #[test]
    fn rob_bounds_runahead() {
        // A single enormous-latency chain of misses: the window cannot hide
        // everything because the ROB fills.
        let records: Vec<_> = (0..4000u64)
            .map(|i| InstrRecord::with_deps(0x40_0000, Op::Load(0x100_0000 + i * 4096), 1, 0))
            .collect();
        let trace = Trace::new("serial-misses", records);
        let (result, _) = run_ooo(&trace);
        assert!(
            result.cpi() > 50.0,
            "dependent misses cannot be hidden, cpi {}",
            result.cpi()
        );
    }

    #[test]
    fn icache_misses_stall_dispatch() {
        // Instructions spread over a footprint far larger than the 32K L1I,
        // with no data accesses: cycles are dominated by i-cache misses.
        let records: Vec<_> = (0..20_000u64)
            .map(|i| InstrRecord::new(0x40_0000 + (i * 97 % 8192) * 32, Op::Int))
            .collect();
        let trace = Trace::new("ifootprint", records);
        let (result, hierarchy) = run_ooo(&trace);
        assert!(hierarchy.l1i().stats().miss_ratio() > 0.5);
        assert!(
            result.cpi() > 10.0,
            "i-cache misses are exposed in the OoO engine, cpi {}",
            result.cpi()
        );
    }

    #[test]
    fn runs_full_spec_profiles() {
        for profile in [spec::gcc(), spec::swim(), spec::vortex()] {
            let name = profile.name;
            let trace = TraceGenerator::new(profile, 11).generate(30_000);
            let (result, hierarchy) = run_ooo(&trace);
            assert_eq!(result.instructions, 30_000, "{name}");
            assert!(
                result.ipc() > 0.05 && result.ipc() < 4.0,
                "{name}: {}",
                result.ipc()
            );
            assert!(hierarchy.l1d().stats().accesses > 3_000, "{name}");
            assert_eq!(result.activity.committed, 30_000, "{name}");
        }
    }

    #[test]
    fn ooo_is_faster_than_inorder_on_real_profiles() {
        let trace = TraceGenerator::new(spec::su2cor(), 5).generate(30_000);
        let (ooo, _) = run_ooo(&trace);
        let ino = run_inorder(&trace);
        assert!(
            ooo.cycles < ino.cycles,
            "ooo {} should beat in-order {}",
            ooo.cycles,
            ino.cycles
        );
    }

    /// A probe workload for the completion-ring distance semantics: a serial
    /// chain of far-striding misses ends at `bomb_end` with an enormous
    /// completion time, and the mispredicted branch at index 300 carries
    /// dependency distance `probe_dep`. If the probe's `ready` picks up the
    /// bomb's completion, the (hugely penalized) front-end redirect lands
    /// ~`C_bomb` later and the run visibly stretches; if the distance reads
    /// as "already complete", the redirect lands near the small dispatch
    /// cycle instead.
    fn ring_probe_cycles(probe_dep: u8, bomb_end: u64) -> SimResult {
        let records: Vec<InstrRecord> = (0..340u64)
            .map(|i| {
                if i > bomb_end.saturating_sub(24) && i <= bomb_end {
                    InstrRecord::with_deps(0x40_0000, Op::Load(0x100_0000 + i * 4096), 1, 0)
                } else if i == 300 {
                    InstrRecord::with_deps(0x40_0010, Op::Branch { taken: false }, probe_dep, 0)
                } else {
                    InstrRecord::new(0x40_0000 + (i % 4) * 4, Op::Int)
                }
            })
            .collect();
        let trace = Trace::new("ring-probe", records);
        // A window larger than the trace (no forced commits) and a huge
        // misprediction penalty make the probe's operand-ready cycle, and
        // nothing else, decide where the redirect lands.
        let config = CpuConfig {
            rob_entries: 2048,
            mispredict_penalty: 100_000,
            ..CpuConfig::base_out_of_order()
        };
        let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        OutOfOrderEngine::new(config).run(&trace, &mut hierarchy)
    }

    #[test]
    fn ooo_dependency_distance_beyond_the_ring_reads_as_complete() {
        // Distances past COMPLETION_RING (128) must behave exactly like "no
        // producer": the sampled producer is over 128 instructions back and
        // its ring slot has been recycled. Before the saturation fix,
        // distance 200 from index 300 aliased slot (300 - 200) % 128 — the
        // slot of the *younger* instruction 228, here the bomb — and the
        // probe inherited its enormous completion.
        let with_dep = ring_probe_cycles(200, 228);
        let without_dep = ring_probe_cycles(0, 228);
        assert_eq!(
            with_dep.cycles, without_dep.cycles,
            "a dependency 200 back exceeds the ring and must not alias a younger slot"
        );
        assert_eq!(with_dep.instructions, without_dep.instructions);
    }

    #[test]
    fn ooo_dependency_distance_at_exactly_the_ring_still_resolves() {
        // Distance == COMPLETION_RING is the last in-range distance: the slot
        // is overwritten only after the current instruction's operands are
        // read, so it still holds the exact producer (here the bomb at
        // 300 - 128 = 172). The probe must wait on it, unlike the saturated
        // beyond-ring case.
        let at_ring = ring_probe_cycles(128, 172);
        let without_dep = ring_probe_cycles(0, 172);
        assert!(
            at_ring.cycles > without_dep.cycles + 1_000,
            "distance 128 reads the true (still in-flight) producer: {} vs {}",
            at_ring.cycles,
            without_dep.cycles
        );
    }

    #[test]
    fn hook_called_once_per_instruction() {
        struct Counter(u64);
        impl SimHook for Counter {
            fn post_commit(&mut self, committed: u64, _c: u64, _h: &mut MemoryHierarchy) {
                assert_eq!(committed, self.0 + 1);
                self.0 = committed;
            }
        }
        let trace = TraceGenerator::new(spec::vpr(), 2).generate(2_000);
        let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut hook = Counter(0);
        OutOfOrderEngine::new(CpuConfig::base_out_of_order()).run_with_hook(
            &trace,
            &mut hierarchy,
            &mut hook,
        );
        assert_eq!(hook.0, 2_000);
    }
}
