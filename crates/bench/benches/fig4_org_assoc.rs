//! Figure 4: processor energy-delay reduction of static selective-ways vs.
//! selective-sets resizing, for 2/4/8/16-way 32K L1 d- and i-caches.

use rescache_bench::{all_apps, bench_runner, print_header, timed};
use rescache_core::experiment::{format_table, organization_vs_associativity};
use rescache_core::{Organization, ResizableCacheSide};

fn main() {
    print_header(
        "Figure 4 — resizable cache organizations and energy-delay reductions",
        "Mean reduction (%) in processor energy-delay across the 12 applications, static resizing, base out-of-order processor.",
    );
    let runner = bench_runner();
    let apps = all_apps();
    let orgs = [Organization::SelectiveWays, Organization::SelectiveSets];
    let assocs = [2u32, 4, 8, 16];

    for side in ResizableCacheSide::ALL {
        let label = match side {
            ResizableCacheSide::Data => "(a) D-Cache",
            ResizableCacheSide::Instruction => "(b) I-Cache",
        };
        let points = timed(label, || {
            organization_vs_associativity(&runner, &apps, &assocs, &orgs, side)
                .expect("all combinations in Figure 4 are applicable")
        });
        let mut rows = Vec::new();
        for assoc in assocs {
            let mut row = vec![format!("{assoc}-way")];
            for org in orgs {
                let value = points
                    .iter()
                    .find(|p| p.associativity == assoc && p.organization == org)
                    .map(|p| format!("{:.1}", p.mean_edp_reduction))
                    .unwrap_or_else(|| "n/a".to_string());
                row.push(value);
            }
            rows.push(row);
        }
        println!("{label}");
        println!(
            "{}",
            format_table(
                &[
                    "associativity",
                    "selective-ways EDP red. %",
                    "selective-sets EDP red. %"
                ],
                &rows
            )
        );
    }
    println!("Paper reference (d-cache): ways 5/8/11/15 %, sets 9/11/9/6 % for 2/4/8/16-way.");
    println!("Paper reference (i-cache): ways 6/10/13/17 %, sets 11/12/11/8 %.");
}
