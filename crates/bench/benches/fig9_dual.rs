//! Figure 9: resizing the d-cache alone, the i-cache alone, and both caches
//! simultaneously (additivity of the savings), with static selective-sets on
//! the base out-of-order system.

use rescache_bench::{all_apps, bench_runner, print_header, timed};
use rescache_core::experiment::{dual_resizing, format_table, mean};
use rescache_core::{Organization, SystemConfig};

fn main() {
    print_header(
        "Figure 9 — decoupled resizings on d-cache and i-cache",
        "Static selective-sets, 32K 2-way L1s, base out-of-order processor. Size reductions are normalised to the combined 64K of L1 capacity.",
    );
    let runner = bench_runner();
    let apps = all_apps();

    let rows = timed("dual resizing sweep", || {
        dual_resizing(
            &runner,
            &apps,
            &SystemConfig::base(),
            Organization::SelectiveSets,
        )
        .expect("selective-sets applies to both 2-way L1s")
    });

    let mut size_table = Vec::new();
    let mut edp_table = Vec::new();
    for (outcome, row) in &rows {
        size_table.push(vec![
            outcome.app.clone(),
            format!("{:.0}", row.d_alone_size_reduction),
            format!("{:.0}", row.i_alone_size_reduction),
            format!("{:.0}", row.both_size_reduction),
        ]);
        edp_table.push(vec![
            outcome.app.clone(),
            format!("{:.1}", row.d_alone_edp_reduction),
            format!("{:.1}", row.i_alone_edp_reduction),
            format!("{:.1}", row.both_edp_reduction),
            format!("{:.1}", row.stacked_edp_reduction()),
            format!("{:.1}", row.both_slowdown),
        ]);
    }
    let d_size: Vec<f64> = rows.iter().map(|(_, r)| r.d_alone_size_reduction).collect();
    let i_size: Vec<f64> = rows.iter().map(|(_, r)| r.i_alone_size_reduction).collect();
    let b_size: Vec<f64> = rows.iter().map(|(_, r)| r.both_size_reduction).collect();
    size_table.push(vec![
        "AVG.".into(),
        format!("{:.0}", mean(&d_size)),
        format!("{:.0}", mean(&i_size)),
        format!("{:.0}", mean(&b_size)),
    ]);
    let d_edp: Vec<f64> = rows.iter().map(|(_, r)| r.d_alone_edp_reduction).collect();
    let i_edp: Vec<f64> = rows.iter().map(|(_, r)| r.i_alone_edp_reduction).collect();
    let b_edp: Vec<f64> = rows.iter().map(|(_, r)| r.both_edp_reduction).collect();
    let s_edp: Vec<f64> = rows
        .iter()
        .map(|(_, r)| r.stacked_edp_reduction())
        .collect();
    let slow: Vec<f64> = rows.iter().map(|(_, r)| r.both_slowdown).collect();
    edp_table.push(vec![
        "AVG.".into(),
        format!("{:.1}", mean(&d_edp)),
        format!("{:.1}", mean(&i_edp)),
        format!("{:.1}", mean(&b_edp)),
        format!("{:.1}", mean(&s_edp)),
        format!("{:.1}", mean(&slow)),
    ]);

    println!("(a) Cache size reduction (% of combined d+i capacity)");
    println!(
        "{}",
        format_table(
            &["application", "d-cache alone", "i-cache alone", "both"],
            &size_table
        )
    );
    println!("(b) Energy-delay reduction (%)");
    println!(
        "{}",
        format_table(
            &[
                "application",
                "d-cache alone",
                "i-cache alone",
                "both together",
                "d+i stacked",
                "slowdown % (both)",
            ],
            &edp_table
        )
    );
    println!(
        "Paper reference: simultaneous resizing saves ~20 % of processor energy-delay on average,"
    );
    println!("and the combined saving is close to the sum of the individual savings (additivity).");
}
