//! Criterion micro-benchmarks of the simulation substrate itself: trace
//! generation, cache access, and the two execution engines. These are the
//! performance benches of the workspace (the figure benches measure the
//! reproduced results, not wall-clock performance).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use rescache_cache::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy};
use rescache_cpu::{CpuConfig, Simulator};
use rescache_trace::{spec, TraceGenerator};

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("gcc_50k_instructions", |b| {
        b.iter(|| TraceGenerator::new(spec::gcc(), 7).generate(50_000))
    });
    group.finish();
}

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("l1_hit_stream_10k", |b| {
        let mut cache = Cache::new(CacheConfig::l1_default(32 * 1024, 2)).unwrap();
        cache.fill(0x1000, false);
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..10_000u64 {
                if cache.access_read(0x1000 + (i % 4) * 8).hit {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("resize_cycle", |b| {
        b.iter_batched(
            || {
                let mut cache = Cache::new(CacheConfig::l1_default(32 * 1024, 2)).unwrap();
                for i in 0..1024u64 {
                    cache.fill(i * 32, i % 2 == 0);
                }
                cache
            },
            |mut cache| {
                cache.set_enabled_sets(64);
                cache.set_enabled_sets(512);
                cache
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let trace = TraceGenerator::new(spec::m88ksim(), 3).generate(20_000);
    let mut group = c.benchmark_group("engines");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(20);
    group.bench_function("out_of_order_20k", |b| {
        b.iter_batched(
            || MemoryHierarchy::new(HierarchyConfig::base()).unwrap(),
            |mut h| Simulator::new(CpuConfig::base_out_of_order()).run(&trace, &mut h),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("in_order_20k", |b| {
        b.iter_batched(
            || MemoryHierarchy::new(HierarchyConfig::base()).unwrap(),
            |mut h| Simulator::new(CpuConfig::base_in_order()).run(&trace, &mut h),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_cache_access,
    bench_engines
);
criterion_main!(benches);
