//! Throughput harness for the simulation substrate itself: measures simulated
//! instructions (or cache accesses) per wall-clock second for the stages every
//! experiment runs through — trace generation, the cache access path, the two
//! execution engines, and a figure-5-style static sweep — and records the
//! numbers in `BENCH_sim_throughput.json` at the workspace root so successive
//! performance PRs have a tracked trajectory.
//!
//! Unlike the figure benches (which reproduce the paper's *results*), this
//! bench measures the *simulator*: its unit is MIPS, millions of simulated
//! instructions per second of wall-clock time.
//!
//! Run with `cargo bench --bench sim_throughput`. Set
//! `RESCACHE_BENCH_QUICK=1` to run a fast smoke-test variant (used by CI;
//! `0`, `false` and the empty string count as unset). Quick runs only ever
//! write the `.quick.json` sibling — the committed full-run trajectory file
//! is never touched in quick mode.
//!
//! The store-backed stages (`trace_store_load`, `dyn_streamed`,
//! `sweep_service_multiproc`) exercise the persistent-store path and
//! therefore need `RESCACHE_TRACE_DIR`;
//! when it is not set they are skipped — recorded in the JSON with
//! `"status": "skipped"` — rather than silently writing into a fabricated
//! temp directory or failing. Each run uses (and removes) a
//! `bench-<stage>-<pid>` subdirectory so a real store is never polluted.

use std::time::Instant;

use rescache_bench::bench_runner;
use rescache_cache::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy, ReplacementPolicy};
use rescache_core::experiment::{
    effective_workers, per_app_org_comparison, RunSetup, Runner, RunnerConfig, ServeConfig,
    StoreHealth, SweepServer, TraceStore,
};
use rescache_core::{ConfigSpace, DynamicParams, Organization, ResizableCacheSide, SystemConfig};
use rescache_cpu::{CpuConfig, LatencyStats, Simulator};
use rescache_trace::{codec, spec, TraceFormat, TraceGenerator, TraceSource, WorkloadRegistry};

/// One measured stage of the simulation pipeline.
struct EngineResult {
    name: &'static str,
    /// Work items per repetition (instructions, or cache accesses for the
    /// pure cache stages).
    items: u64,
    /// Best wall-clock seconds over the measured repetitions.
    seconds: f64,
    /// Millions of items per second at the best repetition.
    mips: f64,
    /// `true` when `items` counts the sweep's *nominal* workload (runs ×
    /// instructions as the pre-optimization kernel executed them) rather
    /// than instructions literally simulated: memoization legitimately
    /// skips redundant runs, so the quotient is an *equivalent* MIPS — a
    /// figure of merit for "figure produced per second" whose before/after
    /// ratio equals the wall-clock ratio.
    nominal_workload: bool,
    /// `true` when the stage did not run (missing `RESCACHE_TRACE_DIR`);
    /// recorded in the JSON as `"status": "skipped"` with zeroed values so
    /// trajectory consumers can tell "not measured" from "measured as 0".
    skipped: bool,
    /// The trace-format version whose bit stream the stage generated,
    /// replayed or simulated; `None` only for the stages that touch no
    /// trace records at all (the pure cache-access kernels).
    trace_format: Option<TraceFormat>,
    /// On-disk size of the store entry the stage replays, and the ratio of
    /// the raw 12-byte-per-record encoding to that size; `Some` only for
    /// `trace_store_load`, the stage whose whole point is the disk format.
    store_bytes: Option<u64>,
    compression_ratio: Option<f64>,
    /// Request lines the sweep service answered, and the shared tier's
    /// result-cache hit rate over the stage (hits + coalesced over all
    /// lookups); `Some` only for `sweep_service` (one process, one tier)
    /// and `sweep_service_multiproc` (N server processes sharing a store
    /// directory, counters aggregated across them), the stages whose whole
    /// point is serving shared results.
    requests: Option<u64>,
    hit_rate: Option<f64>,
    /// Latency-domain counters from the stage's last engine run; `Some`
    /// only for the replacement-policy pair, whose whole point is the
    /// delayed-hit stall profile rather than raw MIPS.
    latency: Option<LatencyStats>,
}

/// The record for a stage that was skipped because its prerequisite
/// environment (the trace-store directory) is absent.
fn skipped(name: &'static str) -> EngineResult {
    println!("{name:<24} skipped (RESCACHE_TRACE_DIR not set)");
    EngineResult {
        name,
        items: 0,
        seconds: 0.0,
        mips: 0.0,
        nominal_workload: false,
        skipped: true,
        trace_format: None,
        store_bytes: None,
        compression_ratio: None,
        requests: None,
        hit_rate: None,
        latency: None,
    }
}

/// A per-stage scratch subdirectory under `RESCACHE_TRACE_DIR`, or `None`
/// (skip the stage) when the variable is unset or empty. The subdirectory is
/// namespaced by stage and pid so concurrent runs cannot collide and a real
/// store's entries are never touched; callers remove it when done.
fn store_scratch_dir(stage: &str) -> Option<std::path::PathBuf> {
    let root = std::env::var("RESCACHE_TRACE_DIR").ok()?;
    if root.trim().is_empty() {
        return None;
    }
    Some(std::path::Path::new(&root).join(format!("bench-{stage}-{}", std::process::id())))
}

/// Runs `body` `reps` times (after one untimed warm-up) and keeps the fastest
/// repetition; `items` is the simulated work per repetition.
fn measure(
    name: &'static str,
    items: u64,
    reps: usize,
    mut body: impl FnMut() -> u64,
) -> EngineResult {
    let mut check = body(); // warm-up, also keeps the result alive
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        check = check.wrapping_add(body());
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
        }
    }
    // Keep the accumulated check value observable so the work is not elided.
    if check == u64::MAX {
        eprintln!("(unreachable checksum {check})");
    }
    let mips = items as f64 / best / 1.0e6;
    println!("{name:<24} {items:>10} items   {best:>9.4} s   {mips:>9.2} MIPS");
    EngineResult {
        name,
        items,
        seconds: best,
        mips,
        nominal_workload: false,
        skipped: false,
        trace_format: None,
        store_bytes: None,
        compression_ratio: None,
        requests: None,
        hit_rate: None,
        latency: None,
    }
}

fn bench_trace_gen(scale: u64, format: TraceFormat) -> EngineResult {
    let n = (50_000 * scale) as usize;
    let mut result = measure("trace_gen", n as u64, 5, || {
        TraceGenerator::new(spec::gcc(), 7)
            .with_format(format)
            .generate(n)
            .len() as u64
    });
    result.trace_format = Some(format);
    result
}

/// Chunked generation through the `TraceSource` pull interface: the same
/// record sequence as `trace_gen`, but only one `CHUNK_RECORDS` buffer ever
/// resident — the rate a streaming (fused generate-and-simulate) run feeds
/// its engine at.
fn bench_trace_gen_streaming(scale: u64, format: TraceFormat) -> EngineResult {
    let n = (50_000 * scale) as usize;
    let mut result = measure("trace_gen_streaming", n as u64, 5, || {
        let mut stream = TraceGenerator::new(spec::gcc(), 7)
            .with_format(format)
            .stream(n);
        let mut records = 0u64;
        loop {
            let chunk = stream.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records += chunk.len() as u64;
        }
        records
    });
    result.trace_format = Some(format);
    result
}

/// Replaying a persisted trace from the on-disk store (the cross-process
/// reuse path `RESCACHE_TRACE_DIR` enables): the store-serve path decodes
/// each chunk straight into a resident buffer the engine batch lanes read
/// from, so the stage drains `TraceFileSource` chunk by chunk — it never
/// materializes a whole-trace `Vec<InstrRecord>`.
fn bench_trace_store_load(scale: u64, format: TraceFormat) -> EngineResult {
    let n = (50_000 * scale) as usize;
    let Some(dir) = store_scratch_dir("store-load") else {
        return skipped("trace_store_load");
    };
    std::fs::create_dir_all(&dir).expect("create bench store dir");
    let path = dir.join("gcc.rctrace");
    codec::save_trace(
        &path,
        &TraceGenerator::new(spec::gcc(), 7)
            .with_format(format)
            .generate(n),
    )
    .expect("persist bench trace");
    let store_bytes = std::fs::metadata(&path).expect("stat bench trace").len();
    let mut result = measure("trace_store_load", n as u64, 5, || {
        let mut source = codec::TraceFileSource::open(&path, None).expect("open bench trace");
        let mut records = 0u64;
        loop {
            let chunk = source.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records += chunk.len() as u64;
        }
        records
    });
    result.trace_format = Some(format);
    result.store_bytes = Some(store_bytes);
    // Ratio of the raw fixed-width encoding (12 bytes/record) to what the
    // entry actually occupies on disk — 1.0 for the uncompressed formats.
    result.compression_ratio = Some(12.0 * n as f64 / store_bytes as f64);
    std::fs::remove_dir_all(&dir).ok();
    result
}

fn bench_hit_stream(scale: u64) -> EngineResult {
    let n = 200_000 * scale;
    let mut cache = Cache::new(CacheConfig::l1_default(32 * 1024, 2)).unwrap();
    cache.fill(0x1000, false);
    measure("hit_stream", n, 5, move || {
        let mut hits = 0u64;
        for i in 0..n {
            if cache.access_read(0x1000 + (i % 4) * 8).hit {
                hits += 1;
            }
        }
        hits
    })
}

fn bench_evict_stream(scale: u64) -> EngineResult {
    // Aliasing addresses so every fill evicts: this is the allocation-prone
    // miss path (choose_victim) of the pre-optimization kernel.
    let n = 100_000 * scale;
    let mut cache = Cache::new(CacheConfig::l1_default(32 * 1024, 4)).unwrap();
    let way_span = 8 * 1024u64;
    measure("evict_stream", n, 5, move || {
        let mut evictions = 0u64;
        for i in 0..n {
            let addr = (i % 8) * way_span; // 8 aliases over 4 ways
            if !cache.access_read(addr).hit && cache.fill(addr, i % 2 == 0).is_some() {
                evictions += 1;
            }
        }
        evictions
    })
}

fn bench_engine(
    name: &'static str,
    config: CpuConfig,
    scale: u64,
    format: TraceFormat,
) -> EngineResult {
    let n = (20_000 * scale) as usize;
    let trace = TraceGenerator::new(spec::m88ksim(), 3)
        .with_format(format)
        .generate(n);
    // These stages finish in ~2 ms, so on a shared host a best-of-3 is
    // regularly inflated by scheduler interference; 15 repetitions (still
    // ~30 ms per stage) land the best-of reliably near the true minimum.
    // More repetitions can only tighten the same statistic, so engine values
    // stay comparable with the earlier best-of-3 trajectory entries.
    let mut result = measure(name, n as u64, 15, move || {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        Simulator::new(config).run(&trace, &mut h).instructions
    });
    result.trace_format = Some(format);
    result
}

/// The cold-start ("trace-limited") stage every sweep pays once per
/// application: generate a fresh trace and simulate it for the first time.
/// `fused: false` is the pre-streaming pipeline (materialize, then replay);
/// `fused: true` interleaves generation and simulation per chunk through
/// `run_source`, with only one chunk buffer resident.
fn bench_gen_plus_first_sim(
    name: &'static str,
    fused: bool,
    scale: u64,
    format: TraceFormat,
) -> EngineResult {
    let n = (20_000 * scale) as usize;
    let config = CpuConfig::base_out_of_order();
    let mut result = measure(name, n as u64, 3, move || {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let generator = TraceGenerator::new(spec::m88ksim(), 3).with_format(format);
        if fused {
            let mut stream = generator.stream(n);
            Simulator::new(config)
                .run_source(&mut stream, &mut h)
                .instructions
        } else {
            let trace = generator.generate(n);
            Simulator::new(config).run(&trace, &mut h).instructions
        }
    });
    result.trace_format = Some(format);
    result
}

/// One out-of-order engine run per registry workload, fed through the
/// streaming source: tracks how the engine responds to each scenario's
/// stress pattern (quick mode covers a three-workload subset).
fn bench_workloads(scale: u64, quick: bool, format: TraceFormat) -> Vec<EngineResult> {
    let n = (20_000 * scale) as usize;
    let registry = WorkloadRegistry::builtin();
    let quick_set = ["nominal", "pointer_chase", "mshr_burst"];
    registry
        .specs()
        .iter()
        .filter(|spec| !quick || quick_set.contains(&spec.name))
        .map(|spec| {
            let profile = spec.profile();
            let config = CpuConfig::base_out_of_order();
            // Registry names are 'static, but `measure` labels want a
            // stable prefixed name; leak once per stage (bounded by the
            // registry size).
            let label: &'static str = Box::leak(format!("wl_{}", spec.name).into_boxed_str());
            let mut result = measure(label, n as u64, 3, move || {
                let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
                let mut stream = TraceGenerator::new(profile.clone(), 3)
                    .with_format(format)
                    .stream(n);
                Simulator::new(config)
                    .run_source(&mut stream, &mut h)
                    .instructions
            });
            result.trace_format = Some(format);
            result
        })
        .collect()
}

/// The replacement-policy headline pair: one delayed-hit-heavy registry
/// workload simulated under baseline LRU and under latency-aware LRU-MAD,
/// back to back in the same process. The interesting output is not MIPS but
/// the latency block each entry carries — mean delayed-hit stall cycles under
/// `lru` vs `lru_mad` compare *within the run*, so the pair's ratio is
/// host-drift-free even on a shared 1-core container.
///
/// The pair runs `conflict_storm` against a conflict-prone 4K 2-way L1
/// (not the 32K base): delayed hits in this model come from a line being
/// evicted while its fill is still in flight, which the base geometry
/// almost never does. Under that pressure MAD's victim scan evicts the
/// lines whose outstanding fills are cheapest, so the merges that remain
/// land close to completion — the *mean* stall per delayed hit drops well
/// below LRU's even though MAD admits more (cheap) merges.
fn bench_policy_pair(scale: u64, format: TraceFormat) -> Vec<EngineResult> {
    let n = (100_000 * scale) as usize;
    let registry = WorkloadRegistry::builtin();
    let spec = registry
        .get("conflict_storm")
        .expect("conflict_storm is a builtin workload");
    let profile = spec.profile();
    [
        ("policy_lru", ReplacementPolicy::Lru),
        ("policy_lru_mad", ReplacementPolicy::LruMad),
    ]
    .into_iter()
    .map(|(label, policy)| {
        let config = CpuConfig::base_out_of_order();
        let profile = profile.clone();
        let mut latency = LatencyStats::default();
        let mut result = measure(label, n as u64, 3, || {
            let mut h =
                MemoryHierarchy::new(HierarchyConfig::with_l1(4 * 1024, 2).with_l1d_policy(policy))
                    .unwrap();
            let mut stream = TraceGenerator::new(profile.clone(), 3)
                .with_format(format)
                .stream(n);
            let r = Simulator::new(config).run_source(&mut stream, &mut h);
            latency = r.latency;
            r.instructions
        });
        println!(
            "{:<24} {:>10} delayed hits   {:>9.3} mean stall cycles",
            format!("  ({label})"),
            latency.delayed_hits,
            latency.mean_delayed_hit_cycles()
        );
        result.trace_format = Some(format);
        result.latency = Some(latency);
        result
    })
    .collect()
}

/// One dynamic-controller run (warm-up + measured region with the miss-ratio
/// resizing hook attached), either through the classic materialized path
/// (`Runner::run` over pre-split traces) or through the streamed store path
/// (`Runner::run_dynamic` replaying a persisted entry chunk by chunk, with
/// no full-length trace resident). The pair tracks what the streamed dynamic
/// pipeline costs/saves against the in-memory replay rate.
fn bench_dynamic(
    name: &'static str,
    streamed: bool,
    scale: u64,
    format: TraceFormat,
    health_out: &mut Option<StoreHealth>,
) -> EngineResult {
    let warm_len = (4_000 * scale) as usize;
    let measure_len = (16_000 * scale) as usize;
    let cfg = RunnerConfig {
        warmup_instructions: warm_len,
        measure_instructions: measure_len,
        trace_seed: 42,
        dynamic_interval: 1_024,
        trace_format: format,
        ..RunnerConfig::paper()
    };
    // The materialized baseline replays resident traces; only the streamed
    // variant needs (and requires) a store directory.
    let dir = if streamed {
        match store_scratch_dir(name) {
            Some(dir) => Some(dir),
            None => return skipped(name),
        }
    } else {
        None
    };
    if let Some(dir) = &dir {
        std::fs::remove_dir_all(dir).ok();
    }
    let store = TraceStore::with_dir(dir.clone());
    let tier = store.tier().clone();
    let runner = Runner::with_store(cfg, store);
    let app = spec::su2cor();
    let system = SystemConfig::base();
    let space = ConfigSpace::enumerate(
        ResizableCacheSide::Data.config_of(&system.hierarchy),
        Organization::SelectiveSets,
    )
    .expect("selective-sets applies to the base d-cache");
    let params = DynamicParams::new(cfg.dynamic_interval, 8, space.min_bytes()).expect("params");
    let setup = RunSetup {
        dynamic: Some((ResizableCacheSide::Data, space, params)),
        d_tag_bits: 4,
        ..RunSetup::default()
    };
    // `measure`'s untimed warm-up call populates the store (generate-to-disk
    // for the streamed variant, materialize-and-memoize for the baseline),
    // so the timed repetitions measure steady-state replay.
    let mut result = measure(name, (warm_len + measure_len) as u64, 3, move || {
        let m = if streamed {
            runner.run_dynamic(&app, &system, &setup)
        } else {
            let (warm_trace, measure_trace) = runner.trace(&app);
            runner.run(&warm_trace, &measure_trace, &system, &setup)
        };
        m.l1d_resizes + m.cycles
    });
    result.trace_format = Some(format);
    // The streamed stage's tier health goes into the JSON record: a bench
    // run that quietly retried, regenerated or degraded is not measuring
    // what it claims to measure.
    *health_out = Some(tier.health_snapshot());
    if let Some(dir) = &dir {
        std::fs::remove_dir_all(dir).ok();
    }
    result
}

/// A figure-5-style static sweep over a subset of applications: the
/// end-to-end path (trace cache, runner, parallel sweep) every figure bench
/// takes. Returns total simulated instructions and the measured result.
fn bench_fig5_sweep(scale: u64) -> EngineResult {
    let runner = bench_runner();
    let cfg = *runner.config();
    let apps = [
        spec::ammp(),
        spec::m88ksim(),
        spec::compress(),
        spec::su2cor(),
    ];
    let orgs = [Organization::SelectiveWays, Organization::SelectiveSets];
    let side = ResizableCacheSide::Data;

    // Count the simulations the sweep performs: per (app, org) one baseline
    // plus one run per offered point, each over warm-up + measured regions.
    let system = SystemConfig::with_l1(32 * 1024, 4);
    let per_run = (cfg.warmup_instructions + cfg.measure_instructions) as u64;
    let mut runs = 0u64;
    for org in orgs {
        let points = ConfigSpace::enumerate(side.config_of(&system.hierarchy), org)
            .expect("both organizations apply to a 4-way cache")
            .points()
            .len() as u64;
        runs += (apps.len() as u64) * (1 + points);
    }
    let total_instructions = runs * per_run;

    let reps = if scale > 1 { 4 } else { 1 };
    let mut result = measure("fig5_sweep", total_instructions, reps, || {
        // Each repetition is one full figure sweep: traces stay shared (they
        // are generated once per process in real sweeps too), but the
        // simulation memoization starts empty so every repetition performs
        // the sweep's full deduplicated simulation work.
        let runner = runner.with_fresh_simulations();
        let rows = per_app_org_comparison(&runner, &apps, 4, &orgs, side)
            .expect("both organizations apply to a 4-way cache");
        rows.len() as u64
    });
    // The sweep's item count is its nominal workload (see `EngineResult`):
    // the runner memoizes simulations shared between sweep arms (e.g. the
    // baseline and each organization's full-size point), so fewer
    // instructions execute than the divisor counts, by design.
    result.nominal_workload = true;
    result.trace_format = Some(cfg.trace_format);
    result
}

/// The sweep service end to end: concurrent clients run identical sweeps
/// against one server over TCP, so almost all of the nominal workload is
/// served from the shared tier's single-flight memos — that sharing *is*
/// the feature under test. The stage therefore reports an *equivalent*
/// MIPS (nominal workload over wall-clock) plus the service's headline
/// counters: requests answered and the result-cache hit rate.
fn bench_sweep_service(scale: u64, format: TraceFormat) -> EngineResult {
    use std::io::{BufRead, Write};

    const CLIENTS: usize = 4;
    const SWEEPS_PER_CLIENT: usize = 2;
    let cfg = RunnerConfig {
        warmup_instructions: (4_000 * scale) as usize,
        measure_instructions: (12_000 * scale) as usize,
        trace_seed: 42,
        dynamic_interval: 1_024,
        trace_format: format,
        ..RunnerConfig::paper()
    };
    // In-memory tier: the stage measures the serving path, not the disk, so
    // it runs everywhere (no RESCACHE_TRACE_DIR requirement).
    let store = TraceStore::with_dir(None);
    let tier = store.tier().clone();
    let server = SweepServer::bind(
        Runner::with_store(cfg, store),
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let (handle, join) = server.spawn().expect("spawn sweep service");

    let system = SystemConfig::base();
    let points = ConfigSpace::enumerate(
        ResizableCacheSide::Data.config_of(&system.hierarchy),
        Organization::SelectiveSets,
    )
    .expect("selective-sets applies to the base d-cache")
    .points()
    .len() as u64;
    // Nominal workload: every sweep's baseline plus one run per point, as
    // the pre-coalescing service would have simulated them.
    let per_run = (cfg.warmup_instructions + cfg.measure_instructions) as u64;
    let nominal = (CLIENTS * SWEEPS_PER_CLIENT) as u64 * (points + 1) * per_run;

    let mut result = measure("sweep_service", nominal, 3, || {
        std::thread::scope(|scope| {
            let clients: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    scope.spawn(|| {
                        let stream =
                            std::net::TcpStream::connect(addr).expect("connect bench client");
                        let mut reader =
                            std::io::BufReader::new(stream.try_clone().expect("clone stream"));
                        let mut writer = stream;
                        let mut served = 0u64;
                        for _ in 0..SWEEPS_PER_CLIENT {
                            writeln!(
                                writer,
                                r#"{{"req":"sweep","app":"gcc","org":"selective_sets"}}"#
                            )
                            .expect("send sweep");
                            let mut line = String::new();
                            loop {
                                line.clear();
                                let n = reader.read_line(&mut line).expect("read response");
                                assert!(n > 0, "server closed mid-sweep");
                                assert!(line.contains("\"ok\":true"), "sweep failed: {line}");
                                if line.contains("\"kind\":\"done\"") {
                                    break;
                                }
                                served += 1;
                            }
                        }
                        served
                    })
                })
                .collect();
            clients
                .into_iter()
                .map(|c| c.join().expect("bench client"))
                .sum()
        })
    });
    let health = tier.health_snapshot();
    result.requests = Some(health.requests);
    result.hit_rate = health.result_cache_hit_rate();
    result.nominal_workload = true;
    result.trace_format = Some(format);
    handle.stop();
    join.join().expect("sweep service drains");
    result
}

/// The server process the multi-process stage re-execs this binary into:
/// binds an ephemeral port over the store directory the parent points
/// `RESCACHE_TRACE_DIR` at, prints the port on a marker line, and serves
/// until a client sends `shutdown`.
fn sweep_service_worker() {
    use std::io::Write;

    let env_usize = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(default)
    };
    // Mirrors bench_sweep_service's runner configuration; the parent passes
    // the scaled region sizes explicitly so every server process keys the
    // same memo entries.
    let cfg = RunnerConfig {
        warmup_instructions: env_usize("RESCACHE_BENCH_SWEEP_WARMUP", 4_000),
        measure_instructions: env_usize("RESCACHE_BENCH_SWEEP_MEASURE", 12_000),
        trace_seed: 42,
        dynamic_interval: 1_024,
        trace_format: RunnerConfig::from_env().trace_format,
        ..RunnerConfig::paper()
    };
    let server = SweepServer::bind(
        Runner::with_store(cfg, TraceStore::from_env()),
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        },
    )
    .expect("bind worker server");
    let port = server.local_addr().expect("local addr").port();
    println!("SWEEP_WORKER_PORT={port}");
    std::io::stdout().flush().expect("flush port marker");
    server.serve().expect("worker serves until shutdown");
}

/// The multi-process face of the sweep service: N independent server
/// *processes* (re-execs of this binary) share one `RESCACHE_TRACE_DIR`
/// through the store's entry locks, instead of one in-process tier.
/// Sharing is shallower here — persisted traces cross process boundaries,
/// simulation memos do not — so the aggregate result-cache hit rate
/// measures exactly the single-process-vs-multi-process gap, against
/// `sweep_service`'s within-run rate.
fn bench_sweep_service_multiproc(scale: u64, format: TraceFormat) -> EngineResult {
    use std::io::{BufRead, Write};

    const SERVERS: usize = 2;
    const CLIENTS_PER_SERVER: usize = 2;
    const SWEEPS_PER_CLIENT: usize = 2;

    let Some(dir) = store_scratch_dir("sweep-multiproc") else {
        return skipped("sweep_service_multiproc");
    };
    std::fs::create_dir_all(&dir).expect("create multiproc scratch directory");
    let exe = std::env::current_exe().expect("bench binary path");
    let mut children = Vec::new();
    for _ in 0..SERVERS {
        children.push(
            std::process::Command::new(&exe)
                .env("RESCACHE_BENCH_SWEEP_WORKER", "1")
                .env("RESCACHE_TRACE_DIR", &dir)
                .env("RESCACHE_BENCH_SWEEP_WARMUP", (4_000 * scale).to_string())
                .env("RESCACHE_BENCH_SWEEP_MEASURE", (12_000 * scale).to_string())
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn server process"),
        );
    }
    let mut addrs = Vec::new();
    for child in &mut children {
        let stdout = child.stdout.take().expect("piped worker stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let port = loop {
            let line = lines
                .next()
                .expect("worker prints its port before EOF")
                .expect("read worker stdout");
            if let Some(port) = line.strip_prefix("SWEEP_WORKER_PORT=") {
                break port.trim().parse::<u16>().expect("valid port");
            }
        };
        addrs.push(std::net::SocketAddr::from(([127, 0, 0, 1], port)));
        // Keep draining the pipe so the child never blocks writing to it.
        std::thread::spawn(move || for _ in lines {});
    }

    let system = SystemConfig::base();
    let points = ConfigSpace::enumerate(
        ResizableCacheSide::Data.config_of(&system.hierarchy),
        Organization::SelectiveSets,
    )
    .expect("selective-sets applies to the base d-cache")
    .points()
    .len() as u64;
    let per_run = (4_000 + 12_000) * scale;
    let nominal =
        (SERVERS * CLIENTS_PER_SERVER * SWEEPS_PER_CLIENT) as u64 * (points + 1) * per_run;

    let run_sweeps = |addr: std::net::SocketAddr| {
        let stream = std::net::TcpStream::connect(addr).expect("connect bench client");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
        let mut writer = stream;
        let mut served = 0u64;
        for _ in 0..SWEEPS_PER_CLIENT {
            writeln!(
                writer,
                r#"{{"req":"sweep","app":"gcc","org":"selective_sets"}}"#
            )
            .expect("send sweep");
            let mut line = String::new();
            loop {
                line.clear();
                let n = reader.read_line(&mut line).expect("read response");
                assert!(n > 0, "server closed mid-sweep");
                assert!(line.contains("\"ok\":true"), "sweep failed: {line}");
                if line.contains("\"kind\":\"done\"") {
                    break;
                }
                served += 1;
            }
        }
        served
    };
    let mut result = measure("sweep_service_multiproc", nominal, 1, || {
        std::thread::scope(|scope| {
            let clients: Vec<_> = addrs
                .iter()
                .flat_map(|&addr| (0..CLIENTS_PER_SERVER).map(move |_| addr))
                .map(|addr| scope.spawn(move || run_sweeps(addr)))
                .collect();
            clients
                .into_iter()
                .map(|c| c.join().expect("bench client"))
                .sum()
        })
    });

    // Aggregate the per-process tier counters through the protocol (the
    // tiers live in the worker processes) and wind the servers down.
    let mut hits = 0u64;
    let mut coalesced = 0u64;
    let mut misses = 0u64;
    let mut requests = 0u64;
    for &addr in &addrs {
        let stream = std::net::TcpStream::connect(addr).expect("connect for health");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
        let mut writer = stream;
        writeln!(writer, r#"{{"req":"health"}}"#).expect("send health");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read health");
        let health = rescache_core::json::Json::parse(line.trim_end()).expect("health JSON");
        let counter = |name: &str| {
            health
                .get(name)
                .and_then(rescache_core::json::Json::as_u64)
                .unwrap_or(0)
        };
        hits += counter("hits");
        coalesced += counter("coalesced");
        misses += counter("misses");
        requests += counter("requests");
        writeln!(writer, r#"{{"req":"shutdown"}}"#).expect("send shutdown");
        line.clear();
        reader.read_line(&mut line).expect("read bye");
    }
    for mut child in children {
        let status = child.wait().expect("worker exits");
        assert!(
            status.success(),
            "worker process exited cleanly: {status:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();

    result.requests = Some(requests);
    let lookups = hits + coalesced + misses;
    result.hit_rate = (lookups > 0).then(|| (hits + coalesced) as f64 / lookups as f64);
    result.nominal_workload = true;
    result.trace_format = Some(format);
    result
}

// `results` is deliberately built push by push, not as a `vec![...]`
// literal — see the comment at its declaration.
#[allow(clippy::vec_init_then_push)]
fn main() {
    // Re-exec mode: the multi-process sweep-service stage spawns this same
    // binary as its server processes.
    if std::env::var("RESCACHE_BENCH_SWEEP_WORKER").is_ok() {
        sweep_service_worker();
        return;
    }
    // "0", "false" and the empty string count as unset, so e.g.
    // `RESCACHE_BENCH_QUICK=0` runs the full bench as intended rather than
    // silently selecting quick mode.
    let quick = std::env::var("RESCACHE_BENCH_QUICK")
        .map(|v| !matches!(v.trim(), "" | "0" | "false"))
        .unwrap_or(false);
    // The sweep bench honours RESCACHE_WARMUP/RESCACHE_MEASURE; default to a
    // bench-sized region so a full run finishes in minutes, not hours.
    if std::env::var("RESCACHE_WARMUP").is_err() {
        std::env::set_var("RESCACHE_WARMUP", "20000");
    }
    if std::env::var("RESCACHE_MEASURE").is_err() {
        std::env::set_var("RESCACHE_MEASURE", if quick { "30000" } else { "200000" });
    }
    let scale = if quick { 1 } else { 5 };
    // One env resolution for every stage (RunnerConfig::from_env warns on an
    // unknown RESCACHE_TRACE_FORMAT instead of silently defaulting).
    let trace_format = RunnerConfig::from_env().trace_format;

    println!("=== sim_throughput: simulator wall-clock throughput ===");
    println!(
        "(quick={quick}, warm-up {} / measure {} instructions per sweep run)",
        std::env::var("RESCACHE_WARMUP").unwrap(),
        std::env::var("RESCACHE_MEASURE").unwrap()
    );
    println!();

    // Captured by the last store-backed dynamic stage (the streamed one):
    // the shared tier's recovery counters for the whole bench run.
    let mut store_health = None;
    // Stages are pushed one at a time rather than built as one `vec![...]`
    // literal: materializing a dozen stage results as macro temporaries
    // perturbed the store-load stage's measured time by ~1.5x run over run.
    let mut results = Vec::new();
    results.push(bench_trace_gen(scale, trace_format));
    results.push(bench_trace_gen_streaming(scale, trace_format));
    results.push(bench_trace_store_load(scale, trace_format));
    results.push(bench_hit_stream(scale));
    results.push(bench_evict_stream(scale));
    results.push(bench_engine(
        "in_order",
        CpuConfig::base_in_order(),
        scale,
        trace_format,
    ));
    results.push(bench_engine(
        "out_of_order",
        CpuConfig::base_out_of_order(),
        scale,
        trace_format,
    ));
    results.push(bench_gen_plus_first_sim(
        "gen_first_sim_split",
        false,
        scale,
        trace_format,
    ));
    results.push(bench_gen_plus_first_sim(
        "gen_first_sim_fused",
        true,
        scale,
        trace_format,
    ));
    results.push(bench_dynamic(
        "dyn_materialized",
        false,
        scale,
        trace_format,
        &mut store_health,
    ));
    results.push(bench_dynamic(
        "dyn_streamed",
        true,
        scale,
        trace_format,
        &mut store_health,
    ));
    results.extend(bench_workloads(scale, quick, trace_format));
    results.extend(bench_policy_pair(scale, trace_format));
    results.push(bench_fig5_sweep(scale));
    results.push(bench_sweep_service(scale, trace_format));
    results.push(bench_sweep_service_multiproc(scale, trace_format));

    let json = render_json(&results, quick, store_health);
    // Quick (CI smoke) runs record to a sibling file so they never clobber
    // the committed full-run trajectory baseline.
    let out_path = if quick {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_sim_throughput.quick.json"
        )
    } else {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_sim_throughput.json"
        )
    };
    std::fs::write(out_path, &json).expect("write throughput record");
    println!();
    println!("wrote {out_path}");
}

/// Renders the result list as JSON by hand (the workspace builds offline and
/// carries no serde dependency).
fn render_json(results: &[EngineResult], quick: bool, health: Option<StoreHealth>) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"rescache-sim-throughput/10\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    // The streamed dynamic stage's shared-tier recovery counters. All-zero
    // with `"degraded": false` on a healthy machine; anything else flags a
    // run whose numbers were taken while the store was fighting its disk.
    if let Some(h) = health {
        out.push_str(&format!(
            "  \"store_health\": {{\"hits\": {}, \"misses\": {}, \"coalesced\": {}, \"evictions\": {}, \"regenerations\": {}, \"retries\": {}, \"quarantines\": {}, \"lock_steals\": {}, \"warnings\": {}, \"degraded\": {}}},\n",
            h.hits, h.misses, h.coalesced, h.evictions, h.regenerations, h.retries, h.quarantines, h.lock_steals, h.warnings, h.degraded
        ));
    }
    out.push_str(&format!(
        "  \"host_threads\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!(
        "  \"effective_threads\": {},\n",
        effective_workers()
    ));
    out.push_str("  \"engines\": [\n");
    for (i, r) in results.iter().enumerate() {
        let mut trace_format = match r.trace_format {
            Some(format) => format!(", \"trace_format\": \"{format}\""),
            None => String::new(),
        };
        if let (Some(bytes), Some(ratio)) = (r.store_bytes, r.compression_ratio) {
            trace_format.push_str(&format!(
                ", \"store_bytes\": {bytes}, \"compression_ratio\": {ratio:.3}"
            ));
        }
        if let Some(requests) = r.requests {
            trace_format.push_str(&format!(", \"requests\": {requests}"));
        }
        if let Some(rate) = r.hit_rate {
            trace_format.push_str(&format!(", \"result_cache_hit_rate\": {rate:.4}"));
        }
        if let Some(lat) = r.latency {
            trace_format.push_str(&format!(
                ", \"latency\": {{\"delayed_hits\": {}, \"delayed_hit_cycles\": {}, \"mean_delayed_hit_cycles\": {:.4}, \"d_primary_misses\": {}, \"d_miss_cycles\": {}, \"mean_miss_cycles\": {:.4}}}",
                lat.delayed_hits,
                lat.delayed_hit_cycles,
                lat.mean_delayed_hit_cycles(),
                lat.d_primary_misses,
                lat.d_miss_cycles,
                lat.mean_miss_cycles()
            ));
        }
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"status\": \"{}\", \"items\": {}, \"seconds\": {:.6}, \"mips\": {:.3}, \"workload\": \"{}\"{trace_format}}}{}\n",
            r.name,
            if r.skipped { "skipped" } else { "measured" },
            r.items,
            r.seconds,
            r.mips,
            if r.nominal_workload { "nominal" } else { "measured" },
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
