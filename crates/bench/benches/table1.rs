//! Table 1 and Table 2: the hybrid resizing grid of a 32K 4-way cache with
//! 1K subarrays, and the base system configuration.

use rescache_bench::print_header;
use rescache_cache::{CacheConfig, HierarchyConfig};
use rescache_core::org::{hybrid_grid, ConfigSpace, Organization};
use rescache_cpu::CpuConfig;

fn main() {
    print_header(
        "Table 1 — enhanced resizing granularity using the hybrid organization",
        "Sizes offered by a 32K 4-way L1 with 1 KiB subarrays under each organization.",
    );

    let config = CacheConfig::l1_default(32 * 1024, 4);
    let grid = hybrid_grid(config).expect("hybrid applies to the 32K 4-way cache");
    println!("{}", grid.render());

    for org in Organization::ALL {
        let space = ConfigSpace::enumerate(config, org).expect("organization applies");
        let sizes: Vec<String> = space
            .sizes_bytes()
            .iter()
            .map(|b| format!("{}K", b / 1024))
            .collect();
        println!("{:<16} offers: {}", org.label(), sizes.join(", "));
    }

    println!();
    println!("Table 2 — base system configuration");
    let cpu = CpuConfig::base_out_of_order();
    let hier = HierarchyConfig::base();
    println!(
        "  issue/decode width     : {} instructions per cycle",
        cpu.issue_width
    );
    println!(
        "  ROB / LSQ              : {} entries / {} entries",
        cpu.rob_entries, cpu.lsq_entries
    );
    println!(
        "  writeback buffer / MSHR: {} entries / {} entries",
        hier.writeback_entries, cpu.mshr_entries
    );
    println!(
        "  L1 i-cache             : {}K {}-way; {} cycle",
        hier.l1i.size_bytes / 1024,
        hier.l1i.associativity,
        hier.l1i.hit_latency
    );
    println!(
        "  L1 d-cache             : {}K {}-way; {} cycle",
        hier.l1d.size_bytes / 1024,
        hier.l1d.associativity,
        hier.l1d.hit_latency
    );
    println!(
        "  L2 unified cache       : {}K {}-way; {} cycles",
        hier.l2.size_bytes / 1024,
        hier.l2.associativity,
        hier.l2.hit_latency
    );
    println!(
        "  memory access latency  : ({} + {} per 8 bytes) cycles",
        hier.memory_base_latency, hier.memory_per_8_bytes
    );
}
