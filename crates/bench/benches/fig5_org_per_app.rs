//! Figure 5: per-application comparison of static selective-ways and
//! selective-sets for 32K 4-way L1 caches (cache-size and energy-delay
//! reductions).

use rescache_bench::{all_apps, bench_runner, print_header, timed};
use rescache_core::experiment::{format_table, mean, per_app_org_comparison, PerAppOrgRow};
use rescache_core::{Organization, ResizableCacheSide};

fn print_side(rows: &[PerAppOrgRow], label: &str) {
    let apps: Vec<String> = {
        let mut seen = Vec::new();
        for r in rows {
            if !seen.contains(&r.app) {
                seen.push(r.app.clone());
            }
        }
        seen
    };
    let find = |app: &str, org: Organization| -> &PerAppOrgRow {
        rows.iter()
            .find(|r| r.app == app && r.organization == org)
            .expect("row exists for every app/org pair")
    };
    let mut table = Vec::new();
    for app in &apps {
        let ways = find(app, Organization::SelectiveWays);
        let sets = find(app, Organization::SelectiveSets);
        table.push(vec![
            app.clone(),
            format!("{:.0}", ways.size_reduction),
            format!("{:.0}", sets.size_reduction),
            format!("{:.1}", ways.edp_reduction),
            format!("{:.1}", sets.edp_reduction),
        ]);
    }
    let ways_rows: Vec<&PerAppOrgRow> = rows
        .iter()
        .filter(|r| r.organization == Organization::SelectiveWays)
        .collect();
    let sets_rows: Vec<&PerAppOrgRow> = rows
        .iter()
        .filter(|r| r.organization == Organization::SelectiveSets)
        .collect();
    table.push(vec![
        "AVG.".to_string(),
        format!(
            "{:.0}",
            mean(
                &ways_rows
                    .iter()
                    .map(|r| r.size_reduction)
                    .collect::<Vec<_>>()
            )
        ),
        format!(
            "{:.0}",
            mean(
                &sets_rows
                    .iter()
                    .map(|r| r.size_reduction)
                    .collect::<Vec<_>>()
            )
        ),
        format!(
            "{:.1}",
            mean(
                &ways_rows
                    .iter()
                    .map(|r| r.edp_reduction)
                    .collect::<Vec<_>>()
            )
        ),
        format!(
            "{:.1}",
            mean(
                &sets_rows
                    .iter()
                    .map(|r| r.edp_reduction)
                    .collect::<Vec<_>>()
            )
        ),
    ]);
    println!("{label}");
    println!(
        "{}",
        format_table(
            &[
                "application",
                "size red. % (ways)",
                "size red. % (sets)",
                "EDP red. % (ways)",
                "EDP red. % (sets)",
            ],
            &table
        )
    );
}

fn main() {
    print_header(
        "Figure 5 — selective-ways vs. selective-sets for 4-way set-associative caches",
        "Per-application reductions in average cache size and processor energy-delay, static resizing, 32K 4-way L1s.",
    );
    let runner = bench_runner();
    let apps = all_apps();
    let orgs = [Organization::SelectiveWays, Organization::SelectiveSets];

    for side in ResizableCacheSide::ALL {
        let label = match side {
            ResizableCacheSide::Data => "(a) D-Cache",
            ResizableCacheSide::Instruction => "(b) I-Cache",
        };
        let rows = timed(label, || {
            per_app_org_comparison(&runner, &apps, 4, &orgs, side)
                .expect("both organizations apply to a 4-way cache")
        });
        print_side(&rows, label);
    }
    println!("Paper reference: selective-sets wins for 10 of 12 applications on the d-cache;");
    println!("compress favours selective-ways; swim does not downsize; gcc/tomcatv do not downsize the i-cache.");
}
