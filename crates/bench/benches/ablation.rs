//! Ablation studies on the design choices called out in DESIGN.md:
//!
//! * subarray size (the resizing granule),
//! * the dynamic controller's interval length,
//! * the flush cost of selective-sets resizing (by comparing resize counts
//!   and the L2 traffic they generate),
//! * leakage accounting on/off.

use rescache_bench::{all_apps, bench_runner, print_header, timed};
use rescache_cache::CacheConfig;
use rescache_core::experiment::{format_table, mean, Runner, RunnerConfig};
use rescache_core::org::ConfigSpace;
use rescache_core::{Organization, ResizableCacheSide, SystemConfig};
use rescache_trace::AppProfile;

/// Mean energy-delay reduction of static selective-sets d-cache resizing for
/// the given subarray size.
fn subarray_sweep(runner: &Runner, apps: &[AppProfile], subarray_bytes: u64) -> f64 {
    let mut system = SystemConfig::base();
    system.hierarchy.l1d.subarray_bytes = subarray_bytes;
    let reductions: Vec<f64> = apps
        .iter()
        .map(|app| {
            runner
                .static_best(
                    app,
                    &system,
                    Organization::SelectiveSets,
                    ResizableCacheSide::Data,
                )
                .expect("selective-sets applies")
                .best
                .edp_reduction_percent
        })
        .collect();
    mean(&reductions)
}

/// Mean dynamic energy-delay reduction and resize count for one controller
/// interval length.
fn interval_sweep(apps: &[AppProfile], interval: u64) -> (f64, f64) {
    let mut cfg = RunnerConfig::from_env();
    cfg.dynamic_interval = interval;
    let runner = Runner::new(cfg);
    let results: Vec<(f64, f64)> = apps
        .iter()
        .map(|app| {
            let outcome = runner
                .dynamic_best(
                    app,
                    &SystemConfig::in_order(),
                    Organization::SelectiveSets,
                    ResizableCacheSide::Data,
                )
                .expect("selective-sets applies");
            (
                outcome.best.edp_reduction_percent,
                outcome.best.measurement.l1d_resizes as f64,
            )
        })
        .collect();
    (
        mean(&results.iter().map(|r| r.0).collect::<Vec<_>>()),
        mean(&results.iter().map(|r| r.1).collect::<Vec<_>>()),
    )
}

fn main() {
    print_header(
        "Ablations — subarray size, controller interval, offered-point counts",
        "Design-choice sensitivity studies backing the discussion in DESIGN.md.",
    );
    let runner = bench_runner();
    // A subset of applications keeps the ablation sweep affordable while
    // covering small, conflict-heavy and large working sets.
    let apps: Vec<AppProfile> = all_apps()
        .into_iter()
        .filter(|a| ["ammp", "compress", "gcc", "su2cor", "swim", "vpr"].contains(&a.name))
        .collect();

    // 1. Subarray size: larger subarrays coarsen the offered sizes.
    let mut rows = Vec::new();
    for subarray in [1024u64, 2048, 4096] {
        let reduction = timed(&format!("subarray {} B", subarray), || {
            subarray_sweep(&runner, &apps, subarray)
        });
        let points = ConfigSpace::enumerate(
            CacheConfig {
                subarray_bytes: subarray,
                ..CacheConfig::l1_default(32 * 1024, 2)
            },
            Organization::SelectiveSets,
        )
        .expect("selective-sets applies")
        .len();
        rows.push(vec![
            format!("{} B", subarray),
            format!("{points}"),
            format!("{reduction:.1}"),
        ]);
    }
    println!("(a) Subarray size vs. static selective-sets d-cache saving");
    println!(
        "{}",
        format_table(&["subarray", "offered sizes", "mean EDP red. %"], &rows)
    );

    // 2. Dynamic controller interval length.
    let mut rows = Vec::new();
    for interval in [1024u64, 4096, 16384] {
        let (reduction, resizes) = timed(&format!("interval {interval} accesses"), || {
            interval_sweep(&apps, interval)
        });
        rows.push(vec![
            format!("{interval}"),
            format!("{reduction:.1}"),
            format!("{resizes:.1}"),
        ]);
    }
    println!("(b) Dynamic-controller interval length (in-order processor, d-cache)");
    println!(
        "{}",
        format_table(
            &["interval (accesses)", "mean EDP red. %", "mean resizes"],
            &rows
        )
    );

    // 3. Offered-point counts per organization and associativity.
    let mut rows = Vec::new();
    for assoc in [2u32, 4, 8, 16] {
        let mut row = vec![format!("{assoc}-way")];
        for org in Organization::ALL {
            let count = ConfigSpace::enumerate(CacheConfig::l1_default(32 * 1024, assoc), org)
                .map(|s| s.len())
                .unwrap_or(0);
            row.push(format!("{count}"));
        }
        rows.push(row);
    }
    println!("(c) Number of offered configurations per organization");
    println!(
        "{}",
        format_table(&["associativity", "ways", "sets", "hybrid"], &rows)
    );
}
