//! Figure 8: static vs. dynamic (miss-ratio based) selective-sets resizing of
//! the i-cache, on the in-order/blocking and out-of-order/non-blocking
//! processor configurations.

use rescache_bench::{all_apps, bench_runner, print_header, timed};
use rescache_core::experiment::{format_table, mean, static_vs_dynamic, StrategyRow};
use rescache_core::{Organization, ResizableCacheSide, SystemConfig};

fn print_rows(rows: &[StrategyRow], label: &str) {
    let mut table = Vec::new();
    for r in rows {
        table.push(vec![
            r.app.clone(),
            format!("{:.0}", r.static_size_reduction),
            format!("{:.0}", r.dynamic_size_reduction),
            format!("{:.1}", r.static_edp_reduction),
            format!("{:.1}", r.dynamic_edp_reduction),
            format!("{}", r.dynamic_resizes),
        ]);
    }
    table.push(vec![
        "AVG.".to_string(),
        format!(
            "{:.0}",
            mean(
                &rows
                    .iter()
                    .map(|r| r.static_size_reduction)
                    .collect::<Vec<_>>()
            )
        ),
        format!(
            "{:.0}",
            mean(
                &rows
                    .iter()
                    .map(|r| r.dynamic_size_reduction)
                    .collect::<Vec<_>>()
            )
        ),
        format!(
            "{:.1}",
            mean(
                &rows
                    .iter()
                    .map(|r| r.static_edp_reduction)
                    .collect::<Vec<_>>()
            )
        ),
        format!(
            "{:.1}",
            mean(
                &rows
                    .iter()
                    .map(|r| r.dynamic_edp_reduction)
                    .collect::<Vec<_>>()
            )
        ),
        String::new(),
    ]);
    println!("{label}");
    println!(
        "{}",
        format_table(
            &[
                "application",
                "size red. % (static)",
                "size red. % (dynamic)",
                "EDP red. % (static)",
                "EDP red. % (dynamic)",
                "resizes",
            ],
            &table
        )
    );
}

fn main() {
    print_header(
        "Figure 8 — i-cache resizing in two processor configurations",
        "Static vs. miss-ratio-based dynamic selective-sets resizing of the 32K 2-way i-cache.",
    );
    let runner = bench_runner();
    let apps = all_apps();
    let side = ResizableCacheSide::Instruction;
    let org = Organization::SelectiveSets;

    let in_order = timed("(a) in-order issue, blocking d-cache", || {
        static_vs_dynamic(&runner, &apps, &SystemConfig::in_order(), org, side)
            .expect("selective-sets applies to the 2-way i-cache")
    });
    print_rows(&in_order, "(a) In-order issue engine with blocking d-cache");

    let out_of_order = timed("(b) out-of-order issue, non-blocking d-cache", || {
        static_vs_dynamic(&runner, &apps, &SystemConfig::base(), org, side)
            .expect("selective-sets applies to the 2-way i-cache")
    });
    print_rows(
        &out_of_order,
        "(b) Out-of-order issue engine with non-blocking d-cache",
    );

    println!("Paper reference: in-order static 16 % vs dynamic 18 %; out-of-order static 11 % vs dynamic 15 %.");
    println!("For the i-cache, dynamic's advantage is larger on the out-of-order configuration,");
    println!("where i-cache misses are more exposed to performance.");
}
