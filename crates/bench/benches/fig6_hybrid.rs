//! Figure 6: effectiveness of the hybrid selective-sets-and-ways
//! organization across associativities, against both single organizations.

use rescache_bench::{all_apps, bench_runner, print_header, timed};
use rescache_core::experiment::format_table;
use rescache_core::experiment::hybrid::{by_associativity, hybrid_effectiveness};
use rescache_core::ResizableCacheSide;

fn main() {
    print_header(
        "Figure 6 — effectiveness of hybrid organizations",
        "Mean reduction (%) in processor energy-delay across the 12 applications, static resizing, base out-of-order processor.",
    );
    let runner = bench_runner();
    let apps = all_apps();
    let assocs = [2u32, 4, 8, 16];

    for side in ResizableCacheSide::ALL {
        let label = match side {
            ResizableCacheSide::Data => "(a) D-Cache",
            ResizableCacheSide::Instruction => "(b) I-Cache",
        };
        let points = timed(label, || {
            hybrid_effectiveness(&runner, &apps, &assocs, side)
                .expect("all organizations apply at these associativities")
        });
        let rows: Vec<Vec<String>> = by_associativity(&points)
            .into_iter()
            .map(|(assoc, ways, sets, hybrid)| {
                vec![
                    format!("{assoc}-way"),
                    format!("{ways:.1}"),
                    format!("{sets:.1}"),
                    format!("{hybrid:.1}"),
                ]
            })
            .collect();
        println!("{label}");
        println!(
            "{}",
            format_table(
                &[
                    "associativity",
                    "ways EDP red. %",
                    "sets EDP red. %",
                    "hybrid EDP red. %"
                ],
                &rows
            )
        );
    }
    println!("Paper reference (d-cache hybrid): 9/12/13/15 % for 2/4/8/16-way;");
    println!("(i-cache hybrid): 11/13/14/17 %. Hybrid always >= max(ways, sets).");
}
