//! Shared helpers for the `rescache` benchmark harness.
//!
//! Each `[[bench]]` target of this crate regenerates one table or figure of
//! the HPCA 2002 resizable-cache paper and prints the corresponding rows or
//! series. The helpers here keep the targets small: a common runner
//! configuration (overridable through `RESCACHE_*` environment variables),
//! the full application list, and a tiny stopwatch for reporting how long a
//! sweep took.

use std::time::Instant;

use rescache_core::experiment::{Runner, RunnerConfig};
use rescache_trace::{spec, AppProfile, WorkloadRegistry};

/// The runner used by every figure bench: the paper-quality configuration,
/// overridable via `RESCACHE_WARMUP` / `RESCACHE_MEASURE` / `RESCACHE_SEED` /
/// `RESCACHE_INTERVAL`.
pub fn bench_runner() -> Runner {
    Runner::new(RunnerConfig::from_env())
}

/// The twelve applications of the paper's evaluation.
pub fn all_apps() -> Vec<AppProfile> {
    spec::all_profiles()
}

/// The scenario workloads of the registry (see
/// [`rescache_trace::workload`]): what the non-figure benches enumerate
/// instead of hand-rolled profiles.
pub fn registry_workloads() -> Vec<AppProfile> {
    WorkloadRegistry::builtin().profiles()
}

/// Prints a standard header for a figure bench.
pub fn print_header(title: &str, detail: &str) {
    println!();
    println!("=== {title} ===");
    println!("{detail}");
    let cfg = RunnerConfig::from_env();
    println!(
        "(warm-up {} instr, measured {} instr per run, seed {}, dynamic interval {} accesses)",
        cfg.warmup_instructions, cfg.measure_instructions, cfg.trace_seed, cfg.dynamic_interval
    );
    println!();
}

/// Runs `body` and reports its wall-clock time.
pub fn timed<T>(label: &str, body: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let value = body();
    println!(
        "[{label}: completed in {:.1} s]",
        start.elapsed().as_secs_f64()
    );
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_list_matches_the_paper() {
        let apps = all_apps();
        assert_eq!(apps.len(), 12);
        assert_eq!(apps[0].name, "ammp");
        assert_eq!(apps[11].name, "vpr");
    }

    #[test]
    fn timed_returns_the_body_value() {
        assert_eq!(timed("test", || 21 * 2), 42);
    }

    #[test]
    fn registry_workloads_are_available() {
        let workloads = registry_workloads();
        assert!(workloads.len() >= 8);
        assert!(workloads.iter().any(|p| p.name == "nominal"));
    }
}
