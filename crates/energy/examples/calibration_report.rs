//! Prints the per-application processor energy breakdown of the base system,
//! used to calibrate the energy constants against the paper's reported
//! averages (d-cache ~18.5 %, i-cache ~17.5 % of processor energy).

use rescache_cache::{HierarchyConfig, MemoryHierarchy};
use rescache_cpu::{CpuConfig, Simulator};
use rescache_energy::EnergyModel;
use rescache_trace::{spec, Trace, TraceGenerator};

fn main() {
    let model = EnergyModel::for_hierarchy(&HierarchyConfig::base());
    let warmup = 40_000usize;
    let measure = 60_000usize;
    let mut d_sum = 0.0;
    let mut i_sum = 0.0;
    for app in spec::APP_NAMES {
        let trace = TraceGenerator::new(spec::profile(app).unwrap(), 17).generate(warmup + measure);
        let warm = Trace::new(app, trace.records()[..warmup].to_vec());
        let meas = Trace::new(app, trace.records()[warmup..].to_vec());
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let sim = Simulator::new(CpuConfig::base_out_of_order());
        sim.run(&warm, &mut h);
        h.reset_stats();
        let r = sim.run(&meas, &mut h);
        let b = model.breakdown(&r, &h);
        d_sum += b.l1d_fraction();
        i_sum += b.l1i_fraction();
        println!("{app:9} ipc={:.2} dmr={:.3} imr={:.3} dacc/i={:.2} iacc/i={:.2} | l1d={:5.1}% l1i={:5.1}% l2={:4.1}% mem={:4.1}% core={:4.1}% clk={:4.1}% leak={:4.1}% total/instr={:.0}pJ",
            r.ipc(), h.l1d().stats().miss_ratio(), h.l1i().stats().miss_ratio(),
            h.l1d().stats().accesses as f64 / measure as f64, h.l1i().stats().accesses as f64 / measure as f64,
            100.0*b.l1d_pj/b.total_pj(), 100.0*b.l1i_pj/b.total_pj(), 100.0*b.l2_pj/b.total_pj(),
            100.0*b.memory_pj/b.total_pj(), 100.0*b.core_pj/b.total_pj(), 100.0*b.clock_pj/b.total_pj(),
            100.0*b.leakage_pj/b.total_pj(), b.total_pj()/measure as f64);
    }
    println!(
        "AVERAGE   l1d={:.1}%  l1i={:.1}%  (paper: 18.5% / 17.5%)",
        100.0 * d_sum / 12.0,
        100.0 * i_sum / 12.0
    );
}
