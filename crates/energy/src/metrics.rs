//! Energy-delay metrics.
//!
//! The paper reports the **energy-delay product of the whole processor**,
//! normalised to a non-resizable cache of the same size and set-associativity,
//! and quotes reductions in percent. These helpers implement exactly that
//! arithmetic so every experiment driver reports it the same way.

/// Energy and execution time of one simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDelay {
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Execution time in cycles.
    pub cycles: u64,
}

impl EnergyDelay {
    /// Creates a metric point.
    ///
    /// # Panics
    ///
    /// Panics if `energy_pj` is negative or not finite.
    pub fn new(energy_pj: f64, cycles: u64) -> Self {
        assert!(
            energy_pj.is_finite() && energy_pj >= 0.0,
            "energy must be finite and non-negative"
        );
        Self { energy_pj, cycles }
    }

    /// The energy-delay product (picojoule-cycles).
    pub fn product(&self) -> f64 {
        self.energy_pj * self.cycles as f64
    }

    /// This point's energy-delay product relative to `base` (1.0 = equal,
    /// smaller is better).
    pub fn relative_to(&self, base: &EnergyDelay) -> f64 {
        let denom = base.product();
        if denom == 0.0 {
            return f64::INFINITY;
        }
        self.product() / denom
    }

    /// Reduction of the energy-delay product versus `base`, in percent
    /// (positive = this point is better than the base).
    pub fn reduction_vs(&self, base: &EnergyDelay) -> f64 {
        (1.0 - self.relative_to(base)) * 100.0
    }

    /// Performance degradation versus `base`, in percent of execution time
    /// (positive = this point is slower).
    pub fn slowdown_vs(&self, base: &EnergyDelay) -> f64 {
        if base.cycles == 0 {
            return 0.0;
        }
        (self.cycles as f64 / base.cycles as f64 - 1.0) * 100.0
    }

    /// Energy reduction versus `base`, in percent.
    pub fn energy_reduction_vs(&self, base: &EnergyDelay) -> f64 {
        if base.energy_pj == 0.0 {
            return 0.0;
        }
        (1.0 - self.energy_pj / base.energy_pj) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_and_relative() {
        let base = EnergyDelay::new(100.0, 1000);
        let better = EnergyDelay::new(80.0, 1010);
        assert!((base.product() - 100_000.0).abs() < 1e-9);
        let rel = better.relative_to(&base);
        assert!((rel - 0.808).abs() < 1e-3);
        assert!((better.reduction_vs(&base) - 19.2).abs() < 0.1);
    }

    #[test]
    fn slowdown_and_energy_reduction() {
        let base = EnergyDelay::new(100.0, 1000);
        let point = EnergyDelay::new(70.0, 1030);
        assert!((point.slowdown_vs(&base) - 3.0).abs() < 1e-9);
        assert!((point.energy_reduction_vs(&base) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn equal_points_have_zero_reduction() {
        let a = EnergyDelay::new(50.0, 500);
        assert!(a.reduction_vs(&a).abs() < 1e-12);
        assert!(a.slowdown_vs(&a).abs() < 1e-12);
    }

    #[test]
    fn zero_base_is_handled() {
        let zero = EnergyDelay::new(0.0, 0);
        let point = EnergyDelay::new(1.0, 1);
        assert!(point.relative_to(&zero).is_infinite());
        assert_eq!(point.slowdown_vs(&zero), 0.0);
        assert_eq!(point.energy_reduction_vs(&zero), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_energy_panics() {
        let _ = EnergyDelay::new(-1.0, 10);
    }
}
