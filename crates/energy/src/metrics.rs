//! Energy-delay metrics.
//!
//! The paper reports the **energy-delay product of the whole processor**,
//! normalised to a non-resizable cache of the same size and set-associativity,
//! and quotes reductions in percent. These helpers implement exactly that
//! arithmetic so every experiment driver reports it the same way.

/// Energy and execution time of one simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDelay {
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Execution time in cycles.
    pub cycles: u64,
}

impl EnergyDelay {
    /// Creates a metric point.
    ///
    /// # Panics
    ///
    /// Panics if `energy_pj` is negative or not finite.
    pub fn new(energy_pj: f64, cycles: u64) -> Self {
        assert!(
            energy_pj.is_finite() && energy_pj >= 0.0,
            "energy must be finite and non-negative"
        );
        Self { energy_pj, cycles }
    }

    /// The energy-delay product (picojoule-cycles).
    pub fn product(&self) -> f64 {
        self.energy_pj * self.cycles as f64
    }

    /// This point's energy-delay product relative to `base` (1.0 = equal,
    /// smaller is better).
    pub fn relative_to(&self, base: &EnergyDelay) -> f64 {
        let denom = base.product();
        if denom == 0.0 {
            return f64::INFINITY;
        }
        self.product() / denom
    }

    /// Reduction of the energy-delay product versus `base`, in percent
    /// (positive = this point is better than the base).
    pub fn reduction_vs(&self, base: &EnergyDelay) -> f64 {
        (1.0 - self.relative_to(base)) * 100.0
    }

    /// Performance degradation versus `base`, in percent of execution time
    /// (positive = this point is slower).
    pub fn slowdown_vs(&self, base: &EnergyDelay) -> f64 {
        if base.cycles == 0 {
            return 0.0;
        }
        (self.cycles as f64 / base.cycles as f64 - 1.0) * 100.0
    }

    /// Energy reduction versus `base`, in percent.
    pub fn energy_reduction_vs(&self, base: &EnergyDelay) -> f64 {
        if base.energy_pj == 0.0 {
            return 0.0;
        }
        (1.0 - self.energy_pj / base.energy_pj) * 100.0
    }
}

/// The scalar objective an experiment minimises when ranking configurations.
///
/// The paper's searches minimise the energy-delay product; the latency-first
/// objectives let the same searches weigh execution time more heavily (ED²P)
/// or exclusively (pure delay). Selection order can change; simulation
/// results never do — the objective only scores points that were already
/// measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Energy × delay (the paper's metric, and the default).
    #[default]
    Edp,
    /// Energy × delay²: latency-weighted, still energy-aware.
    Ed2p,
    /// Delay alone: pure performance, energy ignored.
    Delay,
}

impl Objective {
    /// The score this objective assigns to a measured point (smaller is
    /// better). For [`Objective::Edp`] this is exactly
    /// [`EnergyDelay::product`], so EDP-ranked searches are bit-identical to
    /// the pre-objective code.
    pub fn score(&self, point: &EnergyDelay) -> f64 {
        match self {
            Objective::Edp => point.product(),
            Objective::Ed2p => point.product() * point.cycles as f64,
            Objective::Delay => point.cycles as f64,
        }
    }

    /// The objective's lower-case tag, as accepted by
    /// [`Objective::from_tag`] and used in JSON renderings.
    pub fn tag(&self) -> &'static str {
        match self {
            Objective::Edp => "edp",
            Objective::Ed2p => "ed2p",
            Objective::Delay => "delay",
        }
    }

    /// Parses an objective tag (`edp`, `ed2p`, `delay`).
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "edp" => Some(Objective::Edp),
            "ed2p" => Some(Objective::Ed2p),
            "delay" => Some(Objective::Delay),
            _ => None,
        }
    }

    /// The objective named by the `RESCACHE_OBJECTIVE` environment variable,
    /// or EDP (the paper's metric) when unset or unrecognized.
    pub fn from_env() -> Self {
        match std::env::var("RESCACHE_OBJECTIVE") {
            Ok(v) => Self::from_tag(&v).unwrap_or_else(|| {
                eprintln!("rescache: unknown RESCACHE_OBJECTIVE {v:?}; using edp");
                Objective::Edp
            }),
            Err(_) => Objective::Edp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_and_relative() {
        let base = EnergyDelay::new(100.0, 1000);
        let better = EnergyDelay::new(80.0, 1010);
        assert!((base.product() - 100_000.0).abs() < 1e-9);
        let rel = better.relative_to(&base);
        assert!((rel - 0.808).abs() < 1e-3);
        assert!((better.reduction_vs(&base) - 19.2).abs() < 0.1);
    }

    #[test]
    fn slowdown_and_energy_reduction() {
        let base = EnergyDelay::new(100.0, 1000);
        let point = EnergyDelay::new(70.0, 1030);
        assert!((point.slowdown_vs(&base) - 3.0).abs() < 1e-9);
        assert!((point.energy_reduction_vs(&base) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn equal_points_have_zero_reduction() {
        let a = EnergyDelay::new(50.0, 500);
        assert!(a.reduction_vs(&a).abs() < 1e-12);
        assert!(a.slowdown_vs(&a).abs() < 1e-12);
    }

    #[test]
    fn zero_base_is_handled() {
        let zero = EnergyDelay::new(0.0, 0);
        let point = EnergyDelay::new(1.0, 1);
        assert!(point.relative_to(&zero).is_infinite());
        assert_eq!(point.slowdown_vs(&zero), 0.0);
        assert_eq!(point.energy_reduction_vs(&zero), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_energy_panics() {
        let _ = EnergyDelay::new(-1.0, 10);
    }

    #[test]
    fn edp_score_equals_the_product() {
        let p = EnergyDelay::new(123.5, 777);
        assert_eq!(Objective::Edp.score(&p).to_bits(), p.product().to_bits());
    }

    #[test]
    fn objectives_rank_points_differently() {
        // A slow-but-frugal point vs a fast-but-hungry one: EDP prefers the
        // frugal point, delay prefers the fast one, ED²P sides with delay
        // here because the cycle gap is squared.
        let frugal = EnergyDelay::new(50.0, 2000);
        let fast = EnergyDelay::new(200.0, 700);
        assert!(Objective::Edp.score(&frugal) < Objective::Edp.score(&fast));
        assert!(Objective::Delay.score(&fast) < Objective::Delay.score(&frugal));
        assert!(Objective::Ed2p.score(&fast) < Objective::Ed2p.score(&frugal));
    }

    #[test]
    fn objective_tags_round_trip() {
        for o in [Objective::Edp, Objective::Ed2p, Objective::Delay] {
            assert_eq!(Objective::from_tag(o.tag()), Some(o));
        }
        assert_eq!(Objective::from_tag("mips"), None);
        assert_eq!(Objective::default(), Objective::Edp);
    }
}
