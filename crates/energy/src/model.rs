//! The whole-processor energy model: activity counters + cache statistics →
//! a per-structure energy breakdown.

use rescache_cache::{HierarchyConfig, HierarchySnapshot, MemoryHierarchy};
use rescache_cpu::SimResult;

use crate::cache_energy::{CacheEnergyModel, PrechargePolicy};
use crate::metrics::EnergyDelay;
use crate::processor::ProcessorEnergyParams;
use crate::technology::Technology;

/// Per-structure energy of one simulation, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// L1 instruction cache switching energy.
    pub l1i_pj: f64,
    /// L1 data cache switching energy.
    pub l1d_pj: f64,
    /// Unified L2 switching energy (including resize-flush writebacks).
    pub l2_pj: f64,
    /// Off-chip access energy.
    pub memory_pj: f64,
    /// Core pipeline structures (rename, window, ROB, LSQ, register file,
    /// ALUs, branch predictor, result bus).
    pub core_pj: f64,
    /// Clock tree and residual per-cycle energy.
    pub clock_pj: f64,
    /// Leakage of the three caches (scales with enabled capacity).
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.l1i_pj
            + self.l1d_pj
            + self.l2_pj
            + self.memory_pj
            + self.core_pj
            + self.clock_pj
            + self.leakage_pj
    }

    /// Fraction of total energy dissipated in the L1 d-cache.
    pub fn l1d_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.l1d_pj / total
        }
    }

    /// Fraction of total energy dissipated in the L1 i-cache.
    pub fn l1i_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.l1i_pj / total
        }
    }
}

/// Which L1 caches carry the selective-sets resizing-tag-bit overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResizingTagOverhead {
    /// Extra tag bits on the i-cache.
    pub l1i_bits: u32,
    /// Extra tag bits on the d-cache.
    pub l1d_bits: u32,
}

/// The whole-processor energy model.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    params: ProcessorEnergyParams,
    tech: Technology,
    l1i: CacheEnergyModel,
    l1d: CacheEnergyModel,
    l2: CacheEnergyModel,
    include_leakage: bool,
}

impl EnergyModel {
    /// Builds an energy model for a hierarchy configuration with no resizing
    /// tag overhead.
    pub fn for_hierarchy(config: &HierarchyConfig) -> Self {
        Self::with_overhead(config, ResizingTagOverhead::default())
    }

    /// Builds an energy model, charging extra tag bits on the L1s that use a
    /// selective-sets or hybrid organization.
    pub fn with_overhead(config: &HierarchyConfig, overhead: ResizingTagOverhead) -> Self {
        let tech = Technology::default();
        Self {
            params: ProcessorEnergyParams::default(),
            tech,
            l1i: CacheEnergyModel::new(config.l1i, PrechargePolicy::AllEnabled, tech)
                .with_extra_tag_bits(overhead.l1i_bits),
            l1d: CacheEnergyModel::new(config.l1d, PrechargePolicy::AllEnabled, tech)
                .with_extra_tag_bits(overhead.l1d_bits),
            l2: CacheEnergyModel::new(config.l2, PrechargePolicy::AccessedOnly, tech),
            include_leakage: true,
        }
    }

    /// Overrides the processor energy parameters.
    pub fn with_params(mut self, params: ProcessorEnergyParams) -> Self {
        self.params = params;
        self
    }

    /// Enables or disables leakage accounting (the paper focuses on switching
    /// energy; leakage is kept small but non-zero by default).
    pub fn with_leakage(mut self, include: bool) -> Self {
        self.include_leakage = include;
        self
    }

    /// The L1 d-cache energy model.
    pub fn l1d_model(&self) -> &CacheEnergyModel {
        &self.l1d
    }

    /// The L1 i-cache energy model.
    pub fn l1i_model(&self) -> &CacheEnergyModel {
        &self.l1i
    }

    /// Computes the per-structure energy of one simulation.
    pub fn breakdown(&self, result: &SimResult, hierarchy: &MemoryHierarchy) -> EnergyBreakdown {
        self.breakdown_snapshot(result, &hierarchy.snapshot())
    }

    /// Computes the per-structure energy of one simulation from a detached
    /// statistics snapshot.
    ///
    /// The energy model only reads statistics, never tag arrays, so a cached
    /// [`HierarchySnapshot`] can be re-priced under different models (e.g.
    /// with and without resizing-tag-bit overhead) without re-simulating.
    pub fn breakdown_snapshot(
        &self,
        result: &SimResult,
        snapshot: &HierarchySnapshot,
    ) -> EnergyBreakdown {
        let p = &self.params;
        let a = &result.activity;

        let core_pj = a.dispatched as f64 * (p.rename_pj + p.window_pj)
            + a.rob_accesses as f64 * p.rob_pj
            + a.lsq_accesses as f64 * p.lsq_pj
            + a.regfile_reads as f64 * p.regfile_read_pj
            + a.regfile_writes as f64 * p.regfile_write_pj
            + a.int_alu_ops as f64 * p.int_alu_pj
            + a.fp_ops as f64 * p.fp_alu_pj
            + a.bpred_accesses as f64 * p.bpred_pj
            + a.result_bus as f64 * p.result_bus_pj;

        let clock_pj = result.cycles as f64 * (p.clock_pj_per_cycle + p.other_pj_per_cycle);

        let l1i_pj = self.l1i.switching_energy_pj(&snapshot.l1i);
        let l1d_pj = self.l1d.switching_energy_pj(&snapshot.l1d);

        // L2 switching energy: regular accesses plus the dirty blocks flushed
        // into it by L1 resizes (the paper notes this traffic is minor; we
        // model it so the claim is checkable).
        let l2_sets = snapshot.l2_config.num_sets();
        let l2_assoc = snapshot.l2_config.associativity;
        let l2_pj = self.l2.switching_energy_pj(&snapshot.l2)
            + snapshot.stats.resize_flush_writebacks as f64
                * self.l2.access_energy_pj(l2_sets, l2_assoc);

        let memory_pj = snapshot.stats.memory_accesses as f64 * p.memory_access_pj;

        let leakage_pj = if self.include_leakage {
            self.l1i.leakage_energy_pj(&snapshot.l1i, result.cycles)
                + self.l1d.leakage_energy_pj(&snapshot.l1d, result.cycles)
                + self.l2.leakage_energy_pj(&snapshot.l2, result.cycles)
        } else {
            0.0
        };

        EnergyBreakdown {
            l1i_pj,
            l1d_pj,
            l2_pj,
            memory_pj,
            core_pj,
            clock_pj,
            leakage_pj,
        }
    }

    /// Convenience: computes the [`EnergyDelay`] point of one simulation.
    pub fn energy_delay(&self, result: &SimResult, hierarchy: &MemoryHierarchy) -> EnergyDelay {
        EnergyDelay::new(self.breakdown(result, hierarchy).total_pj(), result.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescache_cpu::{CpuConfig, Simulator};
    use rescache_trace::{spec, TraceGenerator};

    fn simulate(app: &str, instructions: usize) -> (SimResult, MemoryHierarchy) {
        let trace = TraceGenerator::new(spec::profile(app).unwrap(), 17).generate(instructions);
        let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let result = Simulator::new(CpuConfig::base_out_of_order()).run(&trace, &mut hierarchy);
        (result, hierarchy)
    }

    #[test]
    fn breakdown_components_are_positive() {
        let (result, hierarchy) = simulate("gcc", 20_000);
        let model = EnergyModel::for_hierarchy(&HierarchyConfig::base());
        let b = model.breakdown(&result, &hierarchy);
        assert!(b.l1i_pj > 0.0);
        assert!(b.l1d_pj > 0.0);
        assert!(b.l2_pj > 0.0);
        assert!(b.core_pj > 0.0);
        assert!(b.clock_pj > 0.0);
        assert!(b.total_pj() > b.l1d_pj);
    }

    #[test]
    fn cache_fractions_are_in_the_papers_band() {
        // The paper's activity-weighted averages are 18.5 % (d-cache) and
        // 17.5 % (i-cache); the synthetic workloads should land in a band
        // around those numbers on average.
        let model = EnergyModel::for_hierarchy(&HierarchyConfig::base());
        let mut d_sum = 0.0;
        let mut i_sum = 0.0;
        let apps = ["gcc", "swim", "m88ksim", "vortex", "ijpeg", "su2cor"];
        for app in apps {
            let (result, hierarchy) = simulate(app, 20_000);
            let b = model.breakdown(&result, &hierarchy);
            d_sum += b.l1d_fraction();
            i_sum += b.l1i_fraction();
        }
        let d_mean = d_sum / apps.len() as f64;
        let i_mean = i_sum / apps.len() as f64;
        assert!(
            (0.12..=0.26).contains(&d_mean),
            "mean d-cache energy fraction {d_mean} outside the calibration band"
        );
        assert!(
            (0.10..=0.24).contains(&i_mean),
            "mean i-cache energy fraction {i_mean} outside the calibration band"
        );
    }

    #[test]
    fn leakage_toggle_changes_total() {
        let (result, hierarchy) = simulate("ammp", 10_000);
        let with = EnergyModel::for_hierarchy(&HierarchyConfig::base());
        let without = EnergyModel::for_hierarchy(&HierarchyConfig::base()).with_leakage(false);
        assert!(
            with.breakdown(&result, &hierarchy).total_pj()
                > without.breakdown(&result, &hierarchy).total_pj()
        );
        assert_eq!(without.breakdown(&result, &hierarchy).leakage_pj, 0.0);
    }

    #[test]
    fn energy_delay_matches_breakdown() {
        let (result, hierarchy) = simulate("vpr", 10_000);
        let model = EnergyModel::for_hierarchy(&HierarchyConfig::base());
        let ed = model.energy_delay(&result, &hierarchy);
        let b = model.breakdown(&result, &hierarchy);
        assert!((ed.energy_pj - b.total_pj()).abs() < 1e-6);
        assert_eq!(ed.cycles, result.cycles);
    }

    #[test]
    fn smaller_enabled_cache_lowers_l1d_energy() {
        let trace = TraceGenerator::new(spec::ammp(), 3).generate(20_000);
        let sim = Simulator::new(CpuConfig::base_out_of_order());
        let model = EnergyModel::for_hierarchy(&HierarchyConfig::base());

        let mut full = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let full_result = sim.run(&trace, &mut full);
        let full_b = model.breakdown(&full_result, &full);

        let mut small = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        small.l1d_mut().set_enabled_sets(64); // 4 KiB of 32 KiB
        let small_result = sim.run(&trace, &mut small);
        let small_b = model.breakdown(&small_result, &small);

        assert!(
            small_b.l1d_pj < full_b.l1d_pj * 0.45,
            "a 4K-enabled d-cache should spend far less than the 32K one: {} vs {}",
            small_b.l1d_pj,
            full_b.l1d_pj
        );
    }
}
