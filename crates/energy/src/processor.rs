//! Per-access energies of the core pipeline structures and the clock tree.
//!
//! These are the Wattch-style constants for everything that is *not* a cache:
//! they exist so that the caches sit at a realistic fraction of total
//! processor energy (the paper's activity-weighted averages are ≈18.5 % for
//! the d-cache and ≈17.5 % for the i-cache of its base system), which is what
//! turns a cache-energy saving into the processor-wide energy-delay numbers
//! the figures report.

/// Per-event energies (picojoules) for the non-cache processor structures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorEnergyParams {
    /// Rename/dispatch energy per dispatched instruction.
    pub rename_pj: f64,
    /// Reorder-buffer energy per ROB access.
    pub rob_pj: f64,
    /// Load/store-queue energy per LSQ access.
    pub lsq_pj: f64,
    /// Register-file energy per read port access.
    pub regfile_read_pj: f64,
    /// Register-file energy per write port access.
    pub regfile_write_pj: f64,
    /// Integer ALU energy per operation.
    pub int_alu_pj: f64,
    /// Floating-point unit energy per operation.
    pub fp_alu_pj: f64,
    /// Branch predictor energy per access (lookup or update).
    pub bpred_pj: f64,
    /// Result bus energy per completing instruction.
    pub result_bus_pj: f64,
    /// Issue window wakeup/select energy per dispatched instruction.
    pub window_pj: f64,
    /// Clock-tree energy per cycle.
    pub clock_pj_per_cycle: f64,
    /// Everything else (decode, TLBs, I/O pads) per cycle.
    pub other_pj_per_cycle: f64,
    /// Main-memory/bus energy per off-chip access.
    pub memory_access_pj: f64,
}

impl ProcessorEnergyParams {
    /// The 0.18 µm defaults, calibrated so the base 32K/32K/512K system spends
    /// roughly the paper's share of energy in the L1 caches.
    pub fn default_180nm() -> Self {
        Self {
            rename_pj: 45.0,
            rob_pj: 32.0,
            lsq_pj: 45.0,
            regfile_read_pj: 28.0,
            regfile_write_pj: 34.0,
            int_alu_pj: 90.0,
            fp_alu_pj: 260.0,
            bpred_pj: 38.0,
            result_bus_pj: 48.0,
            window_pj: 150.0,
            clock_pj_per_cycle: 320.0,
            other_pj_per_cycle: 80.0,
            memory_access_pj: 2_000.0,
        }
    }
}

impl Default for ProcessorEnergyParams {
    fn default() -> Self {
        Self::default_180nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let p = ProcessorEnergyParams::default();
        for v in [
            p.rename_pj,
            p.rob_pj,
            p.lsq_pj,
            p.regfile_read_pj,
            p.regfile_write_pj,
            p.int_alu_pj,
            p.fp_alu_pj,
            p.bpred_pj,
            p.result_bus_pj,
            p.window_pj,
            p.clock_pj_per_cycle,
            p.other_pj_per_cycle,
            p.memory_access_pj,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn fp_costs_more_than_int() {
        let p = ProcessorEnergyParams::default();
        assert!(p.fp_alu_pj > p.int_alu_pj);
    }
}
