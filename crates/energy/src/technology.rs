//! The technology point: supply voltage and the base energy scale factors
//! every other model multiplies into.

/// A CMOS technology point.
///
/// The paper assumes a 0.18 µm process. Only ratios matter for the study's
/// conclusions, but keeping the technology explicit makes the scale factors
/// auditable and lets ablation benches explore voltage/feature scaling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Drawn feature size in nanometres.
    pub feature_nm: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Energy (picojoules) to swing one kilobyte of precharged bitlines.
    pub bitline_pj_per_kb: f64,
    /// Energy (picojoules) per sensed + driven output bit.
    pub sense_pj_per_bit: f64,
    /// Energy (picojoules) per decoded index bit (decoder + wordline drive).
    pub decode_pj_per_bit: f64,
    /// Leakage power (picojoules per cycle) per kilobyte of powered SRAM.
    pub leak_pj_per_kb_cycle: f64,
}

impl Technology {
    /// The 0.18 µm, 1.8 V point used by the paper's evaluation.
    pub fn deep_submicron_180nm() -> Self {
        Self {
            feature_nm: 180.0,
            vdd: 1.8,
            bitline_pj_per_kb: 27.0,
            sense_pj_per_bit: 0.09,
            decode_pj_per_bit: 1.2,
            leak_pj_per_kb_cycle: 0.01,
        }
    }

    /// Scales all dynamic-energy terms by `factor` (used by ablation benches
    /// to explore voltage scaling; energy scales with V²).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.bitline_pj_per_kb *= factor;
        self.sense_pj_per_bit *= factor;
        self.decode_pj_per_bit *= factor;
        self.leak_pj_per_kb_cycle *= factor;
        self
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::deep_submicron_180nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_180nm() {
        let t = Technology::default();
        assert_eq!(t.feature_nm, 180.0);
        assert!(t.vdd > 1.0);
        assert!(t.bitline_pj_per_kb > 0.0);
    }

    #[test]
    fn scaling_multiplies_dynamic_terms() {
        let base = Technology::default();
        let scaled = base.scaled(0.5);
        assert!((scaled.bitline_pj_per_kb - base.bitline_pj_per_kb * 0.5).abs() < 1e-12);
        assert!((scaled.sense_pj_per_bit - base.sense_pj_per_bit * 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = Technology::default().scaled(0.0);
    }
}
