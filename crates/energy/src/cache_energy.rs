//! Per-access energy of a (possibly resized) cache.

use rescache_cache::{CacheConfig, CacheStats};

use crate::cacti::{leakage_pj, ArrayGeometry};
use crate::technology::Technology;

/// How the cache precharges its subarrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrechargePolicy {
    /// All *enabled* subarrays are precharged before every access (the
    /// high-performance L1 style the paper assumes, overlapping precharge
    /// with decode). This is what makes resizing save energy: disabling
    /// subarrays removes their precharge.
    AllEnabled,
    /// Only the subarrays actually addressed are precharged (delayed
    /// precharge, slower — the paper's suggestion for the less
    /// latency-critical L2).
    AccessedOnly,
}

/// Energy model of one cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEnergyModel {
    config: CacheConfig,
    policy: PrechargePolicy,
    /// Extra tag bits carried to support resizing (selective-sets/hybrid
    /// organizations keep the tag width of their smallest size).
    extra_tag_bits: u32,
    tech: Technology,
}

impl CacheEnergyModel {
    /// Creates a model for a non-resizable cache (no extra tag bits).
    pub fn new(config: CacheConfig, policy: PrechargePolicy, tech: Technology) -> Self {
        Self {
            config,
            policy,
            extra_tag_bits: 0,
            tech,
        }
    }

    /// Adds resizing tag bits (used by selective-sets and hybrid
    /// organizations, which must keep the tag width of the smallest offered
    /// size).
    pub fn with_extra_tag_bits(mut self, bits: u32) -> Self {
        self.extra_tag_bits = bits;
        self
    }

    /// The cache configuration this model describes.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The extra tag bits charged on every access.
    pub fn extra_tag_bits(&self) -> u32 {
        self.extra_tag_bits
    }

    /// Tag width in bits at the given enabled set count (including the
    /// resizing overhead).
    fn tag_width_bits(&self, enabled_sets: u64) -> f64 {
        f64::from(self.config.tag_bits(enabled_sets)) + f64::from(self.extra_tag_bits) + 2.0
    }

    /// Energy in picojoules of one access at the given enabled geometry.
    pub fn access_energy_pj(&self, enabled_sets: u64, enabled_ways: u32) -> f64 {
        let block_bits = self.config.block_bytes as f64 * 8.0;
        let tag_bits = self.tag_width_bits(enabled_sets);
        let enabled_blocks = (enabled_sets * u64::from(enabled_ways)) as f64;
        let data_kb = enabled_blocks * self.config.block_bytes as f64 / 1024.0;
        let tag_kb = enabled_blocks * tag_bits / 8.0 / 1024.0;

        let precharged_kb = match self.policy {
            PrechargePolicy::AllEnabled => data_kb + tag_kb,
            PrechargePolicy::AccessedOnly => {
                // One subarray per enabled way (data) plus its tags.
                let accessed_blocks =
                    (self.config.sets_per_subarray() * u64::from(enabled_ways)) as f64;
                accessed_blocks * (self.config.block_bytes as f64 + tag_bits / 8.0) / 1024.0
            }
        };
        // Every enabled way senses its tag; the selected way drives the block.
        let sensed_bits = f64::from(enabled_ways) * tag_bits + block_bits;
        let decoded_bits = f64::from(enabled_sets.max(1).trailing_zeros()) + 1.0;

        ArrayGeometry {
            precharged_kb,
            sensed_bits,
            decoded_bits,
        }
        .access_energy_pj(&self.tech)
    }

    /// Energy of filling one block (the incoming write of a refill).
    pub fn fill_energy_pj(&self, enabled_sets: u64, enabled_ways: u32) -> f64 {
        // A fill drives one block plus one tag into the array: charge the
        // write of those bits plus a decode, but no full-array precharge.
        let block_bits = self.config.block_bytes as f64 * 8.0;
        let tag_bits = self.tag_width_bits(enabled_sets);
        ArrayGeometry {
            precharged_kb: (self.config.block_bytes as f64 + tag_bits / 8.0) / 1024.0
                * f64::from(enabled_ways),
            sensed_bits: block_bits + tag_bits,
            decoded_bits: f64::from(enabled_sets.max(1).trailing_zeros()) + 1.0,
        }
        .access_energy_pj(&self.tech)
    }

    /// Total switching energy in picojoules implied by a set of cache
    /// statistics (accesses and fills are charged per geometry slice).
    pub fn switching_energy_pj(&self, stats: &CacheStats) -> f64 {
        stats
            .slices
            .iter()
            .map(|slice| {
                slice.accesses as f64
                    * self.access_energy_pj(slice.enabled_sets, slice.enabled_ways)
                    + slice.fills as f64
                        * self.fill_energy_pj(slice.enabled_sets, slice.enabled_ways)
            })
            .sum()
    }

    /// Leakage energy in picojoules over `cycles` cycles given the
    /// access-weighted mean enabled capacity recorded in `stats`.
    pub fn leakage_energy_pj(&self, stats: &CacheStats, cycles: u64) -> f64 {
        let mean_kb = stats.mean_enabled_bytes(self.config.block_bytes) / 1024.0;
        leakage_pj(mean_kb, cycles, &self.tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1_model() -> CacheEnergyModel {
        CacheEnergyModel::new(
            CacheConfig::l1_default(32 * 1024, 2),
            PrechargePolicy::AllEnabled,
            Technology::default(),
        )
    }

    #[test]
    fn downsizing_reduces_access_energy() {
        let m = l1_model();
        let full = m.access_energy_pj(512, 2);
        let half = m.access_energy_pj(256, 2);
        let eighth = m.access_energy_pj(64, 2);
        assert!(half < full * 0.65, "half-size access {half} vs full {full}");
        assert!(
            eighth < full * 0.3,
            "eighth-size access {eighth} vs full {full}"
        );
    }

    #[test]
    fn way_downsizing_reduces_access_energy() {
        let m = CacheEnergyModel::new(
            CacheConfig::l1_default(32 * 1024, 4),
            PrechargePolicy::AllEnabled,
            Technology::default(),
        );
        let full = m.access_energy_pj(256, 4);
        let three = m.access_energy_pj(256, 3);
        let one = m.access_energy_pj(256, 1);
        assert!(three < full);
        assert!(one < full * 0.4);
    }

    #[test]
    fn resizing_tag_bits_cost_energy() {
        let plain = l1_model();
        let resizable = l1_model().with_extra_tag_bits(4);
        assert!(
            resizable.access_energy_pj(512, 2) > plain.access_energy_pj(512, 2),
            "extra tag bits must not be free"
        );
        // ... but the overhead is small (the paper calls it insignificant).
        let overhead = resizable.access_energy_pj(512, 2) / plain.access_energy_pj(512, 2);
        assert!(
            overhead < 1.05,
            "tag overhead should be a few percent, got {overhead}"
        );
    }

    #[test]
    fn accessed_only_precharge_is_much_cheaper_for_large_caches() {
        let l2_all = CacheEnergyModel::new(
            CacheConfig::l2_default(),
            PrechargePolicy::AllEnabled,
            Technology::default(),
        );
        let l2_delayed = CacheEnergyModel::new(
            CacheConfig::l2_default(),
            PrechargePolicy::AccessedOnly,
            Technology::default(),
        );
        let sets = CacheConfig::l2_default().num_sets();
        assert!(
            l2_delayed.access_energy_pj(sets, 4) < l2_all.access_energy_pj(sets, 4) / 10.0,
            "delayed precharge avoids charging the whole 512K array"
        );
    }

    #[test]
    fn switching_energy_accumulates_over_slices() {
        let m = l1_model();
        let mut stats = CacheStats::new(512, 2);
        for _ in 0..100 {
            stats.record_access(false, true);
        }
        stats.open_slice(128, 2);
        for _ in 0..100 {
            stats.record_access(false, true);
        }
        let energy = m.switching_energy_pj(&stats);
        let full_only = 200.0 * m.access_energy_pj(512, 2);
        assert!(
            energy < full_only,
            "time at the smaller size must save energy"
        );
        assert!(energy > 100.0 * m.access_energy_pj(512, 2));
    }

    #[test]
    fn leakage_scales_with_enabled_size() {
        let m = l1_model();
        let full = CacheStats::new(512, 2);
        let small = CacheStats::new(64, 2);
        assert!(m.leakage_energy_pj(&small, 10_000) < m.leakage_energy_pj(&full, 10_000) / 4.0);
    }

    #[test]
    fn accessors() {
        let m = l1_model().with_extra_tag_bits(3);
        assert_eq!(m.extra_tag_bits(), 3);
        assert_eq!(m.config().size_bytes, 32 * 1024);
    }
}
