//! CACTI-lite: closed-form energy components for SRAM arrays.
//!
//! CACTI (Wilton & Jouppi) models access time and energy of cache arrays
//! from their geometry. This module keeps only what the study needs: the
//! energy of precharging and discharging bitlines across the subarrays that
//! are powered, the sense-amplifier and output-driver energy of the bits that
//! are actually read, and the decoder/wordline energy.

use crate::technology::Technology;

/// Geometry of one logical SRAM array access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayGeometry {
    /// Kilobytes of array that are precharged for the access.
    pub precharged_kb: f64,
    /// Bits sensed and driven to the output.
    pub sensed_bits: f64,
    /// Index bits decoded (log2 of the rows addressed).
    pub decoded_bits: f64,
}

impl ArrayGeometry {
    /// Energy in picojoules of one access with this geometry.
    pub fn access_energy_pj(&self, tech: &Technology) -> f64 {
        assert!(
            self.precharged_kb >= 0.0 && self.sensed_bits >= 0.0 && self.decoded_bits >= 0.0,
            "array geometry terms must be non-negative"
        );
        self.precharged_kb * tech.bitline_pj_per_kb
            + self.sensed_bits * tech.sense_pj_per_bit
            + self.decoded_bits * tech.decode_pj_per_bit
    }
}

/// Leakage energy in picojoules of `kb` kilobytes of powered SRAM over
/// `cycles` cycles.
pub fn leakage_pj(kb: f64, cycles: u64, tech: &Technology) -> f64 {
    assert!(kb >= 0.0, "leakage capacity must be non-negative");
    kb * cycles as f64 * tech.leak_pj_per_kb_cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_linearly_with_precharged_capacity() {
        let tech = Technology::default();
        let small = ArrayGeometry {
            precharged_kb: 4.0,
            sensed_bits: 256.0,
            decoded_bits: 7.0,
        };
        let large = ArrayGeometry {
            precharged_kb: 32.0,
            sensed_bits: 256.0,
            decoded_bits: 10.0,
        };
        let e_small = small.access_energy_pj(&tech);
        let e_large = large.access_energy_pj(&tech);
        assert!(
            e_large > e_small * 3.0,
            "precharge dominates: {e_small} vs {e_large}"
        );
    }

    #[test]
    fn sensed_bits_contribute() {
        let tech = Technology::default();
        let narrow = ArrayGeometry {
            precharged_kb: 8.0,
            sensed_bits: 64.0,
            decoded_bits: 8.0,
        };
        let wide = ArrayGeometry {
            precharged_kb: 8.0,
            sensed_bits: 512.0,
            decoded_bits: 8.0,
        };
        assert!(wide.access_energy_pj(&tech) > narrow.access_energy_pj(&tech));
    }

    #[test]
    fn leakage_proportional_to_size_and_time() {
        let tech = Technology::default();
        let a = leakage_pj(32.0, 1000, &tech);
        let b = leakage_pj(16.0, 1000, &tech);
        let c = leakage_pj(32.0, 2000, &tech);
        assert!((a - 2.0 * b).abs() < 1e-9);
        assert!((c - 2.0 * a).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_geometry_panics() {
        let g = ArrayGeometry {
            precharged_kb: -1.0,
            sensed_bits: 0.0,
            decoded_bits: 0.0,
        };
        let _ = g.access_energy_pj(&Technology::default());
    }
}
