//! Wattch-style activity-based processor and cache energy models.
//!
//! The HPCA 2002 resizable-cache study uses Wattch 1.0 (on SimpleScalar) to
//! attribute energy to processor structures and to model how a cache's
//! switching energy scales with the number of *enabled* subarrays: modern
//! high-performance caches precharge every subarray before each access, so
//! disabling subarrays removes their precharge/discharge energy and their
//! clock load. This crate provides the equivalent models for the `rescache`
//! workspace:
//!
//! * [`technology`] — the 0.18 µm technology point and its energy scale.
//! * [`cacti`] — CACTI-lite closed-form array energy components.
//! * [`cache_energy`] — per-access energy of a (possibly resized) cache,
//!   including the selective-sets "resizing tag bits" overhead.
//! * [`processor`] — per-access energies of the core pipeline structures and
//!   the clock tree.
//! * [`model`] — [`EnergyModel`]: activity counters + cache statistics →
//!   a per-structure [`EnergyBreakdown`].
//! * [`metrics`] — [`EnergyDelay`] and the relative-reduction arithmetic the
//!   paper's figures report.
//!
//! Absolute joules are not the point (the paper's own absolute numbers depend
//! on Wattch's internal capacitance tables); what matters for reproducing the
//! study is that (a) cache energy scales with enabled capacity and access
//! count, and (b) the two L1 caches dissipate roughly the paper's share of
//! total processor energy (≈18.5 % d-cache, ≈17.5 % i-cache on average) so
//! that cache-size reductions translate into the same order of processor-wide
//! energy-delay reductions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache_energy;
pub mod cacti;
pub mod metrics;
pub mod model;
pub mod processor;
pub mod technology;

pub use cache_energy::{CacheEnergyModel, PrechargePolicy};
pub use cacti::ArrayGeometry;
pub use metrics::{EnergyDelay, Objective};
pub use model::{EnergyBreakdown, EnergyModel, ResizingTagOverhead};
pub use processor::ProcessorEnergyParams;
pub use technology::Technology;
