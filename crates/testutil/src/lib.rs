//! Deterministic randomized-testing helpers for the `rescache` workspace.
//!
//! The workspace's property tests originally used `proptest`; this build runs
//! in an offline environment with no access to crates.io, so the properties
//! are exercised with this small in-repo harness instead: a seeded xorshift
//! generator plus a case-runner that reports the failing case's seed so a
//! failure can be replayed as a single deterministic case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A deterministic pseudo-random generator for tests (xorshift64* seeded
/// through SplitMix64 — the same construction as `rescache_trace::Prng`, kept
/// separate so `rescache-cache` tests need no dependency on the trace crate).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed; any seed (including zero) is valid.
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z | 1 }
    }

    /// Returns the next 64-bit pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a uniformly distributed value in `[0, bound)` (0 if `bound` is 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Returns a uniformly distributed `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range(u64::from(lo), u64::from(hi)) as u32
    }

    /// Returns a uniformly distributed `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns `true` or `false` with equal probability.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills a vector with `len` values drawn from `f`.
    pub fn vec_of<T>(&mut self, len: usize, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }
}

/// Base seed mixed into every case so property runs are stable across
/// machines but distinct from the simulation seeds used by the experiments.
const CASE_SEED: u64 = 0x5EED_CAFE_F00D_0001;

/// Prints the failing case's replay seed when the case body panics.
struct CaseReporter {
    case: u64,
    seed: u64,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "[rescache-testutil] property failed at case {} (replay with TestRng::new({:#x}))",
                self.case, self.seed
            );
        }
    }
}

/// Runs `body` for `cases` deterministic cases, each with an independently
/// seeded [`TestRng`]. On panic, the failing case index and replay seed are
/// printed to stderr before the panic propagates.
pub fn check_cases(cases: u64, mut body: impl FnMut(&mut TestRng)) {
    for case in 0..cases {
        let seed = CASE_SEED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let reporter = CaseReporter { case, seed };
        let mut rng = TestRng::new(seed);
        body(&mut rng);
        std::mem::forget(reporter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn check_cases_runs_the_requested_number() {
        let mut count = 0;
        check_cases(32, |_| count += 1);
        assert_eq!(count, 32);
    }

    #[test]
    fn vec_of_produces_len_items() {
        let mut rng = TestRng::new(3);
        let v = rng.vec_of(17, |r| r.below(100));
        assert_eq!(v.len(), 17);
        assert!(v.iter().all(|x| *x < 100));
    }
}
