//! Resizable cache organizations, resizing strategies, and the experiment
//! drivers that reproduce the HPCA 2002 study
//! *"Exploiting Choice in Resizable Cache Design to Optimize Deep-Submicron
//! Processor Energy-Delay"* (Yang, Powell, Falsafi, Vijaykumar).
//!
//! The paper compares, on top of a Wattch/SimpleScalar-style simulated
//! processor:
//!
//! * **Organizations** — [`Organization::SelectiveWays`] (mask off associative
//!   ways), [`Organization::SelectiveSets`] (mask off sets, keeping
//!   associativity), and the paper's proposed [`Organization::Hybrid`] which
//!   offers the union of both size spectra (Table 1).
//! * **Strategies** — [`strategy::StaticSearch`] (one profiled size per
//!   application) and [`strategy::DynamicController`] (the miss-ratio-based
//!   interval controller with a miss-bound and size-bound).
//! * **Scope** — resizing the d-cache, the i-cache, or both at once
//!   (Figure 9's additivity result).
//!
//! The [`experiment`] module contains one driver per table/figure of the
//! paper; the `rescache-bench` crate turns each into a `cargo bench` target
//! and `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! # Quick start
//!
//! ```
//! use rescache_core::{CoreError, Organization, ResizableCacheSide, SystemConfig};
//! use rescache_core::experiment::{Runner, RunnerConfig};
//! use rescache_trace::spec;
//!
//! # fn main() -> Result<(), CoreError> {
//! // Evaluate static selective-sets resizing of the d-cache for one app.
//! let runner = Runner::new(RunnerConfig::fast());
//! let outcome = runner.static_best(
//!     &spec::ammp(),
//!     &SystemConfig::base(),
//!     Organization::SelectiveSets,
//!     ResizableCacheSide::Data,
//! )?;
//! assert!(outcome.best.edp_reduction_percent > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod experiment;
pub mod json;
pub mod org;
pub mod strategy;
pub mod system;

pub use error::CoreError;
pub use experiment::{Runner, RunnerConfig};
pub use org::{CachePoint, ConfigSpace, Organization};
pub use strategy::{DynamicController, DynamicParams, ResizeDecision, StaticSearch};
pub use system::{ResizableCacheSide, SystemConfig};
