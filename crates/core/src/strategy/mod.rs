//! Resizing strategies: *when* the cache changes size.
//!
//! * [`StaticSearch`] — the static strategy of Albonesi's proposal: one size
//!   per application, chosen offline by profiling every offered configuration
//!   and keeping the one with the lowest processor energy-delay product.
//! * [`DynamicController`] — the miss-ratio-based dynamic strategy of Yang et
//!   al.: the cache is monitored in fixed-length intervals of accesses; a
//!   miss counter compared against a profiled **miss-bound** decides whether
//!   to upsize or downsize, and a **size-bound** prevents downsizing past a
//!   floor.

pub mod dynamic;
pub mod static_search;

pub use dynamic::{DynamicController, DynamicParams, ResizeDecision};
pub use static_search::{StaticSearch, StaticSearchResult};
