//! The static resizing strategy: offline search over offered configurations.

use rescache_energy::{EnergyDelay, Objective};

use crate::org::{CachePoint, ConfigSpace};

/// Result of a static search.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticSearchResult {
    /// The objective value of every offered point, in the order of the
    /// configuration space (largest size first).
    pub values: Vec<f64>,
    /// Index of the point with the minimum objective value.
    pub best_index: usize,
}

impl StaticSearchResult {
    /// The best objective value.
    pub fn best_value(&self) -> f64 {
        self.values[self.best_index]
    }
}

/// The static strategy: profile every offered configuration and pick the one
/// minimising an objective (in the paper, the processor energy-delay
/// product).
///
/// The search itself is simulator-agnostic: the caller supplies a closure
/// that evaluates one [`CachePoint`] and returns the objective, which keeps
/// this type usable with the full system simulation of the experiment runner
/// as well as with cheap analytical objectives in tests.
#[derive(Debug, Clone)]
pub struct StaticSearch {
    space: ConfigSpace,
}

impl StaticSearch {
    /// Creates a search over the given configuration space.
    pub fn new(space: ConfigSpace) -> Self {
        Self { space }
    }

    /// The configuration space being searched.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// Evaluates every offered point with `objective` and returns the values
    /// plus the index of the minimum (ties resolved towards the larger
    /// cache, i.e. the earlier index).
    pub fn search<F>(&self, objective: F) -> StaticSearchResult
    where
        F: FnMut(&CachePoint) -> f64,
    {
        let values: Vec<f64> = self.space.points().iter().map(objective).collect();
        let mut best_index = 0;
        for (i, v) in values.iter().enumerate() {
            if *v < values[best_index] {
                best_index = i;
            }
        }
        StaticSearchResult { values, best_index }
    }

    /// The point at `index` in the searched space.
    pub fn point(&self, index: usize) -> CachePoint {
        self.space.points()[index]
    }

    /// [`StaticSearch::search`] over measured energy-delay points, scored
    /// under an [`Objective`]: `evaluate` measures each point once, and the
    /// objective turns the measurement into the scalar being minimised
    /// (EDP reproduces the paper's search; ED²P and pure delay re-rank the
    /// same measurements latency-first).
    pub fn search_objective<F>(&self, objective: Objective, mut evaluate: F) -> StaticSearchResult
    where
        F: FnMut(&CachePoint) -> EnergyDelay,
    {
        self.search(|p| objective.score(&evaluate(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::Organization;
    use rescache_cache::CacheConfig;

    fn space() -> ConfigSpace {
        ConfigSpace::enumerate(
            CacheConfig::l1_default(32 * 1024, 4),
            Organization::SelectiveSets,
        )
        .unwrap()
    }

    #[test]
    fn picks_the_minimum() {
        let search = StaticSearch::new(space());
        // Favour the 8K point (index 2 of 32/16/8/4).
        let result = search.search(|p| (p.bytes(32) as f64 - 8192.0).abs());
        assert_eq!(result.best_index, 2);
        assert_eq!(search.point(result.best_index).bytes(32), 8 * 1024);
        assert_eq!(result.values.len(), 4);
        assert_eq!(result.best_value(), 0.0);
    }

    #[test]
    fn ties_resolve_to_the_larger_cache() {
        let search = StaticSearch::new(space());
        let result = search.search(|_| 1.0);
        assert_eq!(result.best_index, 0, "equal objectives keep the full size");
    }

    #[test]
    fn space_accessor_round_trips() {
        let s = space();
        let search = StaticSearch::new(s.clone());
        assert_eq!(search.space(), &s);
    }

    #[test]
    fn objective_search_reranks_the_same_measurements() {
        // Smaller caches: less energy but more cycles. EDP tolerates the
        // slowdown; pure delay pins the full-size point.
        let search = StaticSearch::new(space());
        let measure = |p: &CachePoint| {
            let bytes = p.bytes(32) as f64;
            // Energy falls linearly with size; cycles rise sub-linearly as
            // the cache shrinks, so the EDP optimum sits below full size
            // while pure delay still pins the largest point.
            let cycles = 1_000_000 + (50_000.0 * (32_768.0 / bytes)) as u64;
            EnergyDelay::new(bytes / 1024.0, cycles)
        };
        let edp = search.search_objective(Objective::Edp, measure);
        let delay = search.search_objective(Objective::Delay, measure);
        assert_eq!(delay.best_index, 0, "pure delay keeps the full size");
        assert_ne!(
            edp.best_index, delay.best_index,
            "EDP trades cycles for energy on this profile"
        );
        // EDP scoring is exactly the product, bit for bit.
        let p = search.point(1);
        let ed = measure(&p);
        assert_eq!(edp.values[1].to_bits(), ed.product().to_bits());
    }
}
