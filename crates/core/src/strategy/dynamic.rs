//! The miss-ratio-based dynamic resizing controller.

use std::sync::mpsc;

use rescache_cache::MemoryHierarchy;
use rescache_cpu::SimHook;
use rescache_energy::Objective;

use crate::error::CoreError;
use crate::org::{CachePoint, ConfigSpace};
use crate::system::ResizableCacheSide;

/// Parameters of the dynamic (miss-ratio based) resizing framework.
///
/// The paper's framework monitors the cache in fixed-length intervals
/// measured in cache accesses; at the end of each interval the miss counter
/// is compared against the **miss-bound** to decide between upsizing and
/// downsizing, and the **size-bound** prevents the cache from shrinking past
/// a floor. Both parameters are extracted offline through profiling (the
/// experiment runner sweeps a small set of candidates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicParams {
    /// Interval length in cache accesses.
    pub interval_accesses: u64,
    /// Miss count per interval above which the cache upsizes, and below
    /// which it downsizes.
    pub miss_bound: u64,
    /// Smallest enabled capacity (bytes) the controller may select.
    pub size_bound_bytes: u64,
}

impl DynamicParams {
    /// Creates a parameter set.
    ///
    /// # Errors
    ///
    /// Returns an error if the interval is zero.
    pub fn new(
        interval_accesses: u64,
        miss_bound: u64,
        size_bound_bytes: u64,
    ) -> Result<Self, CoreError> {
        if interval_accesses == 0 {
            return Err(CoreError::InvalidParameter {
                parameter: "interval_accesses",
                detail: "interval must be at least one access".into(),
            });
        }
        Ok(Self {
            interval_accesses,
            miss_bound,
            size_bound_bytes,
        })
    }

    /// Profiling candidates derived from the behaviour of the full-size
    /// cache: miss-bounds at several multiples of the observed miss rate,
    /// with the size floor at the smallest offered size.
    ///
    /// `base_miss_ratio` is the miss ratio of the non-resizable cache;
    /// multiplying by the interval length turns it into a per-interval miss
    /// count.
    pub fn candidates(
        interval_accesses: u64,
        base_miss_ratio: f64,
        space: &ConfigSpace,
    ) -> Vec<DynamicParams> {
        Self::candidates_for_space(
            interval_accesses,
            base_miss_ratio,
            space,
            &[space.min_bytes()],
        )
    }

    /// Profiling candidates over requested size-bounds, validated against
    /// the organization's offered configuration space.
    ///
    /// Every requested bound is snapped to the capacity the controller would
    /// actually floor at ([`ConfigSpace::snap_size_bound`]): a bound between
    /// two offered sizes rounds up to the next offered size, and a bound
    /// beyond the full capacity clamps to the full size, instead of silently
    /// sweeping an unreachable floor (which previously either duplicated a
    /// neighbouring candidate's simulation or made [`DynamicController::new`]
    /// reject the parameters outright). Bounds that snap to the same
    /// capacity collapse to one candidate.
    pub fn candidates_for_space(
        interval_accesses: u64,
        base_miss_ratio: f64,
        space: &ConfigSpace,
        size_bounds: &[u64],
    ) -> Vec<DynamicParams> {
        let snapped: Vec<u64> = size_bounds
            .iter()
            .map(|b| space.snap_size_bound(*b))
            .collect();
        Self::candidates_with_bounds(interval_accesses, base_miss_ratio, &snapped)
    }

    /// Profiling candidates over an explicit set of size-bounds.
    ///
    /// The paper extracts both the miss-bound and the size-bound offline
    /// through profiling; the experiment runner passes size-bounds derived
    /// from the static profiling result (the static best size, half of it,
    /// and the smallest offered size) so the dynamic controller is not forced
    /// to oscillate around sizes the application cannot live with.
    pub fn candidates_with_bounds(
        interval_accesses: u64,
        base_miss_ratio: f64,
        size_bounds: &[u64],
    ) -> Vec<DynamicParams> {
        let base_misses = (base_miss_ratio.max(1e-4) * interval_accesses as f64).ceil();
        let mut bounds: Vec<u64> = size_bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let mut candidates = Vec::new();
        for size_bound in bounds {
            for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
                candidates.push(DynamicParams {
                    interval_accesses,
                    miss_bound: (base_misses * factor).ceil().max(1.0) as u64,
                    size_bound_bytes: size_bound,
                });
            }
        }
        candidates.dedup();
        candidates
    }
}

/// One resize the dynamic controller performed, as observed through a
/// decision sink ([`DynamicController::with_decision_sink`]): the interval
/// bookkeeping that triggered it plus the geometry transition. Resize-only
/// by design — quiet intervals emit nothing, which bounds the stream's
/// volume by the resize count rather than the access count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizeDecision {
    /// Cache accesses observed (since the last statistics reset) when the
    /// decision fired.
    pub accesses: u64,
    /// The interval's signal count (misses under EDP; misses plus data-side
    /// delayed hits under the latency objectives).
    pub interval_signal: u64,
    /// The miss-bound the signal was compared against.
    pub miss_bound: u64,
    /// The geometry before the resize.
    pub from: CachePoint,
    /// The geometry after the resize.
    pub to: CachePoint,
}

/// The dynamic resizing controller, attached to a simulation as a
/// [`SimHook`].
///
/// The controller walks the organization's offered configuration list: when
/// an interval sees more misses than the miss-bound it steps towards the full
/// size, otherwise it steps towards the smallest size allowed by the
/// size-bound. Resizes apply the paper's flush semantics through
/// [`CachePoint::apply`] and the dirty-flush traffic is credited to the L2.
#[derive(Debug, Clone)]
pub struct DynamicController {
    side: ResizableCacheSide,
    space: ConfigSpace,
    params: DynamicParams,
    objective: Objective,
    current: usize,
    min_index: usize,
    last_accesses: u64,
    last_signal: u64,
    resizes: u64,
    sink: Option<mpsc::Sender<ResizeDecision>>,
}

impl DynamicController {
    /// Creates a controller for one cache side over an offered configuration
    /// space.
    ///
    /// # Errors
    ///
    /// Returns an error if the size-bound is larger than the full cache (the
    /// controller could never move).
    pub fn new(
        side: ResizableCacheSide,
        space: ConfigSpace,
        params: DynamicParams,
    ) -> Result<Self, CoreError> {
        let full_bytes = space.sizes_bytes()[0];
        if params.size_bound_bytes > full_bytes {
            return Err(CoreError::InvalidParameter {
                parameter: "size_bound_bytes",
                detail: format!(
                    "size bound {} exceeds the full cache size {}",
                    params.size_bound_bytes, full_bytes
                ),
            });
        }
        let min_index = space.index_of_at_least(params.size_bound_bytes.max(1));
        Ok(Self {
            side,
            space,
            params,
            objective: Objective::Edp,
            current: 0,
            min_index,
            last_accesses: 0,
            last_signal: 0,
            resizes: 0,
            sink: None,
        })
    }

    /// Returns this controller steering by `objective`.
    ///
    /// Under the default EDP objective the interval signal is the cache's
    /// miss count, exactly as before the objective existed. Under the
    /// latency-first objectives (ED²P, delay) delayed hits on the data side
    /// count into the signal too: a merged miss still stalls the pipeline
    /// for its remaining fill latency, so a latency-minded controller treats
    /// it as pressure to upsize.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Returns this controller streaming every resize it performs into
    /// `sink` as a [`ResizeDecision`] — the observation hook the sweep
    /// service's `dynamic` verb uses to forward interval-by-interval
    /// decisions over the wire while the simulation runs. A dropped
    /// receiver is absorbed silently: observation must never perturb (or
    /// abort) the run it observes.
    pub fn with_decision_sink(mut self, sink: mpsc::Sender<ResizeDecision>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The currently selected configuration point.
    pub fn current_point(&self) -> CachePoint {
        self.space.points()[self.current]
    }

    /// Number of resizes performed so far.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// The parameters this controller runs with.
    pub fn params(&self) -> DynamicParams {
        self.params
    }

    /// The interval signal pair: (accesses, signal). The signal is plain
    /// misses under EDP — bit-identical to the pre-objective controller —
    /// and misses plus data-side delayed hits under the latency objectives.
    fn cache_counters(&self, hierarchy: &MemoryHierarchy) -> (u64, u64) {
        let stats = match self.side {
            ResizableCacheSide::Data => hierarchy.l1d().stats(),
            ResizableCacheSide::Instruction => hierarchy.l1i().stats(),
        };
        let delayed = match (self.objective, self.side) {
            (Objective::Edp, _) => 0,
            (_, ResizableCacheSide::Data) => hierarchy.stats().delayed_hits,
            (_, ResizableCacheSide::Instruction) => 0,
        };
        (stats.accesses, stats.misses() + delayed)
    }

    fn apply_point(&mut self, index: usize, hierarchy: &mut MemoryHierarchy) {
        let point = self.space.points()[index];
        let effect = match self.side {
            ResizableCacheSide::Data => point.apply(hierarchy.l1d_mut()),
            ResizableCacheSide::Instruction => point.apply(hierarchy.l1i_mut()),
        };
        hierarchy.note_resize_flush_writebacks(effect.dirty_writebacks);
        self.current = index;
        self.resizes += 1;
    }
}

impl SimHook for DynamicController {
    fn post_commit(&mut self, _committed: u64, _cycle: u64, hierarchy: &mut MemoryHierarchy) {
        let (accesses, signal) = self.cache_counters(hierarchy);
        if accesses < self.last_accesses {
            // Statistics were reset (end of warm-up): re-anchor the interval.
            self.last_accesses = accesses;
            self.last_signal = signal;
            return;
        }
        if accesses - self.last_accesses < self.params.interval_accesses {
            return;
        }
        let interval_misses = signal - self.last_signal;
        self.last_accesses = accesses;
        self.last_signal = signal;

        let target = if interval_misses > self.params.miss_bound {
            self.current.saturating_sub(1)
        } else if interval_misses < self.params.miss_bound {
            (self.current + 1).min(self.min_index)
        } else {
            self.current
        };
        if target != self.current {
            let from = self.space.points()[self.current];
            self.apply_point(target, hierarchy);
            if let Some(sink) = &self.sink {
                // Ignore a dropped receiver: the run's correctness never
                // depends on anyone watching it.
                let _ = sink.send(ResizeDecision {
                    accesses,
                    interval_signal: interval_misses,
                    miss_bound: self.params.miss_bound,
                    from,
                    to: self.space.points()[target],
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::Organization;
    use rescache_cache::{CacheConfig, HierarchyConfig};

    fn space() -> ConfigSpace {
        ConfigSpace::enumerate(
            CacheConfig::l1_default(32 * 1024, 2),
            Organization::SelectiveSets,
        )
        .unwrap()
    }

    fn controller(miss_bound: u64, size_bound: u64) -> DynamicController {
        DynamicController::new(
            ResizableCacheSide::Data,
            space(),
            DynamicParams::new(100, miss_bound, size_bound).unwrap(),
        )
        .unwrap()
    }

    fn drive(hierarchy: &mut MemoryHierarchy, controller: &mut DynamicController, misses: bool) {
        // Issue one interval's worth of d-cache accesses, hitting or missing.
        for i in 0..100u64 {
            let addr = if misses {
                0x900_0000 + (hierarchy.l1d().stats().accesses + i) * 64 * 1024
            } else {
                0x100
            };
            hierarchy.access_data(addr, false, i);
        }
        controller.post_commit(0, 0, hierarchy);
    }

    #[test]
    fn quiet_intervals_downsize_to_the_size_bound() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut c = controller(10, 4 * 1024);
        for _ in 0..10 {
            drive(&mut h, &mut c, false);
        }
        assert_eq!(
            c.current_point().bytes(32),
            4 * 1024,
            "stops at the size bound"
        );
        assert!(c.resizes() >= 3);
        assert_eq!(h.l1d().enabled_bytes(), 4 * 1024);
    }

    #[test]
    fn missy_intervals_upsize_back_to_full() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut c = controller(10, 2 * 1024);
        for _ in 0..6 {
            drive(&mut h, &mut c, false);
        }
        assert!(c.current_point().bytes(32) < 32 * 1024);
        for _ in 0..10 {
            drive(&mut h, &mut c, true);
        }
        assert_eq!(
            c.current_point().bytes(32),
            32 * 1024,
            "misses push back to full size"
        );
    }

    #[test]
    fn interval_boundary_is_respected() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut c = controller(10, 2 * 1024);
        // Fewer accesses than one interval: no decision yet.
        for i in 0..50u64 {
            h.access_data(0x100, false, i);
            c.post_commit(i, i, &mut h);
        }
        assert_eq!(c.resizes(), 0);
        assert_eq!(c.current_point().bytes(32), 32 * 1024);
    }

    #[test]
    fn stats_reset_reanchors_the_interval() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut c = controller(10, 2 * 1024);
        for _ in 0..3 {
            drive(&mut h, &mut c, false);
        }
        let before = c.resizes();
        h.reset_stats();
        c.post_commit(0, 0, &mut h);
        assert_eq!(c.resizes(), before, "a reset must not trigger a resize");
    }

    #[test]
    fn candidates_scale_with_the_observed_miss_ratio() {
        let s = space();
        let low = DynamicParams::candidates(1000, 0.01, &s);
        let high = DynamicParams::candidates(1000, 0.2, &s);
        assert_eq!(low.len(), 5);
        assert!(high[1].miss_bound > low[1].miss_bound);
        assert!(low.iter().all(|p| p.size_bound_bytes == s.min_bytes()));
        assert!(low.iter().all(|p| p.miss_bound >= 1));
    }

    #[test]
    fn candidates_with_bounds_cover_the_cross_product() {
        let c = DynamicParams::candidates_with_bounds(1000, 0.05, &[4 * 1024, 16 * 1024, 4 * 1024]);
        // Duplicate bounds collapse: 2 bounds x 5 miss factors.
        assert_eq!(c.len(), 10);
        assert!(c.iter().any(|p| p.size_bound_bytes == 4 * 1024));
        assert!(c.iter().any(|p| p.size_bound_bytes == 16 * 1024));
    }

    #[test]
    fn candidates_for_space_snap_unoffered_bounds() {
        // Regression: a size-bound the space does not offer used to survive
        // into the sweep — a bound above the full capacity made controller
        // construction fail, and in-between bounds duplicated the
        // neighbouring candidate's simulation under a different label.
        let s = space(); // selective-sets 32K 2-way: 32/16/8/4/2 KiB
        let c = DynamicParams::candidates_for_space(
            1000,
            0.05,
            &s,
            &[64 * 1024, 5 * 1024, 8 * 1024, 1],
        );
        // 64K clamps to 32K, 5K rounds up to 8K (collapsing with the
        // explicit 8K), 1 floors at the smallest offered 2K: 3 distinct
        // bounds x 5 miss factors.
        assert_eq!(c.len(), 15);
        for p in &c {
            assert!(
                s.sizes_bytes().contains(&p.size_bound_bytes),
                "bound {} not offered",
                p.size_bound_bytes
            );
            // Every candidate must construct a controller.
            DynamicController::new(ResizableCacheSide::Data, s.clone(), *p)
                .expect("snapped bounds are always valid");
        }
        assert!(c.iter().any(|p| p.size_bound_bytes == 32 * 1024));
        assert!(c.iter().any(|p| p.size_bound_bytes == 8 * 1024));
        assert!(c.iter().any(|p| p.size_bound_bytes == 2 * 1024));
    }

    #[test]
    fn decision_sink_observes_every_resize_and_survives_a_dropped_receiver() {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut c = controller(10, 4 * 1024).with_decision_sink(tx);
        for _ in 0..10 {
            drive(&mut h, &mut c, false);
        }
        let decisions: Vec<ResizeDecision> = rx.try_iter().collect();
        assert_eq!(decisions.len() as u64, c.resizes(), "one line per resize");
        for pair in decisions.windows(2) {
            assert_eq!(pair[0].to, pair[1].from, "transitions chain");
        }
        let last = decisions.last().expect("quiet intervals downsize");
        assert_eq!(last.to, c.current_point());
        assert!(last.interval_signal < 10, "quiet interval signal");
        assert_eq!(last.miss_bound, 10);

        // The receiver is gone (collected above); further resizes must be
        // absorbed, not panic or poison the run.
        for _ in 0..10 {
            drive(&mut h, &mut c, true);
        }
        assert_eq!(c.current_point().bytes(32), 32 * 1024);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(DynamicParams::new(0, 5, 1024).is_err());
        let err = DynamicController::new(
            ResizableCacheSide::Data,
            space(),
            DynamicParams::new(100, 5, 64 * 1024).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidParameter { .. }));
    }

    #[test]
    fn instruction_side_controller_resizes_the_icache() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::base()).unwrap();
        let mut c = DynamicController::new(
            ResizableCacheSide::Instruction,
            space(),
            DynamicParams::new(100, 10, 2 * 1024).unwrap(),
        )
        .unwrap();
        for _ in 0..8 {
            for i in 0..100u64 {
                h.access_instruction(0x40_0000, i);
            }
            c.post_commit(0, 0, &mut h);
        }
        assert!(h.l1i().enabled_bytes() < 32 * 1024);
        assert_eq!(h.l1d().enabled_bytes(), 32 * 1024, "d-cache untouched");
    }
}
