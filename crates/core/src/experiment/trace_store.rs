//! The shared trace store: once-per-key generation, copy-free in-process
//! sharing, and optional on-disk persistence across processes.
//!
//! Every experiment replays the same `(application, seed, lengths)` trace
//! under many cache configurations, and trace generation is the slowest
//! single stage of a cold sweep. The store therefore memoizes the generated
//! `(warm-up, measured)` window pair per key within a process (concurrent
//! callers block on the one generation), and — when `RESCACHE_TRACE_DIR`
//! names a directory — persists each generated trace with the
//! [`rescache_trace::codec`] so later processes of a multi-app/multi-seed
//! campaign replay from disk instead of regenerating.
//!
//! Disk entries are advisory: a missing, truncated, corrupt or mismatched
//! file is silently replaced by regeneration (with a note on stderr for
//! anything other than "not found"), so a crashed writer or a foreign file
//! can never abort a sweep.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use rescache_trace::{codec, AppProfile, Trace, TraceGenerator};

use crate::experiment::runner::RunnerConfig;

/// Key identifying one generated (warm, measure) trace pair: application
/// name, profile fingerprint, seed, warm-up length, measured length. The
/// fingerprint covers the profile's full contents, so two differing profiles
/// that happen to share a name (possible via the `AppProfile` builders)
/// never alias in the store.
pub(crate) type TraceKey = (&'static str, u64, u64, usize, usize);

/// A shared once-per-key memoization map: the outer mutex is held only to
/// fetch or insert a slot, while the per-key `OnceLock` serializes (blocking)
/// the single computation of that key's value.
type MemoCache<K, V> = Arc<Mutex<HashMap<K, Arc<OnceLock<V>>>>>;

/// The store of generated traces (see the module documentation).
///
/// Clones share the in-memory map, which is what lets the parallel sweeps
/// fan out over applications without regenerating per-worker state.
#[derive(Debug, Clone, Default)]
pub struct TraceStore {
    traces: MemoCache<TraceKey, (Trace, Trace)>,
    dir: Option<PathBuf>,
}

impl TraceStore {
    /// Creates a store persisting to `RESCACHE_TRACE_DIR` if that names a
    /// directory (created on first write), in-memory only otherwise.
    pub fn from_env() -> Self {
        Self::with_dir(std::env::var_os("RESCACHE_TRACE_DIR").map(PathBuf::from))
    }

    /// Creates a store with an explicit persistence directory (`None` =
    /// in-memory only).
    pub fn with_dir(dir: Option<PathBuf>) -> Self {
        Self {
            traces: Arc::default(),
            dir,
        }
    }

    /// The persistence directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The store key of an application under a runner configuration.
    pub(crate) fn key(app: &AppProfile, config: &RunnerConfig) -> TraceKey {
        (
            app.name,
            app.fingerprint(),
            config.trace_seed,
            config.warmup_instructions,
            config.measure_instructions,
        )
    }

    /// Returns the warm-up and measurement traces for an application,
    /// generating (or loading from disk) at most once per key.
    pub fn fetch(&self, app: &AppProfile, config: &RunnerConfig) -> (Trace, Trace) {
        let key = Self::key(app, config);
        let slot = {
            let mut map = self.traces.lock().expect("trace store lock");
            Arc::clone(map.entry(key).or_default())
        };
        slot.get_or_init(|| self.load_or_generate(app, config, &key))
            .clone()
    }

    /// Loads the keyed trace from disk if possible, otherwise generates it
    /// (and persists the result, best-effort).
    fn load_or_generate(
        &self,
        app: &AppProfile,
        config: &RunnerConfig,
        key: &TraceKey,
    ) -> (Trace, Trace) {
        let total = config.warmup_instructions + config.measure_instructions;
        let path = self.dir.as_ref().map(|d| d.join(Self::file_name(key)));

        if let Some(path) = &path {
            match codec::load_trace(path) {
                Ok(full) if full.name() == app.name && full.len() == total => {
                    return full.split_at(config.warmup_instructions);
                }
                Ok(full) => {
                    // A hash collision in the file name, or a foreign file:
                    // fall through to regeneration and overwrite.
                    eprintln!(
                        "rescache: trace store entry {} is for {}/{} records, expected {}/{total}; regenerating",
                        path.display(),
                        full.name(),
                        full.len(),
                        app.name,
                    );
                }
                Err(codec::CodecError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    eprintln!(
                        "rescache: trace store entry {} unreadable ({e}); regenerating",
                        path.display()
                    );
                }
            }
        }

        let full = TraceGenerator::new(app.clone(), config.trace_seed).generate(total);
        if let Some(path) = &path {
            if let Err(e) = self.persist(path, &full) {
                eprintln!(
                    "rescache: could not persist trace to {} ({e}); continuing in-memory",
                    path.display()
                );
            }
        }
        full.split_at(config.warmup_instructions)
    }

    /// Writes `full` to `path`, creating the store directory on first use.
    fn persist(&self, path: &Path, full: &Trace) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        codec::save_trace(path, full)
    }

    /// File name of a store entry: application name plus every key component
    /// that distinguishes trace contents.
    fn file_name(key: &TraceKey) -> String {
        let (name, fingerprint, seed, warm, measure) = key;
        format!("{name}-{fingerprint:016x}-s{seed}-w{warm}-m{measure}.rctrace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescache_trace::spec;

    fn temp_store(tag: &str) -> (TraceStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!("rescache-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        (TraceStore::with_dir(Some(dir.clone())), dir)
    }

    fn entry_path(dir: &Path) -> PathBuf {
        let entries: Vec<_> = std::fs::read_dir(dir)
            .expect("store dir exists")
            .map(|e| e.expect("dir entry").path())
            .collect();
        assert_eq!(entries.len(), 1, "expected one store entry: {entries:?}");
        entries.into_iter().next().expect("one entry")
    }

    #[test]
    fn memoizes_in_process() {
        let store = TraceStore::with_dir(None);
        let cfg = RunnerConfig::fast();
        let (w1, m1) = store.fetch(&spec::ammp(), &cfg);
        let (w2, m2) = store.fetch(&spec::ammp(), &cfg);
        assert_eq!(w1.len(), cfg.warmup_instructions);
        assert_eq!(m1.len(), cfg.measure_instructions);
        // Same underlying buffer, not merely equal contents.
        assert_eq!(w1.records().as_ptr(), w2.records().as_ptr());
        assert_eq!(m1.records().as_ptr(), m2.records().as_ptr());
    }

    #[test]
    fn persists_and_reloads_across_store_instances() {
        let (store, dir) = temp_store("reload");
        let cfg = RunnerConfig::fast();
        let (_, m1) = store.fetch(&spec::m88ksim(), &cfg);
        let path = entry_path(&dir);

        // A fresh store (a "new process") must serve the identical trace
        // from disk; corrupting the tag byte of the first record proves the
        // file is actually read (the fetch falls back to regeneration).
        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let (_, m2) = fresh.fetch(&spec::m88ksim(), &cfg);
        assert_eq!(m1, m2);

        let mut bytes = std::fs::read(&path).expect("read entry");
        let tag_offset = 8 + 4 + "m88ksim".len() + 8 + 4 + 8;
        bytes[tag_offset] = 0xee;
        std::fs::write(&path, &bytes).expect("corrupt entry");
        let corrupted = TraceStore::with_dir(Some(dir.clone()));
        let (_, m3) = corrupted.fetch(&spec::m88ksim(), &cfg);
        assert_eq!(m1, m3, "regeneration must reproduce the trace");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_keys_get_distinct_files() {
        let (store, dir) = temp_store("keys");
        let cfg = RunnerConfig::fast();
        let mut other = cfg;
        other.trace_seed += 1;
        store.fetch(&spec::ammp(), &cfg);
        store.fetch(&spec::ammp(), &other);
        let entries = std::fs::read_dir(&dir).expect("dir").count();
        assert_eq!(entries, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
