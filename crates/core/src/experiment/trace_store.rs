//! The shared trace store: once-per-key generation, copy-free in-process
//! sharing, chunk-granular prefix sharing, optional on-disk persistence, and
//! streamed (never-materialized) serving for replay-once consumers.
//!
//! Every experiment replays the same `(application, seed, lengths)` trace
//! under many cache configurations, and trace generation is the slowest
//! single stage of a cold sweep. The store therefore keeps one *full*
//! generated trace per `(application, seed, total length)` within a process
//! (concurrent callers block on the one generation; warm/measure splits are
//! copy-free views, so two runner configurations whose totals agree share one
//! buffer) and — when `RESCACHE_TRACE_DIR` names a directory — persists each
//! generated trace with the [`rescache_trace::codec`] so later processes of a
//! multi-app/multi-seed campaign replay from disk instead of regenerating.
//!
//! Two access patterns get two serving modes:
//!
//! * [`TraceStore::fetch`] **materializes** (and memoizes) the full trace —
//!   right for the static sweeps, whose memoized simulations replay the same
//!   records dozens of times per process.
//! * [`TraceStore::source`] serves a **pull-based [`TraceSource`]** without
//!   materializing when it can: a copy-free cursor if the trace is already
//!   resident, otherwise a chunk-by-chunk on-disk reader
//!   ([`rescache_trace::TraceFileSource`]), otherwise (directory configured
//!   but entry missing) a streaming generate-to-disk followed by on-disk
//!   replay. Only when no directory is configured does it fall back to the
//!   materialized path. This is what lets the dynamic-controller experiments
//!   run with a single chunk buffer resident.
//!
//! Persisted entries are keyed by *total* length and shared chunk-granularly
//! between overlapping requests: a request is served from a longer entry's
//! leading chunks when the profile is
//! [`length-invariant`](AppProfile::length_invariant) (generation is
//! prefix-stable), and two warm/measure splits of the same total always
//! share one entry. Disk entries are advisory, with typed recovery (all of
//! it exercised deterministically via the [`rescache_trace::IoPolicy`] fault
//! seam and accounted in [`StoreHealth`]):
//!
//! * a **missing** entry regenerates silently;
//! * a **transient** I/O error (see [`rescache_trace::is_transient`]) gets a
//!   bounded retry with backoff before falling back to regeneration — the
//!   entry is *not* quarantined, because nothing proves the file is bad;
//! * a **corrupt, truncated, mislabeled or wrong-version** entry is
//!   *quarantined* — renamed to a `.corrupt` sidecar — before regeneration,
//!   so repeated corruption is diagnosable on disk instead of silently
//!   churned;
//! * a **disk-full or unwritable** directory latches the whole store into
//!   in-memory-only degraded mode with a one-time warning (see
//!   [`SharedTier::degrade`]); generation proceeds, persistence stops.
//!
//! The memo maps, fault policy, health counters and cross-process entry
//! lock all live in the [`SharedTier`] the store wraps, so any number of
//! runners and threads share one coherent cache-and-recovery state.

use std::path::{Path, PathBuf};
use std::sync::PoisonError;

use rescache_trace::{
    codec, is_transient, AppProfile, Compression, InstrRecord, IoPolicy, Trace, TraceCursor,
    TraceFileSource, TraceFormat, TraceGenerator, TraceSource, TraceStream,
};

use crate::experiment::runner::RunnerConfig;
use crate::experiment::shared_tier::{LockOutcome, SharedTier, StoreHealth};

/// Key identifying one (warm, measure) trace request: application name,
/// profile fingerprint, seed, warm-up length, measured length, trace-format
/// version. The fingerprint covers the profile's full contents, so two
/// differing profiles that happen to share a name (possible via the
/// `AppProfile` builders) never alias; the format version keeps v1 and v2
/// bit streams apart. Simulation memo keys embed this type — the split
/// matters to a simulation even though the underlying records only depend
/// on the total.
pub(crate) type TraceKey = (&'static str, u64, u64, usize, usize, TraceFormat);

/// Key of one full generated trace in the store: application name, profile
/// fingerprint, seed, total length, trace-format version. Requests whose
/// totals agree share the entry and split it at fetch time; requests whose
/// format versions differ never share anything — the bit streams differ by
/// design, so cross-process sweeps must never mix them.
pub(crate) type StoreKey = (&'static str, u64, u64, usize, TraceFormat);

/// The store of generated traces (see the module documentation): a view
/// over the [`SharedTier`] that holds the actual maps, policy and health.
///
/// Clones share the tier, which is what lets the parallel sweeps fan out
/// over applications without regenerating per-worker state.
#[derive(Debug, Clone, Default)]
pub struct TraceStore {
    tier: SharedTier,
}

/// How a [`StoreSource`] produces its records (observable so tests and
/// benches can assert which path a run took).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreSourceKind {
    /// A copy-free cursor over a trace materialized in this process.
    Resident,
    /// A chunk-by-chunk decoder over a persisted entry; one chunk resident.
    Disk,
    /// A resumable generator stream; one chunk resident, records are
    /// produced on the fly.
    Generated,
}

/// A [`TraceSource`] served by [`TraceStore::source`]: one of the three
/// producers behind a single monomorphizable type. The generator variant is
/// boxed: a `TraceStream` carries the whole expansion state (~0.7 KB), and
/// one `StoreSource` exists per in-flight simulation, not per record.
#[derive(Debug)]
pub enum StoreSource {
    /// See [`StoreSourceKind::Resident`].
    Resident(TraceCursor),
    /// See [`StoreSourceKind::Disk`].
    Disk(TraceFileSource),
    /// See [`StoreSourceKind::Generated`].
    Generated(Box<TraceStream>),
}

impl StoreSource {
    /// Which producer is behind this source.
    pub fn kind(&self) -> StoreSourceKind {
        match self {
            StoreSource::Resident(_) => StoreSourceKind::Resident,
            StoreSource::Disk(_) => StoreSourceKind::Disk,
            StoreSource::Generated(_) => StoreSourceKind::Generated,
        }
    }

    /// The decode fault that interrupted an on-disk source, if any: a faulted
    /// source under-delivered, and the consuming simulation must be retried
    /// from another producer (the runner regenerates).
    pub fn fault(&self) -> Option<&codec::CodecError> {
        match self {
            StoreSource::Disk(d) => d.fault(),
            _ => None,
        }
    }
}

impl TraceSource for StoreSource {
    fn name(&self) -> &str {
        match self {
            StoreSource::Resident(s) => s.name(),
            StoreSource::Disk(s) => s.name(),
            StoreSource::Generated(s) => s.name(),
        }
    }

    fn format(&self) -> TraceFormat {
        match self {
            StoreSource::Resident(s) => s.format(),
            StoreSource::Disk(s) => s.format(),
            StoreSource::Generated(s) => s.format(),
        }
    }

    fn total_records(&self) -> usize {
        match self {
            StoreSource::Resident(s) => s.total_records(),
            StoreSource::Disk(s) => s.total_records(),
            StoreSource::Generated(s) => s.total_records(),
        }
    }

    fn next_chunk(&mut self) -> &[InstrRecord] {
        match self {
            StoreSource::Resident(s) => s.next_chunk(),
            StoreSource::Disk(s) => s.next_chunk(),
            StoreSource::Generated(s) => s.next_chunk(),
        }
    }

    fn position(&self) -> usize {
        match self {
            StoreSource::Resident(s) => s.position(),
            StoreSource::Disk(s) => s.position(),
            StoreSource::Generated(s) => s.position(),
        }
    }

    fn split_at(&mut self, at: usize) {
        match self {
            StoreSource::Resident(s) => s.split_at(at),
            StoreSource::Disk(s) => s.split_at(at),
            StoreSource::Generated(s) => s.split_at(at),
        }
    }

    fn skip(&mut self, n: usize) {
        match self {
            StoreSource::Resident(s) => s.skip(n),
            StoreSource::Disk(s) => s.skip(n),
            StoreSource::Generated(s) => s.skip(n),
        }
    }
}

impl TraceStore {
    /// Creates a store persisting to `RESCACHE_TRACE_DIR` if that names a
    /// directory (created on first write), in-memory only otherwise, with
    /// fault injection from `RESCACHE_FAULTS` if set.
    pub fn from_env() -> Self {
        Self::with_tier(SharedTier::from_env())
    }

    /// Creates a store with an explicit persistence directory (`None` =
    /// in-memory only) and no fault injection.
    pub fn with_dir(dir: Option<PathBuf>) -> Self {
        Self::with_tier(SharedTier::new(dir, IoPolicy::none()))
    }

    /// Creates a store over an explicit shared tier — how multiple runners
    /// (or server connections) share one set of memos, one fault policy and
    /// one health block.
    pub fn with_tier(tier: SharedTier) -> Self {
        Self { tier }
    }

    /// The shared tier backing this store.
    pub fn tier(&self) -> &SharedTier {
        &self.tier
    }

    /// A snapshot of the store's recovery counters.
    pub fn health(&self) -> StoreHealth {
        self.tier.health_snapshot()
    }

    /// The persistence directory, if any (reported even when degraded mode
    /// has stopped the store from using it).
    pub fn dir(&self) -> Option<&Path> {
        self.tier.dir()
    }

    /// The store key of an application under a runner configuration.
    pub(crate) fn key(app: &AppProfile, config: &RunnerConfig) -> TraceKey {
        (
            app.name,
            app.fingerprint(),
            config.trace_seed,
            config.warmup_instructions,
            config.measure_instructions,
            config.trace_format,
        )
    }

    /// The full-trace key of an application under a runner configuration.
    fn store_key(app: &AppProfile, config: &RunnerConfig) -> StoreKey {
        (
            app.name,
            app.fingerprint(),
            config.trace_seed,
            config.warmup_instructions + config.measure_instructions,
            config.trace_format,
        )
    }

    /// Number of full traces currently materialized in this process — the
    /// observable the streamed experiment paths are measured against ("no
    /// materialized full-length trace" means this stays at zero).
    pub fn resident_full_traces(&self) -> usize {
        self.tier.traces.initialized_count()
    }

    /// Returns the warm-up and measurement traces for an application,
    /// generating (or loading from disk) at most once per key.
    pub fn fetch(&self, app: &AppProfile, config: &RunnerConfig) -> (Trace, Trace) {
        self.fetch_full(app, config)
            .split_at(config.warmup_instructions)
    }

    /// Returns the full (warm + measure) trace for an application,
    /// materializing at most once per `(application, seed, total)`.
    fn fetch_full(&self, app: &AppProfile, config: &RunnerConfig) -> Trace {
        let key = Self::store_key(app, config);
        let slot = self.tier.traces.slot(key);
        if let Some(trace) = slot.get() {
            self.tier.health().note_hit();
            self.note_resident_use(&key);
            return trace.clone();
        }
        let mut ran = false;
        let trace = slot
            .get_or_init(|| {
                ran = true;
                self.load_or_generate(app, &key)
            })
            .clone();
        if !ran {
            // Neither an initialized slot nor our own generation: we blocked
            // on a sibling's in-flight initializer and shared its result.
            self.tier.health().note_coalesced();
        }
        self.note_resident_use(&key);
        trace
    }

    /// Stamps `key` as just-used in the resident-trace LRU, then evicts the
    /// least-recently-used resident traces until the tier's
    /// [`resident_cap`](SharedTier::resident_cap) holds. Called on every
    /// materialized serve, so a long-lived server replaying many distinct
    /// workloads keeps bounded memory instead of accreting every full trace
    /// it ever touched; evicted entries reload from disk (or regenerate)
    /// like any cold key. Lock ordering: the LRU mutex is taken first and
    /// the `traces` map mutex only inside it, never the reverse.
    fn note_resident_use(&self, key: &StoreKey) {
        let cap = self.tier.resident_cap();
        let mut lru = self
            .tier
            .trace_lru
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        lru.clock += 1;
        let stamp = lru.clock;
        lru.last_use.insert(*key, stamp);
        loop {
            // Victim scan: the initialized key (other than the one just
            // served) with the oldest use stamp. A key with no stamp sorts
            // oldest — it was resident before stamping began.
            let (resident, victim) = self.tier.traces.with_map(|map| {
                let mut resident = 0usize;
                let mut victim: Option<(StoreKey, u64)> = None;
                for (k, slot) in map.iter() {
                    if slot.get().is_none() {
                        continue;
                    }
                    resident += 1;
                    if k == key {
                        continue;
                    }
                    let at = lru.last_use.get(k).copied().unwrap_or(0);
                    if victim.is_none_or(|(_, best)| at < best) {
                        victim = Some((*k, at));
                    }
                }
                (resident, victim)
            });
            if resident <= cap {
                break;
            }
            let Some((victim_key, _)) = victim else {
                break;
            };
            self.tier.traces.remove(&victim_key);
            lru.last_use.remove(&victim_key);
            self.tier.health().note_eviction();
        }
        // Stamps for keys no longer resident (evicted above, or removed by
        // other paths) must not accrete either.
        let resident_keys: Vec<StoreKey> = self
            .tier
            .traces
            .with_map(|map| map.keys().copied().collect());
        if lru.last_use.len() > resident_keys.len() {
            let keep: std::collections::HashSet<StoreKey> = resident_keys.into_iter().collect();
            lru.last_use.retain(|k, _| keep.contains(k));
        }
    }

    /// Serves the full (warm + measure) record sequence as a pull-based
    /// source, preferring producers that keep at most one chunk resident
    /// (see the module documentation for the exact policy).
    pub fn source(&self, app: &AppProfile, config: &RunnerConfig) -> StoreSource {
        let key = Self::store_key(app, config);
        let total = key.3;

        // Already materialized in this process (exactly, or as a longer
        // prefix-stable trace): replaying the resident buffer is free.
        if let Some((served, full)) = self.resident_prefix(app, &key) {
            self.tier.health().note_hit();
            self.note_resident_use(&served);
            return StoreSource::Resident(full.cursor());
        }

        if self.tier.active_dir().is_some() {
            if let Some(source) = self.disk_source(app, &key) {
                self.tier.health().note_hit();
                return StoreSource::Disk(source);
            }
            // Cold key: persist a streaming-generated entry (once per
            // process — parallel sweeps block on the one writer, and the
            // cross-process entry lock keeps sibling *processes* off it too)
            // and replay it from disk. Nothing is ever fully resident.
            if self.ensure_persisted(app, &key) {
                if let Some(source) = self.disk_source(app, &key) {
                    return StoreSource::Disk(source);
                }
            }
            // The directory is unusable (degraded mode has latched, or the
            // freshly persisted entry immediately failed to read back):
            // generate on the fly rather than fail — still nothing
            // materialized.
            self.tier.health().note_miss();
            return StoreSource::Generated(Box::new(
                TraceGenerator::new(app.clone(), key.2)
                    .with_format(key.4)
                    .stream(total),
            ));
        }

        // In-memory-only store (by configuration or degraded): replay-heavy
        // consumers dominate here, so materialize once (memoized, shared)
        // and serve cursors.
        StoreSource::Resident(self.fetch_full(app, config).cursor())
    }

    /// A resident full trace covering `key` — exact, or a copy-free prefix
    /// view of a longer resident trace when the profile is prefix-stable.
    /// Returns the key of the entry actually serving the request (the longer
    /// entry's, on a prefix serve), so callers can stamp the right key in
    /// the resident LRU.
    fn resident_prefix(&self, app: &AppProfile, key: &StoreKey) -> Option<(StoreKey, Trace)> {
        self.tier.traces.with_map(|map| {
            if let Some(trace) = map.get(key).and_then(|slot| slot.get()) {
                return Some((*key, trace.clone()));
            }
            if !app.length_invariant() {
                return None;
            }
            let (name, fingerprint, seed, total, format) = *key;
            map.iter()
                .filter(|((n, f, s, t, v), _)| {
                    *n == name && *f == fingerprint && *s == seed && *t > total && *v == format
                })
                .filter_map(|(k, slot)| slot.get().map(|t| (*k, t)))
                .min_by_key(|(k, _)| k.3)
                .map(|(k, trace)| (k, trace.slice(0..total)))
        })
    }

    /// Opens a chunked on-disk source for `key`: the exact-total entry, or a
    /// prefix of a longer entry when the profile is prefix-stable. The
    /// directory scan for a longer candidate runs only when the exact entry
    /// is absent or unusable — the hot path is one `open`.
    fn disk_source(&self, app: &AppProfile, key: &StoreKey) -> Option<TraceFileSource> {
        let total = key.3;
        if let Some(source) = self.open_entry(app, &self.entry_path(key)?, total, total, key.4) {
            return Some(source);
        }
        if app.length_invariant() {
            if let Some((path, file_total)) = self.find_longer_entry(key) {
                return self.open_entry(app, &path, total, file_total, key.4);
            }
        }
        None
    }

    /// Opens one candidate entry serving `take` records, validating the
    /// header's trace-format version against the key's (a v1 file must
    /// never serve a v2 request, or vice versa — the mismatch surfaces as
    /// the codec's typed [`codec::CodecError::FormatMismatch`]) and the
    /// header's application name and record count against what the *file
    /// name* promises (`file_total`) — a header that disagrees marks a
    /// foreign, stale or hash-colliding file, which must be ignored, never
    /// prefix-served.
    fn open_entry(
        &self,
        app: &AppProfile,
        path: &Path,
        take: usize,
        file_total: usize,
        format: TraceFormat,
    ) -> Option<TraceFileSource> {
        let policy = self.tier.policy();
        let health = self.tier.health();
        // A transient open failure gets the bounded retry; anything typed is
        // decided immediately.
        let mut attempt = 1;
        let opened = loop {
            match TraceFileSource::open_expecting_with(path, Some(take), format, policy) {
                Err(codec::CodecError::Io(e))
                    if is_transient(&e) && attempt < IoPolicy::ATTEMPTS =>
                {
                    health.note_retry();
                    std::thread::sleep(IoPolicy::BACKOFF * attempt);
                    attempt += 1;
                }
                other => break other,
            }
        };
        match opened {
            Ok(source) if source.name() == app.name && source.file_records() == file_total => {
                Some(source)
            }
            Ok(source) => {
                // A header that disagrees with the file's own name marks a
                // foreign, stale or hash-colliding file: a content problem,
                // so it is quarantined like corruption.
                eprintln!(
                    "rescache: trace store entry {} is for {}/{} records, expected {}/{file_total}; quarantining",
                    path.display(),
                    source.name(),
                    source.file_records(),
                    app.name,
                );
                drop(source);
                self.quarantine_entry(path);
                None
            }
            Err(codec::CodecError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(codec::CodecError::Io(e)) => {
                // Retries exhausted or a persistent I/O error: the file may
                // be perfectly fine, so no quarantine — fall back to
                // regeneration for this request only.
                eprintln!(
                    "rescache: trace store entry {} unreadable ({e}); regenerating without it",
                    path.display()
                );
                None
            }
            Err(e) => {
                // Typed content errors (bad magic, wrong/unknown version,
                // bad name): provably not a servable entry.
                eprintln!(
                    "rescache: trace store entry {} unreadable ({e}); quarantining",
                    path.display()
                );
                self.quarantine_entry(path);
                None
            }
        }
    }

    /// Renames a provably-bad entry to its `.corrupt` sidecar (so repeated
    /// corruption is diagnosable on disk) and counts the quarantine. If even
    /// the rename fails, the entry is removed instead — the store must never
    /// keep re-reading a corrupt file. The sidecar name is outside the
    /// store's entry-name grammar, so scans and prefix sharing ignore it.
    fn quarantine_entry(&self, path: &Path) {
        let mut sidecar = path.as_os_str().to_os_string();
        sidecar.push(".corrupt");
        let sidecar = PathBuf::from(sidecar);
        let policy = self.tier.policy();
        let renamed = policy.retrying(
            || self.tier.health().note_retry(),
            || policy.rename(path, &sidecar),
        );
        match renamed {
            Ok(()) => self.tier.health().note_quarantine(),
            Err(rename_err) => {
                let removed = policy.retrying(
                    || self.tier.health().note_retry(),
                    || policy.remove_file(path),
                );
                match removed {
                    Ok(()) => self.tier.health().note_quarantine(),
                    Err(remove_err) => eprintln!(
                        "rescache: could not quarantine {} (rename: {rename_err}; remove: {remove_err}); leaving in place",
                        path.display()
                    ),
                }
            }
        }
    }

    /// Quarantines a faulted persisted entry and forgets that it was
    /// persisted, so the next [`TraceStore::source`] for its key re-persists
    /// a fresh entry instead of re-reading the corrupt one forever. When the
    /// fault was transient I/O (`quarantine = false`), the entry itself is
    /// left untouched — only the persist memo is cleared so the next request
    /// re-probes the disk.
    ///
    /// The faulted file may be the requesting key's exact entry *or* a
    /// longer shared entry, so the persist memo is cleared for both the
    /// requesting key and the key the file's own name claims.
    pub(crate) fn invalidate_disk_entry(
        &self,
        path: &Path,
        app: &AppProfile,
        config: &RunnerConfig,
        quarantine: bool,
    ) {
        if quarantine {
            self.quarantine_entry(path);
        }
        let (name, fingerprint, seed, _, format) = Self::store_key(app, config);
        self.tier.persists.remove(&Self::store_key(app, config));
        if let Some(file_total) = Self::entry_total_from_path(path, name, fingerprint, seed, format)
        {
            self.tier
                .persists
                .remove(&(name, fingerprint, seed, file_total, format));
        }
    }

    /// Parses the total-record count a store entry's file name claims, if
    /// the name matches the given (application, fingerprint, seed, format).
    fn entry_total_from_path(
        path: &Path,
        name: &str,
        fingerprint: u64,
        seed: u64,
        format: TraceFormat,
    ) -> Option<usize> {
        let file_name = path.file_name()?.to_str()?;
        let prefix = format!("{name}-{fingerprint:016x}-s{seed}-t");
        file_name
            .strip_prefix(&prefix)?
            .strip_suffix(Self::entry_suffix(format))?
            .parse()
            .ok()
    }

    /// Persists the keyed trace by draining a generator stream to disk (no
    /// materialization), once per process — and, via the cross-process entry
    /// lock, once per *store directory* when sibling processes race on the
    /// same cold key. Returns whether an entry exists.
    fn ensure_persisted(&self, app: &AppProfile, key: &StoreKey) -> bool {
        let Some(dir) = self.tier.active_dir().map(Path::to_path_buf) else {
            return false;
        };
        let slot = self.tier.persists.slot(*key);
        *slot.get_or_init(|| {
            let path = dir.join(Self::file_name(key));
            if self.dir_unusable(&dir) {
                return false;
            }
            let _guard = match self.tier.lock_entry(&path) {
                LockOutcome::Acquired(guard) => Some(guard),
                // Another process committed the entry while we waited.
                LockOutcome::EntryAppeared => return true,
                // Liveness over cross-process dedup: write without the lock
                // (atomic_save makes the duplicate harmless).
                LockOutcome::Unlocked => None,
            };
            self.tier.health().note_miss();
            let policy = self.tier.policy();
            let result = policy.retrying(
                || self.tier.health().note_retry(),
                || {
                    let mut stream = TraceGenerator::new(app.clone(), key.2)
                        .with_format(key.4)
                        .stream(key.3);
                    // The RESCACHE_STORE_COMPRESS override is read per save
                    // so long-lived stores honour a knob flipped mid-run.
                    codec::save_source_opts(&path, &mut stream, policy, Compression::from_env())
                },
            );
            match result {
                Ok(()) => true,
                Err(e) => {
                    self.note_persist_failure(&path, &e);
                    false
                }
            }
        })
    }

    /// Probes (and creates) the store directory. A failure here — after the
    /// transient retries — means the directory cannot be written at all
    /// (occupied by a file, permission-denied, read-only filesystem), which
    /// latches degraded mode directly. Returns whether the directory is
    /// unusable.
    fn dir_unusable(&self, dir: &Path) -> bool {
        let policy = self.tier.policy();
        let created = policy.retrying(
            || self.tier.health().note_retry(),
            || policy.create_dir_all(dir),
        );
        match created {
            Ok(()) => false,
            Err(e) => {
                self.tier
                    .degrade(&format!("store directory {} unusable: {e}", dir.display()));
                true
            }
        }
    }

    /// Classifies one persist failure: disk-full and unwritable-directory
    /// conditions latch store-wide degraded mode (with its one-time
    /// warning); anything else — e.g. exhausted transient retries — skips
    /// only this persist, with a per-site note.
    fn note_persist_failure(&self, path: &Path, e: &std::io::Error) {
        use std::io::ErrorKind;
        let fatal = rescache_trace::is_disk_full(e)
            || matches!(
                e.kind(),
                ErrorKind::PermissionDenied
                    | ErrorKind::NotADirectory
                    | ErrorKind::ReadOnlyFilesystem
            );
        if fatal {
            self.tier
                .degrade(&format!("could not persist to {}: {e}", path.display()));
        } else {
            self.tier.health().note_warning();
            eprintln!(
                "rescache: could not persist trace to {} ({e}); streaming in-memory",
                path.display()
            );
        }
    }

    /// Loads the keyed full trace from disk if possible, otherwise generates
    /// it (and persists the result, best-effort). Every landing is counted:
    /// a disk (or resident-prefix) serve is a hit, a clean cold generation a
    /// miss, a generation forced by a bad entry a regeneration.
    fn load_or_generate(&self, app: &AppProfile, key: &StoreKey) -> Trace {
        let (_, _, seed, total, format) = *key;
        let health = self.tier.health();

        // A longer prefix-stable trace already resident in this process
        // serves the request as a copy-free view — the same sharing
        // `source()` applies (the exact key can't be resident: this runs
        // inside its one-time initializer).
        if let Some((served, prefix)) = self.resident_prefix(app, key) {
            health.note_hit();
            self.note_resident_use(&served);
            return prefix;
        }

        // One disk-serving policy for both access modes: `disk_source`
        // locates and validates the entry (exact total, or a longer entry's
        // prefix when the profile is prefix-stable — chunk-granular, so
        // corruption beyond the prefix is never even read) and this path
        // merely materializes what it streams. A transient mid-read fault
        // retries the whole materialization (bounded); a content fault
        // quarantines the entry before falling back to regeneration.
        let mut forced_regeneration = false;
        let mut attempt = 1;
        while let Some(mut source) = self.disk_source(app, key) {
            let mut records: Vec<InstrRecord> = Vec::with_capacity(total);
            loop {
                let chunk = source.next_chunk();
                if chunk.is_empty() {
                    break;
                }
                records.extend_from_slice(chunk);
            }
            if source.fault().is_none() && records.len() == total {
                health.note_hit();
                return Trace::with_format(app.name, records, format);
            }
            let transient = matches!(
                source.fault(),
                Some(codec::CodecError::Io(e)) if is_transient(e)
            );
            if transient && attempt < IoPolicy::ATTEMPTS {
                health.note_retry();
                std::thread::sleep(IoPolicy::BACKOFF * attempt);
                attempt += 1;
                continue;
            }
            eprintln!(
                "rescache: trace store entry {} unreadable ({}); regenerating",
                source.path().display(),
                source
                    .fault()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "short stream".into()),
            );
            if !transient {
                // Provably bad content (corrupt, truncated, short): keep the
                // evidence as a `.corrupt` sidecar so the regeneration below
                // persists a fresh entry at the original path.
                let path = source.path().to_path_buf();
                drop(source);
                self.quarantine_entry(&path);
            }
            forced_regeneration = true;
            break;
        }

        if forced_regeneration {
            health.note_regeneration();
        } else {
            health.note_miss();
        }
        let full = TraceGenerator::new(app.clone(), seed)
            .with_format(format)
            .generate(total);
        if let Some(path) = self.entry_path(key) {
            if let Err(e) = self.persist(&path, &full) {
                self.note_persist_failure(&path, &e);
            }
        }
        full
    }

    /// Writes `full` to `path` (with bounded transient retry), creating the
    /// store directory on first use. Cross-process writers on the same cold
    /// entry are serialized by the advisory lock; if the entry appears while
    /// waiting, the persist is already done.
    fn persist(&self, path: &Path, full: &Trace) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if self.dir_unusable(parent) {
                // Degraded mode just latched (with its one-time warning);
                // the caller needs no second report.
                return Ok(());
            }
        }
        let _guard = match self.tier.lock_entry(path) {
            LockOutcome::Acquired(guard) => Some(guard),
            LockOutcome::EntryAppeared => return Ok(()),
            LockOutcome::Unlocked => None,
        };
        let policy = self.tier.policy();
        policy.retrying(
            || self.tier.health().note_retry(),
            || codec::save_trace_opts(path, full, policy, Compression::from_env()),
        )
    }

    /// The on-disk path of a key's exact-total entry, if a usable directory
    /// is configured (degraded mode reads as "no directory").
    fn entry_path(&self, key: &StoreKey) -> Option<PathBuf> {
        self.tier.active_dir().map(|d| d.join(Self::file_name(key)))
    }

    /// Finds the smallest persisted entry for the same (application,
    /// fingerprint, seed) whose total exceeds the key's — the candidate for
    /// prefix serving. Returns the path and the total its file name claims.
    fn find_longer_entry(&self, key: &StoreKey) -> Option<(PathBuf, usize)> {
        let dir = self.tier.active_dir()?;
        let (name, fingerprint, seed, total, format) = *key;
        let prefix = format!("{name}-{fingerprint:016x}-s{seed}-t");
        let suffix = Self::entry_suffix(format);
        let mut best: Option<(PathBuf, usize)> = None;
        for entry in self.tier.policy().read_dir(dir).ok()? {
            let Ok(entry) = entry else { continue };
            let file_name = entry.file_name();
            let Some(file_name) = file_name.to_str() else {
                continue;
            };
            let Some(rest) = file_name
                .strip_prefix(&prefix)
                .and_then(|r| r.strip_suffix(suffix))
            else {
                continue;
            };
            // The totals parse as bare integers, so a v2 file (whose
            // stripped remainder still carries the ".v2" tag under the v1
            // suffix) can never be picked up by a v1 scan, and vice versa.
            let Ok(entry_total) = rest.parse::<usize>() else {
                continue;
            };
            if entry_total > total && best.as_ref().is_none_or(|(_, t)| entry_total < *t) {
                best = Some((entry.path(), entry_total));
            }
        }
        best
    }

    /// File-name suffix segregating entries by trace-format version: v1
    /// keeps the historical bare extension (entries persisted before the
    /// version bump keep serving v1 requests), newer formats tag the
    /// version explicitly.
    fn entry_suffix(format: TraceFormat) -> &'static str {
        match format {
            TraceFormat::V1 => ".rctrace",
            TraceFormat::V2 => ".v2.rctrace",
            TraceFormat::V3 => ".v3.rctrace",
        }
    }

    /// File name of a store entry: application name plus every key component
    /// that distinguishes trace contents. Entries are keyed by *total*
    /// length — the warm/measure split is a property of the request, not of
    /// the records — so overlapping requests share files; the format version
    /// is part of the name, so v1 and v2 requests never share anything.
    fn file_name(key: &StoreKey) -> String {
        let (name, fingerprint, seed, total, format) = key;
        format!(
            "{name}-{fingerprint:016x}-s{seed}-t{total}{}",
            Self::entry_suffix(*format)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescache_trace::{spec, FaultInjector, FaultKind, IoOp, ScriptedFault};
    use std::sync::Arc;

    fn temp_store(tag: &str) -> (TraceStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!("rescache-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        (TraceStore::with_dir(Some(dir.clone())), dir)
    }

    fn entry_path(dir: &Path) -> PathBuf {
        let entries: Vec<_> = std::fs::read_dir(dir)
            .expect("store dir exists")
            .map(|e| e.expect("dir entry").path())
            .collect();
        assert_eq!(entries.len(), 1, "expected one store entry: {entries:?}");
        entries.into_iter().next().expect("one entry")
    }

    fn drain(source: &mut StoreSource) -> Vec<InstrRecord> {
        let mut records = Vec::new();
        loop {
            let chunk = source.next_chunk();
            if chunk.is_empty() {
                break;
            }
            records.extend_from_slice(chunk);
        }
        records
    }

    #[test]
    fn memoizes_in_process() {
        let store = TraceStore::with_dir(None);
        let cfg = RunnerConfig::fast();
        let (w1, m1) = store.fetch(&spec::ammp(), &cfg);
        let (w2, m2) = store.fetch(&spec::ammp(), &cfg);
        assert_eq!(w1.len(), cfg.warmup_instructions);
        assert_eq!(m1.len(), cfg.measure_instructions);
        // Same underlying buffer, not merely equal contents.
        assert_eq!(w1.records().as_ptr(), w2.records().as_ptr());
        assert_eq!(m1.records().as_ptr(), m2.records().as_ptr());
        assert_eq!(store.resident_full_traces(), 1);
    }

    #[test]
    fn same_total_different_split_shares_one_trace() {
        let store = TraceStore::with_dir(None);
        let cfg = RunnerConfig::fast();
        let mut shifted = cfg;
        shifted.warmup_instructions += 1_000;
        shifted.measure_instructions -= 1_000;
        let (w1, _) = store.fetch(&spec::gcc(), &cfg);
        let (w2, _) = store.fetch(&spec::gcc(), &shifted);
        assert_eq!(w2.len(), cfg.warmup_instructions + 1_000);
        // One materialization serves both splits.
        assert_eq!(store.resident_full_traces(), 1);
        assert_eq!(w1.records(), &w2.records()[..w1.len()]);
    }

    #[test]
    fn persists_and_reloads_across_store_instances() {
        let (store, dir) = temp_store("reload");
        let cfg = RunnerConfig::fast();
        let (_, m1) = store.fetch(&spec::m88ksim(), &cfg);
        let path = entry_path(&dir);

        // A fresh store (a "new process") must serve the identical trace
        // from disk; wrecking the first chunk's directory entry proves the
        // file is actually read (the fetch falls back to regeneration).
        // Flipping a *payload* byte would not do: a compressed chunk can
        // decode a flipped varint byte to different-but-valid records.
        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let (_, m2) = fresh.fetch(&spec::m88ksim(), &cfg);
        assert_eq!(m1, m2);

        let mut bytes = std::fs::read(&path).expect("read entry");
        let first_chunk = 9 + 4 + "m88ksim".len() + 8;
        bytes[first_chunk + 4..first_chunk + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).expect("corrupt entry");
        let corrupted = TraceStore::with_dir(Some(dir.clone()));
        let (_, m3) = corrupted.fetch(&spec::m88ksim(), &cfg);
        assert_eq!(m1, m3, "regeneration must reproduce the trace");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_keys_get_distinct_files() {
        let (store, dir) = temp_store("keys");
        let cfg = RunnerConfig::fast();
        let mut other = cfg;
        other.trace_seed += 1;
        store.fetch(&spec::ammp(), &cfg);
        store.fetch(&spec::ammp(), &other);
        let entries = std::fs::read_dir(&dir).expect("dir").count();
        assert_eq!(entries, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn longer_entry_serves_a_shorter_request_without_regeneration() {
        let (store, dir) = temp_store("prefix");
        let cfg = RunnerConfig::fast();
        // ammp is length-invariant (constant schedules): persist the long
        // trace, then ask a fresh store for a shorter one.
        assert!(spec::ammp().length_invariant());
        let (w_long, m_long) = store.fetch(&spec::ammp(), &cfg);
        let long_path = entry_path(&dir);

        let mut short = cfg;
        short.measure_instructions /= 2;
        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let (w_short, m_short) = fresh.fetch(&spec::ammp(), &short);
        assert_eq!(w_short, w_long);
        let long_records: Vec<_> = w_long
            .records()
            .iter()
            .chain(m_long.records())
            .copied()
            .collect();
        assert_eq!(
            m_short.records(),
            &long_records
                [short.warmup_instructions..short.warmup_instructions + short.measure_instructions]
        );
        // Served from the longer entry: no new file appeared.
        assert_eq!(std::fs::read_dir(&dir).expect("dir").count(), 1);

        // A corrupt chunk *inside* the requested prefix falls back to
        // regeneration (which writes the exact-total entry). Wreck the first
        // chunk's directory entry — v3 compressed container: magic(8) +
        // flags(1) + name_len(4) + name + count(8), then per chunk
        // [len u32][byte_len u32][payload].
        let mut bytes = std::fs::read(&long_path).expect("read entry");
        let first_chunk = 9 + 4 + "ammp".len() + 8;
        bytes[first_chunk + 4..first_chunk + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&long_path, &bytes).expect("corrupt entry");
        let corrupted = TraceStore::with_dir(Some(dir.clone()));
        let (w_regen, m_regen) = corrupted.fetch(&spec::ammp(), &short);
        assert_eq!(w_regen, w_short, "regeneration reproduces the prefix");
        assert_eq!(m_regen, m_short);
        assert_eq!(
            std::fs::read_dir(&dir).expect("dir").count(),
            2,
            "regeneration persisted the exact-total entry"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn length_varying_profiles_never_share_prefixes() {
        let (store, dir) = temp_store("noprefix");
        let cfg = RunnerConfig::fast();
        // gcc's multi-phase sequence schedules scale with the total: a
        // shorter request must regenerate, not reuse the longer entry.
        assert!(!spec::gcc().length_invariant());
        store.fetch(&spec::gcc(), &cfg);

        let mut short = cfg;
        short.measure_instructions /= 2;
        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let (_, m_short) = fresh.fetch(&spec::gcc(), &short);
        let expected = TraceGenerator::new(spec::gcc(), cfg.trace_seed)
            .generate(short.warmup_instructions + short.measure_instructions);
        assert_eq!(
            m_short.records(),
            &expected.records()[short.warmup_instructions..]
        );
        assert_eq!(
            std::fs::read_dir(&dir).expect("dir").count(),
            2,
            "the shorter gcc trace gets its own entry"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mislabeled_entry_is_ignored_not_prefix_served() {
        // A file whose header promises more records than its *name* claims
        // is foreign or stale: serving its prefix would silently diverge for
        // length-varying profiles. Both the materialized and the streamed
        // paths must regenerate instead.
        let (_, dir) = temp_store("mislabel");
        std::fs::create_dir_all(&dir).expect("create dir");
        let cfg = RunnerConfig::fast();
        let mut short = cfg;
        short.measure_instructions /= 2;
        let short_total = short.warmup_instructions + short.measure_instructions;
        // Masquerade a long trace as the short entry (gcc is NOT
        // length-invariant, so no honest sharing path exists).
        let short_name = TraceStore::file_name(&TraceStore::store_key(&spec::gcc(), &short));
        let long_trace = TraceGenerator::new(spec::gcc(), cfg.trace_seed)
            .generate(cfg.warmup_instructions + cfg.measure_instructions);
        codec::save_trace(&dir.join(&short_name), &long_trace).expect("plant mislabeled entry");

        let expected = TraceGenerator::new(spec::gcc(), cfg.trace_seed).generate(short_total);

        // Materialized path regenerates (and overwrites the bad entry).
        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let (w, m) = fresh.fetch(&spec::gcc(), &short);
        assert_eq!(
            w.records(),
            &expected.records()[..short.warmup_instructions]
        );
        assert_eq!(
            m.records(),
            &expected.records()[short.warmup_instructions..]
        );

        // Streamed path on a separate planted copy: must not serve the
        // mislabeled header either.
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("recreate dir");
        codec::save_trace(&dir.join(&short_name), &long_trace).expect("plant again");
        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let mut source = fresh.source(&spec::gcc(), &short);
        assert_eq!(drain(&mut source), expected.records());
        assert!(source.fault().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn source_prefers_disk_and_never_materializes_with_a_dir() {
        let (store, dir) = temp_store("source");
        let cfg = RunnerConfig::fast();
        let total = cfg.warmup_instructions + cfg.measure_instructions;
        let reference = TraceGenerator::new(spec::su2cor(), cfg.trace_seed).generate(total);

        // Cold key with a directory: generate-to-disk, then serve from disk.
        let mut source = store.source(&spec::su2cor(), &cfg);
        assert_eq!(source.kind(), StoreSourceKind::Disk);
        assert_eq!(source.total_records(), total);
        assert_eq!(drain(&mut source), reference.records());
        assert_eq!(store.resident_full_traces(), 0, "nothing materialized");
        assert_eq!(std::fs::read_dir(&dir).expect("dir").count(), 1);

        // Second source replays the persisted entry.
        let mut source = store.source(&spec::su2cor(), &cfg);
        assert_eq!(source.kind(), StoreSourceKind::Disk);
        assert_eq!(drain(&mut source), reference.records());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn source_serves_resident_traces_and_in_memory_stores() {
        let store = TraceStore::with_dir(None);
        let cfg = RunnerConfig::fast();
        let total = cfg.warmup_instructions + cfg.measure_instructions;

        // In-memory-only store: the source materializes once and replays.
        let mut source = store.source(&spec::ammp(), &cfg);
        assert_eq!(source.kind(), StoreSourceKind::Resident);
        assert_eq!(drain(&mut source).len(), total);
        assert_eq!(store.resident_full_traces(), 1);

        // A shorter request for a length-invariant profile is a copy-free
        // prefix view of the resident trace — still one materialization.
        let mut short = cfg;
        short.measure_instructions /= 2;
        let source = store.source(&spec::ammp(), &short);
        assert_eq!(source.kind(), StoreSourceKind::Resident);
        assert_eq!(
            source.total_records(),
            short.warmup_instructions + short.measure_instructions
        );
        assert_eq!(store.resident_full_traces(), 1);
    }

    #[test]
    fn format_versions_never_share_entries_on_disk_or_in_memory() {
        // The same (app, seed, lengths) under v1/v2/v3 is three different
        // on-disk entries: the store must keep separate files, separate
        // resident traces, and must never serve one format's entry to
        // another — even v2 and v3, whose *records* coincide in practice
        // (only the mix-draw quantization and the container differ).
        let (store, dir) = temp_store("formats");
        let cfg_v3 = RunnerConfig::fast();
        let cfg_v2 = RunnerConfig::fast().with_trace_format(TraceFormat::V2);
        let cfg_v1 = RunnerConfig::fast().with_trace_format(TraceFormat::V1);
        assert_eq!(cfg_v3.trace_format, TraceFormat::V3);

        let (_, m_v3) = store.fetch(&spec::ammp(), &cfg_v3);
        let (_, m_v2) = store.fetch(&spec::ammp(), &cfg_v2);
        let (_, m_v1) = store.fetch(&spec::ammp(), &cfg_v1);
        assert_ne!(
            m_v2.records(),
            m_v1.records(),
            "v1 and v2 must differ in dependency bits"
        );
        assert_eq!(
            m_v3.records(),
            m_v2.records(),
            "v2 and v3 records must coincide on real traces"
        );
        assert_eq!(store.resident_full_traces(), 3, "one entry per format");
        let mut names: Vec<_> = std::fs::read_dir(&dir)
            .expect("store dir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .collect();
        names.sort();
        assert_eq!(names.len(), 3, "one file per format: {names:?}");
        assert!(
            names[0].ends_with(".rctrace")
                && !names[0].ends_with(".v2.rctrace")
                && !names[0].ends_with(".v3.rctrace")
        );
        assert!(names[1].ends_with(".v2.rctrace"));
        assert!(names[2].ends_with(".v3.rctrace"));

        // A fresh store ("new process") reloads each format from its own
        // entry without touching the others or regenerating.
        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let (_, r_v1) = fresh.fetch(&spec::ammp(), &cfg_v1);
        let (_, r_v2) = fresh.fetch(&spec::ammp(), &cfg_v2);
        let (_, r_v3) = fresh.fetch(&spec::ammp(), &cfg_v3);
        assert_eq!(r_v1, m_v1);
        assert_eq!(r_v2, m_v2);
        assert_eq!(r_v3, m_v3);
        assert_eq!(std::fs::read_dir(&dir).expect("dir").count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_format_at_the_right_path_is_rejected_and_regenerated() {
        // Plant a v1-format file at a v3 entry's exact path (a stale or
        // foreign store): the typed FormatMismatch must reject it — for both
        // the materialized and the streamed access modes — and the request
        // regenerates the honest v3 bits.
        let (_, dir) = temp_store("mixed");
        std::fs::create_dir_all(&dir).expect("create dir");
        let cfg = RunnerConfig::fast();
        let total = cfg.warmup_instructions + cfg.measure_instructions;
        let key_v3 = TraceStore::store_key(&spec::m88ksim(), &cfg);
        let v1_trace = TraceGenerator::new(spec::m88ksim(), cfg.trace_seed)
            .with_format(TraceFormat::V1)
            .generate(total);
        codec::save_trace(&dir.join(TraceStore::file_name(&key_v3)), &v1_trace)
            .expect("plant v1 bits at the v3 path");

        let expected = TraceGenerator::new(spec::m88ksim(), cfg.trace_seed).generate(total);
        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let (w, m) = fresh.fetch(&spec::m88ksim(), &cfg);
        assert_eq!(w.records(), &expected.records()[..cfg.warmup_instructions]);
        assert_eq!(m.records(), &expected.records()[cfg.warmup_instructions..]);

        // Streamed path on a separately planted copy.
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("recreate dir");
        codec::save_trace(&dir.join(TraceStore::file_name(&key_v3)), &v1_trace)
            .expect("plant again");
        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let mut source = fresh.source(&spec::m88ksim(), &cfg);
        assert_eq!(source.format(), TraceFormat::V3);
        assert_eq!(drain(&mut source), expected.records());
        assert!(source.fault().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_version_header_falls_back_to_regeneration() {
        // An entry whose magic names a future format version must be
        // ignored (typed UnsupportedVersion, never a panic) and the fetch
        // regenerated — mirroring the corrupt-prefix fallback.
        let (store, dir) = temp_store("unknownver");
        let cfg = RunnerConfig::fast();
        let (w1, m1) = store.fetch(&spec::ammp(), &cfg);
        let path = entry_path(&dir);
        let mut bytes = std::fs::read(&path).expect("read entry");
        bytes[7] = b'9';
        std::fs::write(&path, &bytes).expect("future-version entry");

        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let (w2, m2) = fresh.fetch(&spec::ammp(), &cfg);
        assert_eq!(w1, w2, "regeneration must reproduce the trace");
        assert_eq!(m1, m2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefix_sharing_stays_within_one_format() {
        // A longer v1 entry must not prefix-serve a shorter v2 request even
        // for a length-invariant profile; the honest v2 prefix source is a
        // fresh v2 entry.
        let (_, dir) = temp_store("prefixfmt");
        let cfg_long_v1 = RunnerConfig::fast().with_trace_format(TraceFormat::V1);
        let store = TraceStore::with_dir(Some(dir.clone()));
        assert!(spec::ammp().length_invariant());
        store.fetch(&spec::ammp(), &cfg_long_v1);
        assert_eq!(std::fs::read_dir(&dir).expect("dir").count(), 1);

        let mut cfg_short_v2 = RunnerConfig::fast();
        cfg_short_v2.measure_instructions /= 2;
        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let (_, m_short) = fresh.fetch(&spec::ammp(), &cfg_short_v2);
        let expected = TraceGenerator::new(spec::ammp(), cfg_short_v2.trace_seed)
            .generate(cfg_short_v2.warmup_instructions + cfg_short_v2.measure_instructions);
        assert_eq!(
            m_short.records(),
            &expected.records()[cfg_short_v2.warmup_instructions..]
        );
        assert_eq!(
            std::fs::read_dir(&dir).expect("dir").count(),
            2,
            "the v2 request wrote its own entry instead of reusing v1's"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn source_survives_an_unwritable_directory() {
        let dir =
            std::env::temp_dir().join(format!("rescache-store-not-a-dir-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&dir).ok();
        // Make the "directory" a file so create_dir_all fails.
        std::fs::write(&dir, b"occupied").expect("occupy path");
        let store = TraceStore::with_dir(Some(dir.clone()));
        let cfg = RunnerConfig::fast();
        let total = cfg.warmup_instructions + cfg.measure_instructions;
        let mut source = store.source(&spec::vpr(), &cfg);
        assert_eq!(source.kind(), StoreSourceKind::Generated);
        assert_eq!(drain(&mut source).len(), total);
        assert_eq!(store.resident_full_traces(), 0);

        // The unusable directory latched degraded mode with its one-time
        // warning; later requests go straight to in-memory operation (no
        // repeated probing, no repeated warnings) and correctness holds.
        let health = store.health();
        assert!(health.degraded, "{health:?}");
        assert_eq!(health.warnings, 1, "{health:?}");
        let mut source = store.source(&spec::ammp(), &cfg);
        assert_eq!(source.kind(), StoreSourceKind::Resident);
        assert_eq!(drain(&mut source).len(), total);
        assert_eq!(store.health().warnings, 1, "warning fires exactly once");
        std::fs::remove_file(&dir).ok();
    }

    /// Builds a store whose tier routes all I/O through `injector`.
    fn injected_store(tag: &str, injector: Arc<FaultInjector>) -> (TraceStore, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("rescache-store-fault-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let tier = SharedTier::new(Some(dir.clone()), IoPolicy::with_injector(injector));
        (TraceStore::with_tier(tier), dir)
    }

    #[test]
    fn disk_full_mid_run_degrades_to_memory_with_one_warning() {
        // The first persist write hits an injected disk-full error mid-run:
        // the store must latch in-memory-only mode (one warning), keep
        // serving bit-exact records, and stop touching the directory.
        let injector = Arc::new(FaultInjector::scripted([ScriptedFault {
            op: IoOp::Write,
            kind: FaultKind::DiskFull,
        }]));
        let (store, dir) = injected_store("full", injector);
        let cfg = RunnerConfig::fast();
        let total = cfg.warmup_instructions + cfg.measure_instructions;
        let reference = TraceGenerator::new(spec::vpr(), cfg.trace_seed).generate(total);

        let mut source = store.source(&spec::vpr(), &cfg);
        assert_eq!(source.kind(), StoreSourceKind::Generated);
        assert_eq!(drain(&mut source), reference.records());

        let health = store.health();
        assert!(health.degraded, "disk-full must latch degraded: {health:?}");
        assert_eq!(health.warnings, 1, "{health:?}");

        // Degraded mode: later sources are resident (in-memory fallback),
        // no new warnings, and the directory holds no committed entries
        // (the aborted temp file was cleaned up).
        let mut source = store.source(&spec::vpr(), &cfg);
        assert_eq!(source.kind(), StoreSourceKind::Resident);
        assert_eq!(drain(&mut source), reference.records());
        assert_eq!(store.health().warnings, 1, "warning fires exactly once");
        assert_eq!(std::fs::read_dir(&dir).expect("dir").count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_transient_write_faults_skip_one_persist_without_degrading() {
        // Every attempt of the first persist fails with a transient error:
        // the bounded retry runs out, that one persist is skipped with a
        // per-site warning, but the store stays on disk — a different key
        // persists fine afterwards.
        let fault = ScriptedFault {
            op: IoOp::Write,
            kind: FaultKind::Transient,
        };
        let injector = Arc::new(FaultInjector::scripted(
            [fault; IoPolicy::ATTEMPTS as usize],
        ));
        let (store, dir) = injected_store("transient", injector.clone());
        let cfg = RunnerConfig::fast();
        let total = cfg.warmup_instructions + cfg.measure_instructions;

        let mut source = store.source(&spec::vpr(), &cfg);
        assert_eq!(source.kind(), StoreSourceKind::Generated);
        assert_eq!(drain(&mut source).len(), total);
        assert_eq!(injector.pending_script(), 0, "all three attempts faulted");

        let health = store.health();
        assert!(
            !health.degraded,
            "transient faults must not latch: {health:?}"
        );
        assert_eq!(health.warnings, 1, "{health:?}");
        assert!(health.retries >= 2, "{health:?}");

        // The directory is still live: the next key persists and serves
        // from disk.
        let mut source = store.source(&spec::ammp(), &cfg);
        assert_eq!(source.kind(), StoreSourceKind::Disk);
        assert_eq!(drain(&mut source).len(), total);
        assert_eq!(std::fs::read_dir(&dir).expect("dir").count(), 1);
        assert!(!store.health().degraded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_are_quarantined_to_a_sidecar_and_counted() {
        let (store, dir) = temp_store("quarantine");
        let cfg = RunnerConfig::fast();
        let (w1, m1) = store.fetch(&spec::gcc(), &cfg);
        let path = entry_path(&dir);
        let mut bytes = std::fs::read(&path).expect("read entry");
        let len = bytes.len();
        // Truncate mid-record: a typed `Truncated` error, provably corrupt
        // (a random bit-flip could land in an address field and decode as a
        // different-but-valid record, which no reader can detect).
        bytes.truncate(len - 5);
        std::fs::write(&path, &bytes).expect("truncate entry");

        // A fresh store ("new process") trips on the corruption, moves the
        // entry aside as a `.corrupt` sidecar, counts the quarantine and
        // the forced regeneration, and re-persists a healthy entry.
        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let (w2, m2) = fresh.fetch(&spec::gcc(), &cfg);
        assert_eq!(
            (w1, m1),
            (w2.clone(), m2),
            "regeneration reproduces the trace"
        );

        let health = fresh.health();
        assert_eq!(health.quarantines, 1, "{health:?}");
        assert_eq!(health.regenerations, 1, "{health:?}");
        assert!(!health.degraded, "corruption is not a degradation");

        let mut names: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .collect();
        names.sort();
        assert_eq!(names.len(), 2, "sidecar + fresh entry: {names:?}");
        assert!(names[0].ends_with(".rctrace"), "{names:?}");
        assert!(names[1].ends_with(".corrupt"), "{names:?}");

        // The sidecar sits outside the entry-name grammar: another fresh
        // store ignores it and serves the healthy entry with no further
        // quarantines.
        let again = TraceStore::with_dir(Some(dir.clone()));
        let (w3, _) = again.fetch(&spec::gcc(), &cfg);
        assert_eq!(w3, w2);
        assert_eq!(again.health().quarantines, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn raw_override_entries_serve_without_regeneration() {
        // `RESCACHE_STORE_COMPRESS=raw` writes uncompressed v3 entries. The
        // reader self-describes from the flags byte, so a store must serve a
        // raw entry exactly as it serves a compressed one — no quarantine,
        // no regeneration. Rewrite the entry with `Compression::Raw`
        // directly rather than through the env knob: the knob is plain
        // parsing (covered in the codec crate), while cross-format serving
        // is the store-level property, and process-global env mutation would
        // race the other store tests.
        let (store, dir) = temp_store("raw-override");
        let cfg = RunnerConfig::fast();
        let (w1, m1) = store.fetch(&spec::vortex(), &cfg);
        let path = entry_path(&dir);
        let compressed_len = std::fs::metadata(&path).expect("entry").len();

        let full = codec::load_trace(&path).expect("load compressed entry");
        codec::save_trace_opts(&path, &full, &IoPolicy::none(), Compression::Raw)
            .expect("re-save raw");
        let bytes = std::fs::read(&path).expect("read raw entry");
        assert_eq!(&bytes[..8], b"RCTRACE3");
        assert_eq!(bytes[8], 0, "raw entries carry a zero flags byte");
        assert!(
            bytes.len() as u64 > 2 * compressed_len,
            "delta compression must at least halve the entry: raw {} vs compressed {}",
            bytes.len(),
            compressed_len
        );

        let fresh = TraceStore::with_dir(Some(dir.clone()));
        let (w2, m2) = fresh.fetch(&spec::vortex(), &cfg);
        assert_eq!((w1, m1), (w2, m2), "raw entry serves identical records");
        let health = fresh.health();
        assert_eq!(health.quarantines, 0, "{health:?}");
        assert_eq!(health.regenerations, 0, "{health:?}");
        assert_eq!(
            std::fs::read_dir(&dir).expect("dir").count(),
            1,
            "served from the raw entry, nothing rewritten"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resident_cap_evicts_least_recently_used_and_counts() {
        // Regression: the resident full-trace map used to grow without
        // bound — harmless in batch sweeps, a memory leak in a long-lived
        // server replaying many distinct workloads. With a cap of 2, a third
        // distinct trace must evict exactly the least-recently-used one.
        let store =
            TraceStore::with_tier(SharedTier::new(None, IoPolicy::none()).with_resident_cap(2));
        let cfg = RunnerConfig::fast();

        let (w_ammp, _) = store.fetch(&spec::ammp(), &cfg);
        store.fetch(&spec::gcc(), &cfg);
        // Touch ammp again so gcc becomes the LRU.
        let (w_ammp_again, _) = store.fetch(&spec::ammp(), &cfg);
        assert_eq!(
            w_ammp.records().as_ptr(),
            w_ammp_again.records().as_ptr(),
            "the touch is a copy-free hit"
        );
        assert_eq!(store.resident_full_traces(), 2);
        assert_eq!(store.health().evictions, 0, "under the cap, no evictions");

        store.fetch(&spec::m88ksim(), &cfg);
        let health = store.health();
        assert_eq!(store.resident_full_traces(), 2, "the cap holds");
        assert_eq!(health.evictions, 1, "exactly one eviction");
        // gcc (the LRU) went; ammp survived. Refetching ammp is still a
        // shared hit, refetching gcc is a fresh miss.
        let hits_before = health.hits;
        let misses_before = health.misses;
        let (w_ammp_final, _) = store.fetch(&spec::ammp(), &cfg);
        assert_eq!(w_ammp.records().as_ptr(), w_ammp_final.records().as_ptr());
        assert_eq!(store.health().hits, hits_before + 1);
        store.fetch(&spec::gcc(), &cfg);
        assert_eq!(
            store.health().misses,
            misses_before + 1,
            "the evicted trace regenerates like a cold key"
        );
        // The recency map must not leak either: it never tracks more keys
        // than the map holds slots for.
        let stamped = store
            .tier()
            .trace_lru
            .lock()
            .expect("lru lock")
            .last_use
            .len();
        let slots = store.tier().traces.with_map(|m| m.len());
        assert!(stamped <= slots, "{stamped} stamps for {slots} slots");
    }

    #[test]
    fn evicted_trace_reloads_from_disk_not_regeneration() {
        // With persistence configured, eviction only drops the in-memory
        // copy: the next fetch re-reads the disk entry (a hit), keeping the
        // cap a memory bound rather than a throughput cliff.
        let dir = std::env::temp_dir().join(format!("rescache-store-cap-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = TraceStore::with_tier(
            SharedTier::new(Some(dir.clone()), IoPolicy::none()).with_resident_cap(1),
        );
        let cfg = RunnerConfig::fast();

        let (w1, m1) = store.fetch(&spec::ammp(), &cfg);
        store.fetch(&spec::gcc(), &cfg);
        assert_eq!(store.resident_full_traces(), 1, "cap 1 holds");
        assert_eq!(store.health().evictions, 1);

        let regen_before = store.health().regenerations;
        let misses_before = store.health().misses;
        let (w2, m2) = store.fetch(&spec::ammp(), &cfg);
        assert_eq!((w1, m1), (w2, m2), "disk round-trip is bit-identical");
        let health = store.health();
        assert_eq!(health.regenerations, regen_before, "no regeneration");
        assert_eq!(health.misses, misses_before, "no cold generation either");
        std::fs::remove_dir_all(&dir).ok();
    }
}
