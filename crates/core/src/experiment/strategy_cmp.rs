//! Drivers for Figures 7 and 8: static versus dynamic resizing of one L1
//! cache on the two processor configurations.

use rescache_trace::AppProfile;

use crate::error::CoreError;
use crate::experiment::parallel::parallel_map;
use crate::experiment::runner::Runner;
use crate::org::Organization;
use crate::system::{ResizableCacheSide, SystemConfig};

/// One application's bars in Figure 7 (d-cache) or Figure 8 (i-cache) for
/// one processor configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyRow {
    /// Application name.
    pub app: String,
    /// `true` when the processor is the in-order engine with a blocking
    /// d-cache, `false` for the out-of-order engine with a non-blocking
    /// d-cache.
    pub in_order: bool,
    /// Cache-size reduction of the best static configuration, in percent.
    pub static_size_reduction: f64,
    /// Cache-size reduction of the best dynamic configuration, in percent.
    pub dynamic_size_reduction: f64,
    /// Energy-delay reduction of the best static configuration, in percent.
    pub static_edp_reduction: f64,
    /// Energy-delay reduction of the best dynamic configuration, in percent.
    pub dynamic_edp_reduction: f64,
    /// Resize operations performed by the chosen dynamic configuration.
    pub dynamic_resizes: u64,
}

/// Figures 7 and 8: for every application, compares the best static and the
/// best dynamic (miss-ratio based) selective-sets resizing of `side`, on the
/// given processor configuration.
///
/// The paper uses 32K 2-way L1 caches and the selective-sets organization for
/// this comparison (both organizations behave similarly here); `organization`
/// is a parameter so the ablation benches can vary it.
///
/// # Errors
///
/// Returns an error if the organization cannot be applied to the cache.
pub fn static_vs_dynamic(
    runner: &Runner,
    apps: &[AppProfile],
    system: &SystemConfig,
    organization: Organization,
    side: ResizableCacheSide,
) -> Result<Vec<StrategyRow>, CoreError> {
    let in_order = matches!(system.cpu.engine, rescache_cpu::EngineKind::InOrderBlocking);
    let rows: Vec<Result<StrategyRow, CoreError>> = parallel_map(apps, |app| {
        let static_outcome = runner.static_best(app, system, organization, side)?;
        // The dynamic controller's size-bound is profiled offline, like the
        // paper's: offer the static best size, half of it, a quarter, and the
        // smallest offered size (the `1` floor). The runner snaps each bound
        // to an offered capacity and collapses duplicates, so fractions that
        // fall between (or below) offered sizes never waste a simulation —
        // and the candidate sweep itself streams from the trace store.
        let full = side.config_of(&system.hierarchy).size_bytes;
        let static_best_bytes = static_outcome
            .best
            .point
            .map(|p| p.bytes(side.config_of(&system.hierarchy).block_bytes))
            .unwrap_or(full);
        let bounds = [
            static_best_bytes,
            static_best_bytes / 2,
            static_best_bytes / 4,
            1,
        ];
        let dynamic_outcome =
            runner.dynamic_best_with_size_bounds(app, system, organization, side, &bounds)?;
        let dynamic_resizes = match side {
            ResizableCacheSide::Data => dynamic_outcome.best.measurement.l1d_resizes,
            ResizableCacheSide::Instruction => dynamic_outcome.best.measurement.l1i_resizes,
        };
        Ok(StrategyRow {
            app: app.name.to_string(),
            in_order,
            static_size_reduction: static_outcome.best.size_reduction_percent,
            dynamic_size_reduction: dynamic_outcome.best.size_reduction_percent,
            static_edp_reduction: static_outcome.best.edp_reduction_percent,
            dynamic_edp_reduction: dynamic_outcome.best.edp_reduction_percent,
            dynamic_resizes,
        })
    });
    rows.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::report::mean;
    use crate::experiment::runner::RunnerConfig;
    use rescache_trace::spec;

    fn tiny_runner() -> Runner {
        Runner::new(RunnerConfig {
            warmup_instructions: 4_000,
            measure_instructions: 16_000,
            trace_seed: 7,
            dynamic_interval: 1_024,
            ..RunnerConfig::fast()
        })
    }

    #[test]
    fn produces_one_row_per_app() {
        let runner = tiny_runner();
        let apps = vec![spec::ammp(), spec::su2cor()];
        let rows = static_vs_dynamic(
            &runner,
            &apps,
            &SystemConfig::in_order(),
            Organization::SelectiveSets,
            ResizableCacheSide::Data,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.in_order));
        assert!(rows
            .iter()
            .all(|r| r.static_size_reduction >= 0.0 && r.dynamic_size_reduction >= -1.0));
    }

    #[test]
    fn strategies_both_find_savings_on_small_working_sets() {
        let runner = tiny_runner();
        let apps = vec![spec::ammp(), spec::m88ksim()];
        let rows = static_vs_dynamic(
            &runner,
            &apps,
            &SystemConfig::base(),
            Organization::SelectiveSets,
            ResizableCacheSide::Data,
        )
        .unwrap();
        let static_mean = mean(
            &rows
                .iter()
                .map(|r| r.static_edp_reduction)
                .collect::<Vec<_>>(),
        );
        let dynamic_mean = mean(
            &rows
                .iter()
                .map(|r| r.dynamic_edp_reduction)
                .collect::<Vec<_>>(),
        );
        assert!(
            static_mean > 2.0,
            "static should save energy-delay, got {static_mean:.1}%"
        );
        assert!(
            dynamic_mean > 0.0,
            "dynamic should save energy-delay, got {dynamic_mean:.1}%"
        );
    }
}
