//! The shared experiment runner: simulates one application under one cache
//! setup and reports energy, delay and cache-size statistics.

use rescache_cache::{HierarchySnapshot, MemoryHierarchy};
use rescache_cpu::{LatencyStats, SimHook, SimResult, Simulator};
use rescache_energy::{EnergyBreakdown, EnergyDelay, EnergyModel, Objective, ResizingTagOverhead};
use rescache_trace::{
    is_transient, AppProfile, IoPolicy, Trace, TraceFormat, TraceGenerator, TraceSource,
};

use crate::error::CoreError;
use crate::experiment::parallel::parallel_map;
use crate::experiment::trace_store::{StoreSource, TraceKey, TraceStore};
use crate::org::{CachePoint, ConfigSpace, Organization};
use crate::strategy::{DynamicController, DynamicParams, ResizeDecision};
use crate::system::{ResizableCacheSide, SystemConfig};

/// Simulation lengths and seeds used by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Instructions executed to warm the caches before measurement begins.
    pub warmup_instructions: usize,
    /// Instructions executed in the measured region.
    pub measure_instructions: usize,
    /// Seed for trace generation (the same seed is reused for every cache
    /// configuration so all configurations see an identical trace).
    pub trace_seed: u64,
    /// Interval length (in cache accesses) of the dynamic resizing
    /// controller.
    pub dynamic_interval: u64,
    /// Trace-format version the generated bit streams use. Part of every
    /// trace and simulation memo key, and of the trace store's on-disk
    /// entry names, so runs under different versions never share records.
    pub trace_format: TraceFormat,
    /// The scalar objective the best-configuration searches minimise and the
    /// dynamic controller steers by. EDP (the default) reproduces the paper;
    /// the latency-first objectives re-rank the same measurements and fold
    /// delayed hits into the controller's interval signal. Not part of the
    /// simulation memo key: only *static* runs are memoized, and like the
    /// tag-bit overheads the objective never changes what a static
    /// simulation measures — only which measurement a search keeps.
    pub objective: Objective,
}

impl RunnerConfig {
    /// The evaluation-quality configuration used by the benches.
    pub fn paper() -> Self {
        Self {
            warmup_instructions: 200_000,
            measure_instructions: 2_400_000,
            trace_seed: 42,
            dynamic_interval: 8_192,
            trace_format: TraceFormat::default(),
            objective: Objective::Edp,
        }
    }

    /// A reduced configuration for unit and integration tests.
    pub fn fast() -> Self {
        Self {
            warmup_instructions: 10_000,
            measure_instructions: 30_000,
            trace_seed: 42,
            dynamic_interval: 256,
            trace_format: TraceFormat::default(),
            objective: Objective::Edp,
        }
    }

    /// [`RunnerConfig::paper`] with overrides from the environment variables
    /// `RESCACHE_WARMUP`, `RESCACHE_MEASURE`, `RESCACHE_SEED`,
    /// `RESCACHE_INTERVAL`, `RESCACHE_TRACE_FORMAT` (`v1`/`v2`) and
    /// `RESCACHE_OBJECTIVE` (`edp`/`ed2p`/`delay`; all optional), so bench
    /// runs can be scaled — and pinned to a trace format or objective —
    /// without recompiling.
    pub fn from_env() -> Self {
        let mut cfg = Self::paper();
        if let Some(v) = read_env("RESCACHE_WARMUP") {
            cfg.warmup_instructions = v as usize;
        }
        if let Some(v) = read_env("RESCACHE_MEASURE") {
            cfg.measure_instructions = v as usize;
        }
        if let Some(v) = read_env("RESCACHE_SEED") {
            cfg.trace_seed = v;
        }
        if let Some(v) = read_env("RESCACHE_INTERVAL") {
            cfg.dynamic_interval = v.max(1);
        }
        if let Ok(v) = std::env::var("RESCACHE_TRACE_FORMAT") {
            match TraceFormat::from_tag(&v) {
                Some(format) => cfg.trace_format = format,
                None => eprintln!(
                    "rescache: unknown RESCACHE_TRACE_FORMAT {v:?}; using {}",
                    cfg.trace_format
                ),
            }
        }
        cfg.objective = Objective::from_env();
        cfg
    }

    /// Returns this configuration with the given trace-format version.
    pub fn with_trace_format(mut self, format: TraceFormat) -> Self {
        self.trace_format = format;
        self
    }

    /// Returns this configuration with the given search objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self::paper()
    }
}

fn read_env(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Everything measured from one simulation of the measured region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Execution time in cycles.
    pub cycles: u64,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Total processor energy in picojoules.
    pub energy_pj: f64,
    /// Per-structure energy breakdown.
    pub breakdown: EnergyBreakdown,
    /// Access-weighted mean enabled d-cache capacity in bytes.
    pub l1d_mean_bytes: f64,
    /// Access-weighted mean enabled i-cache capacity in bytes.
    pub l1i_mean_bytes: f64,
    /// Measured d-cache miss ratio.
    pub l1d_miss_ratio: f64,
    /// Measured i-cache miss ratio.
    pub l1i_miss_ratio: f64,
    /// d-cache resize operations during the measured region.
    pub l1d_resizes: u64,
    /// i-cache resize operations during the measured region.
    pub l1i_resizes: u64,
    /// Latency-domain breakdown of the measured region's data accesses
    /// (delayed hits, primary misses and their cycle costs).
    pub latency: LatencyStats,
}

impl Measurement {
    /// The energy-delay point of this measurement.
    pub fn energy_delay(&self) -> EnergyDelay {
        EnergyDelay::new(self.energy_pj, self.cycles)
    }

    /// This measurement's score under `objective` (smaller is better).
    pub fn score(&self, objective: Objective) -> f64 {
        objective.score(&self.energy_delay())
    }
}

/// The cache setup of one run: static points, tag-bit overheads, and an
/// optional dynamic controller on one side.
#[derive(Debug, Clone, Default)]
pub struct RunSetup {
    /// Statically applied d-cache configuration (None = full size).
    pub d_static: Option<CachePoint>,
    /// Statically applied i-cache configuration (None = full size).
    pub i_static: Option<CachePoint>,
    /// Extra tag bits charged on every d-cache access (selective-sets/hybrid).
    pub d_tag_bits: u32,
    /// Extra tag bits charged on every i-cache access (selective-sets/hybrid).
    pub i_tag_bits: u32,
    /// Dynamic controller: which side it drives, over which configuration
    /// space, with which parameters.
    pub dynamic: Option<(ResizableCacheSide, ConfigSpace, DynamicParams)>,
}

/// Summary of the best configuration found for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestSummary {
    /// The chosen static point (None for dynamic resizing).
    pub point: Option<CachePoint>,
    /// The measurement of the chosen configuration.
    pub measurement: Measurement,
    /// Reduction of the processor energy-delay product versus the
    /// non-resizable base, in percent.
    pub edp_reduction_percent: f64,
    /// Reduction of the processor energy versus the base, in percent.
    pub energy_reduction_percent: f64,
    /// Reduction of the resized cache's mean size versus full size, in
    /// percent.
    pub size_reduction_percent: f64,
    /// Execution-time increase versus the base, in percent.
    pub slowdown_percent: f64,
}

/// Outcome of a static-resizing search for one application.
#[derive(Debug, Clone)]
pub struct StaticOutcome {
    /// Application name.
    pub app: String,
    /// The non-resizable baseline.
    pub base: Measurement,
    /// Every offered point and its measurement, largest point first.
    pub evaluated: Vec<(CachePoint, Measurement)>,
    /// The minimum-objective choice (EDP under the default objective).
    pub best: BestSummary,
}

/// Outcome of a dynamic-resizing parameter sweep for one application.
#[derive(Debug, Clone)]
pub struct DynamicOutcome {
    /// Application name.
    pub app: String,
    /// The non-resizable baseline.
    pub base: Measurement,
    /// Every candidate parameter set and its measurement.
    pub candidates: Vec<(DynamicParams, Measurement)>,
    /// The minimum-objective choice (EDP under the default objective).
    pub best: BestSummary,
}

/// Normalized enabled geometry of one L1 in a static run: (sets, ways).
/// "No static point" normalizes to the full geometry, so a baseline and an
/// explicitly-applied full-size point share a key.
type GeometryKey = (u64, u32);

/// Key identifying one static simulation: the trace, the system, and the
/// enabled (d-cache, i-cache) geometries. Resizing-tag-bit overheads are
/// deliberately absent — they only change the energy model, not the
/// simulation — so sweep arms that differ only in tag accounting share one
/// simulation.
pub(crate) type SimKey = (TraceKey, SystemConfig, GeometryKey, GeometryKey);

/// A finished static simulation: the engine result plus the post-run
/// statistics snapshot (a few hundred bytes; the tag arrays are dropped).
#[derive(Debug, Clone)]
pub(crate) struct StaticSim {
    pub(crate) result: SimResult,
    pub(crate) snapshot: HierarchySnapshot,
}

/// Turns (application, system, cache setup) into measurements, handling
/// trace generation, cache warm-up and energy evaluation identically for
/// every experiment.
///
/// The runner memoizes two pure, deterministic computations, keyed by their
/// full inputs:
///
/// * **traces** — `(profile, seed, lengths)` always expands to the same
///   record stream, and every configuration of an experiment replays it, so
///   it is generated once and shared copy-free through the [`TraceStore`]
///   (which also persists traces across processes when `RESCACHE_TRACE_DIR`
///   is set);
/// * **static simulations** — a static run is a pure function of
///   `(trace, system, enabled geometry)`; the baseline, the full-size point
///   every organization offers, and sweep arms that differ only in
///   resizing-tag-bit accounting all share one simulation, and only the
///   (cheap) energy pricing is re-applied per arm.
///
/// Clones of a runner share both caches — they live in the store's
/// [`SharedTier`](crate::experiment::SharedTier) — which is what lets the
/// parallel sweeps fan out over applications without regenerating per-worker
/// state.
#[derive(Debug, Clone)]
pub struct Runner {
    config: RunnerConfig,
    store: TraceStore,
}

impl Runner {
    /// Creates a runner with empty trace and simulation caches. The trace
    /// store persists to `RESCACHE_TRACE_DIR` when that is set and injects
    /// faults under `RESCACHE_FAULTS` (see [`TraceStore::from_env`]).
    pub fn new(config: RunnerConfig) -> Self {
        Self::with_store(config, TraceStore::from_env())
    }

    /// Creates a runner over an explicit trace store (tests and tools that
    /// must control persistence; [`Runner::new`] reads the environment).
    /// The store's shared tier also carries the simulation memo, so two
    /// runners over one store share simulations too.
    pub fn with_store(config: RunnerConfig, store: TraceStore) -> Self {
        Self { config, store }
    }

    /// Returns a runner sharing this runner's generated traces (and health
    /// accounting) but with an empty simulation cache (used by benchmarks
    /// that measure sweep throughput and must not carry simulations across
    /// repetitions).
    pub fn with_fresh_simulations(&self) -> Self {
        Self {
            config: self.config,
            store: TraceStore::with_tier(self.store.tier().with_fresh_sims()),
        }
    }

    /// The runner configuration.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// The trace store backing this runner.
    pub fn trace_store(&self) -> &TraceStore {
        &self.store
    }

    /// Returns the warm-up and measurement traces for an application.
    ///
    /// The underlying full trace is generated (or loaded from the store's
    /// persistence directory) at most once per `(application, seed, lengths)`
    /// and split copy-free; concurrent callers for the same application
    /// block on the one generation instead of duplicating it, while
    /// different applications generate in parallel.
    pub fn trace(&self, app: &AppProfile) -> (Trace, Trace) {
        self.store.fetch(app, &self.config)
    }

    /// Runs one simulation: warm-up, statistics reset, measured region.
    pub fn run(
        &self,
        warm: &Trace,
        measure: &Trace,
        system: &SystemConfig,
        setup: &RunSetup,
    ) -> Measurement {
        let model = EnergyModel::with_overhead(
            &system.hierarchy,
            ResizingTagOverhead {
                l1i_bits: setup.i_tag_bits,
                l1d_bits: setup.d_tag_bits,
            },
        );
        let sim = match setup.dynamic.clone() {
            None => Self::simulate_static(warm, measure, system, setup.d_static, setup.i_static),
            Some((side, space, params)) => {
                let mut hierarchy = Self::static_hierarchy(system, setup.d_static, setup.i_static);
                let mut controller = DynamicController::new(side, space, params)
                    .expect("dynamic parameters validated by the caller")
                    .with_objective(self.config.objective);
                let sim = Simulator::new(system.cpu);
                sim.run_with_hook(warm, &mut hierarchy, &mut controller);
                hierarchy.reset_stats();
                let result = sim.run_with_hook(measure, &mut hierarchy, &mut controller);
                StaticSim {
                    snapshot: hierarchy.snapshot(),
                    result,
                }
            }
        };
        Self::build_measurement(&model, &sim.result, &sim.snapshot, system)
    }

    /// Builds a hierarchy with the given static points applied (flush
    /// writebacks noted, as a real pre-run resize would).
    fn static_hierarchy(
        system: &SystemConfig,
        d_static: Option<CachePoint>,
        i_static: Option<CachePoint>,
    ) -> MemoryHierarchy {
        let mut hierarchy = MemoryHierarchy::new(system.hierarchy)
            .expect("base hierarchy configurations are valid");
        if let Some(point) = d_static {
            let effect = point.apply(hierarchy.l1d_mut());
            hierarchy.note_resize_flush_writebacks(effect.dirty_writebacks);
        }
        if let Some(point) = i_static {
            let effect = point.apply(hierarchy.l1i_mut());
            hierarchy.note_resize_flush_writebacks(effect.dirty_writebacks);
        }
        hierarchy
    }

    /// The one static simulation sequence (hierarchy build, point apply,
    /// warm-up, statistics reset, measured region) shared by the uncached
    /// [`Runner::run`] path and the memoized [`Runner::run_static`] path —
    /// keeping them one function is what guarantees the memo key's "static
    /// run is a pure function of (trace, system, geometry)" invariant.
    fn simulate_static(
        warm: &Trace,
        measure: &Trace,
        system: &SystemConfig,
        d_static: Option<CachePoint>,
        i_static: Option<CachePoint>,
    ) -> StaticSim {
        let mut hierarchy = Self::static_hierarchy(system, d_static, i_static);
        let sim = Simulator::new(system.cpu);
        sim.run(warm, &mut hierarchy);
        hierarchy.reset_stats();
        let result = sim.run(measure, &mut hierarchy);
        StaticSim {
            snapshot: hierarchy.snapshot(),
            result,
        }
    }

    /// Runs `simulate` over a store-served source, recovering if the store
    /// entry faults or under-delivers mid-run — a corrupt or
    /// concurrently-replaced persisted trace must degrade to regeneration,
    /// never to a silently short simulation. A *transient* I/O fault retries
    /// the store (bounded, with backoff — the entry itself is presumed
    /// fine); a content fault quarantines the entry and reruns from a fresh
    /// generator stream (wrapped in the same [`StoreSource`] type) so later
    /// runs re-persist a fresh entry. `simulate` must build any per-run hook
    /// state itself: it is invoked afresh on every attempt.
    fn with_streamed_source(
        &self,
        app: &AppProfile,
        mut simulate: impl FnMut(&mut StoreSource) -> StaticSim,
    ) -> StaticSim {
        let cfg = &self.config;
        let health = self.store.tier().health();
        let mut attempt = 1;
        loop {
            let mut source = self.store.source(app, cfg);
            let sim = simulate(&mut source);
            if source.fault().is_none()
                && sim.result.instructions == cfg.measure_instructions as u64
            {
                return sim;
            }
            let transient = matches!(
                source.fault(),
                Some(rescache_trace::CodecError::Io(e)) if is_transient(e)
            );
            if transient && attempt < IoPolicy::ATTEMPTS {
                health.note_retry();
                std::thread::sleep(IoPolicy::BACKOFF * attempt);
                attempt += 1;
                continue;
            }
            eprintln!(
                "rescache: store-served run of {} under-delivered ({}); regenerating",
                app.name,
                source
                    .fault()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "short stream".into()),
            );
            if let StoreSource::Disk(file) = &source {
                self.store
                    .invalidate_disk_entry(file.path(), app, cfg, !transient);
            }
            health.note_regeneration();
            let total = cfg.warmup_instructions + cfg.measure_instructions;
            let mut retry = StoreSource::Generated(Box::new(
                TraceGenerator::new(app.clone(), cfg.trace_seed)
                    .with_format(cfg.trace_format)
                    .stream(total),
            ));
            return simulate(&mut retry);
        }
    }

    /// The static experiment sequence over one pull-based source —
    /// bit-identical to [`Runner::simulate_static`] over pre-split traces of
    /// the same records (asserted by `tests/dynamic_streaming_equivalence.rs`)
    /// and equally free of per-instruction hook dispatch, but with only one
    /// chunk buffer resident when the source streams.
    fn simulate_static_source<S: TraceSource>(
        &self,
        source: &mut S,
        system: &SystemConfig,
        d_static: Option<CachePoint>,
        i_static: Option<CachePoint>,
    ) -> StaticSim {
        let mut hierarchy = Self::static_hierarchy(system, d_static, i_static);
        let sim = Simulator::new(system.cpu);
        let result = sim.run_warm_measure(
            source,
            self.config.warmup_instructions,
            self.config.measure_instructions,
            &mut hierarchy,
        );
        StaticSim {
            snapshot: hierarchy.snapshot(),
            result,
        }
    }

    /// The hooked experiment sequence over one pull-based source: how a
    /// dynamic controller rides a streamed run (hook state carries across
    /// the warm/measure boundary, as in the materialized path).
    fn simulate_hooked_source<S: TraceSource>(
        &self,
        source: &mut S,
        system: &SystemConfig,
        d_static: Option<CachePoint>,
        i_static: Option<CachePoint>,
        hook: &mut dyn SimHook,
    ) -> StaticSim {
        let mut hierarchy = Self::static_hierarchy(system, d_static, i_static);
        let sim = Simulator::new(system.cpu);
        let result = sim.run_warm_measure_with_hook(
            source,
            self.config.warmup_instructions,
            self.config.measure_instructions,
            &mut hierarchy,
            hook,
        );
        StaticSim {
            snapshot: hierarchy.snapshot(),
            result,
        }
    }

    /// Prices a finished simulation under `model` and assembles the
    /// [`Measurement`] the experiments consume.
    fn build_measurement(
        model: &EnergyModel,
        result: &SimResult,
        snapshot: &HierarchySnapshot,
        system: &SystemConfig,
    ) -> Measurement {
        let breakdown = model.breakdown_snapshot(result, snapshot);
        let block_d = system.hierarchy.l1d.block_bytes;
        let block_i = system.hierarchy.l1i.block_bytes;
        Measurement {
            cycles: result.cycles,
            ipc: result.ipc(),
            energy_pj: breakdown.total_pj(),
            breakdown,
            l1d_mean_bytes: snapshot.l1d.mean_enabled_bytes(block_d),
            l1i_mean_bytes: snapshot.l1i.mean_enabled_bytes(block_i),
            l1d_miss_ratio: snapshot.l1d.miss_ratio(),
            l1i_miss_ratio: snapshot.l1i.miss_ratio(),
            l1d_resizes: snapshot.l1d.resizes,
            l1i_resizes: snapshot.l1i.resizes,
            latency: result.latency,
        }
    }

    /// Runs (or reuses) the static simulation of `app` on `system` with the
    /// given L1 points applied, and prices it with the given resizing-tag-bit
    /// overheads.
    ///
    /// Static runs are pure functions of `(trace, system, geometry)`, so the
    /// simulation is memoized: the baseline (`None`/`None`), the full-size
    /// point every organization's space offers, and arms differing only in
    /// tag-bit accounting all resolve to one simulation. Concurrent callers
    /// for the same geometry block on the one simulation; different
    /// geometries simulate in parallel.
    pub fn run_static(
        &self,
        app: &AppProfile,
        system: &SystemConfig,
        d_static: Option<CachePoint>,
        i_static: Option<CachePoint>,
        d_tag_bits: u32,
        i_tag_bits: u32,
    ) -> Measurement {
        self.run_static_impl(
            app, system, d_static, i_static, d_tag_bits, i_tag_bits, false,
        )
    }

    /// [`Runner::run_static`] with a choice of how a memo *miss* obtains its
    /// records: `streamed = false` materializes the shared trace (right for
    /// static sweeps, which replay it for every geometry), `streamed = true`
    /// pulls a store source (right when the caller — the dynamic experiments
    /// — wants nothing fully resident). Both initializers are bit-identical,
    /// so the memoized result is the same whichever call populates it.
    #[allow(clippy::too_many_arguments)]
    fn run_static_impl(
        &self,
        app: &AppProfile,
        system: &SystemConfig,
        d_static: Option<CachePoint>,
        i_static: Option<CachePoint>,
        d_tag_bits: u32,
        i_tag_bits: u32,
        streamed: bool,
    ) -> Measurement {
        let normalize = |cfg: rescache_cache::CacheConfig, point: Option<CachePoint>| match point {
            Some(p) => (p.sets, p.ways),
            None => (cfg.num_sets(), cfg.associativity),
        };
        let key: SimKey = (
            self.trace_key(app),
            *system,
            normalize(system.hierarchy.l1d, d_static),
            normalize(system.hierarchy.l1i, i_static),
        );
        let tier = self.store.tier();
        let slot = tier.sims.slot(key);
        let warm_hit = slot.get().is_some();
        if warm_hit {
            tier.health().note_hit();
        }
        let mut ran = false;
        let sim = slot.get_or_init(|| {
            ran = true;
            tier.health().note_miss();
            if streamed {
                self.with_streamed_source(app, |source| {
                    self.simulate_static_source(source, system, d_static, i_static)
                })
            } else {
                let (warm, measure) = self.trace(app);
                Self::simulate_static(&warm, &measure, system, d_static, i_static)
            }
        });
        if !warm_hit && !ran {
            // The slot was cold when we looked, yet our initializer never
            // ran: we blocked on a sibling's in-flight simulation and shared
            // its result — the coalescing the sweep service's dedup
            // guarantee is asserted on.
            tier.health().note_coalesced();
        }
        let model = EnergyModel::with_overhead(
            &system.hierarchy,
            ResizingTagOverhead {
                l1i_bits: i_tag_bits,
                l1d_bits: d_tag_bits,
            },
        );
        Self::build_measurement(&model, &sim.result, &sim.snapshot, system)
    }

    /// Runs one simulation of `setup` with the records pulled from the trace
    /// store as a stream: the streamed twin of [`Runner::run`], and the path
    /// every dynamic-controller experiment takes.
    ///
    /// The warm and measured regions come from **one** store-served source —
    /// a resident cursor when the trace is already materialized in this
    /// process, a chunk-by-chunk on-disk reader when the store persists to a
    /// directory (nothing fully resident; the measure region's stream
    /// continues straight out of the warm prefix's chunks), or a resumable
    /// generator otherwise. Results are bit-identical to the materialized
    /// path (asserted by `tests/dynamic_streaming_equivalence.rs`). A static
    /// setup (no controller) delegates to the memoized [`Runner::run_static`]
    /// with a streaming initializer.
    pub fn run_dynamic(
        &self,
        app: &AppProfile,
        system: &SystemConfig,
        setup: &RunSetup,
    ) -> Measurement {
        self.run_dynamic_observed(app, system, setup, None)
    }

    /// [`Runner::run_dynamic`] with an optional decision sink: every resize
    /// the controller performs is streamed into `sink` as a
    /// [`ResizeDecision`] while the simulation runs — the hook the sweep
    /// service's `dynamic` verb forwards interval decisions through.
    ///
    /// If a store fault forces a retry, the retried attempt streams into the
    /// same sink from a *fresh* controller (dynamic runs are not memoized;
    /// the attempt that completes is the one whose decisions are
    /// authoritative, and it always re-anchors from the full-size point).
    /// Observation never perturbs the measurement: the returned
    /// [`Measurement`] is bit-identical with or without a sink.
    pub fn run_dynamic_observed(
        &self,
        app: &AppProfile,
        system: &SystemConfig,
        setup: &RunSetup,
        sink: Option<&std::sync::mpsc::Sender<ResizeDecision>>,
    ) -> Measurement {
        let Some((side, space, params)) = setup.dynamic.clone() else {
            return self.run_static_impl(
                app,
                system,
                setup.d_static,
                setup.i_static,
                setup.d_tag_bits,
                setup.i_tag_bits,
                true,
            );
        };
        let model = EnergyModel::with_overhead(
            &system.hierarchy,
            ResizingTagOverhead {
                l1i_bits: setup.i_tag_bits,
                l1d_bits: setup.d_tag_bits,
            },
        );
        let sim = self.with_streamed_source(app, |source| {
            // A fresh controller per attempt: a retried run must not see the
            // aborted attempt's interval state.
            let mut controller = DynamicController::new(side, space.clone(), params)
                .expect("dynamic parameters validated by the caller")
                .with_objective(self.config.objective);
            if let Some(sink) = sink {
                controller = controller.with_decision_sink(sink.clone());
            }
            self.simulate_hooked_source(
                source,
                system,
                setup.d_static,
                setup.i_static,
                &mut controller,
            )
        });
        Self::build_measurement(&model, &sim.result, &sim.snapshot, system)
    }

    /// The trace-store key of an application under this runner's config.
    fn trace_key(&self, app: &AppProfile) -> TraceKey {
        TraceStore::key(app, &self.config)
    }

    /// Runs the non-resizable baseline (full-size caches, no tag overhead).
    pub fn baseline(&self, warm: &Trace, measure: &Trace, system: &SystemConfig) -> Measurement {
        self.run(warm, measure, system, &RunSetup::default())
    }

    fn summarise(
        &self,
        base: &Measurement,
        point: Option<CachePoint>,
        measurement: Measurement,
        side: ResizableCacheSide,
        system: &SystemConfig,
    ) -> BestSummary {
        let base_ed = base.energy_delay();
        let ed = measurement.energy_delay();
        let full_bytes = side.config_of(&system.hierarchy).size_bytes as f64;
        let mean_bytes = match side {
            ResizableCacheSide::Data => measurement.l1d_mean_bytes,
            ResizableCacheSide::Instruction => measurement.l1i_mean_bytes,
        };
        BestSummary {
            point,
            measurement,
            edp_reduction_percent: ed.reduction_vs(&base_ed),
            energy_reduction_percent: ed.energy_reduction_vs(&base_ed),
            size_reduction_percent: (1.0 - mean_bytes / full_bytes) * 100.0,
            slowdown_percent: ed.slowdown_vs(&base_ed),
        }
    }

    /// Static resizing: evaluates every configuration the organization
    /// offers for `side` and keeps the one with the lowest processor
    /// energy-delay product (the paper's profiling-based static strategy).
    ///
    /// # Errors
    ///
    /// Returns an error if the organization is not applicable to the cache
    /// (e.g. selective-ways on a direct-mapped cache).
    pub fn static_best(
        &self,
        app: &AppProfile,
        system: &SystemConfig,
        organization: Organization,
        side: ResizableCacheSide,
    ) -> Result<StaticOutcome, CoreError> {
        let cache_cfg = side.config_of(&system.hierarchy);
        let space = ConfigSpace::enumerate(cache_cfg, organization)?;
        let tag_bits = if organization.needs_resizing_tag_bits() {
            cache_cfg.resizing_tag_bits()
        } else {
            0
        };

        let base = self.run_static(app, system, None, None, 0, 0);

        // Every point replays the same shared trace on an independent
        // hierarchy, so the static search fans out over the available cores
        // (the outer per-application loops of the figure drivers compose with
        // this: the work-stealing pool is per `parallel_map` call).
        let evaluated: Vec<(CachePoint, Measurement)> = parallel_map(space.points(), |point| {
            let measurement = match side {
                ResizableCacheSide::Data => {
                    self.run_static(app, system, Some(*point), None, tag_bits, 0)
                }
                ResizableCacheSide::Instruction => {
                    self.run_static(app, system, None, Some(*point), 0, tag_bits)
                }
            };
            (*point, measurement)
        });

        let objective = self.config.objective;
        let (best_point, best_measurement) = evaluated
            .iter()
            .min_by(|a, b| {
                a.1.score(objective)
                    .partial_cmp(&b.1.score(objective))
                    .expect("objective scores are finite")
            })
            .copied()
            .expect("config spaces offer at least two points");

        let best = self.summarise(&base, Some(best_point), best_measurement, side, system);
        Ok(StaticOutcome {
            app: app.name.to_string(),
            base,
            evaluated,
            best,
        })
    }

    /// Dynamic resizing: sweeps the profiled parameter candidates of the
    /// miss-ratio controller and keeps the best energy-delay product.
    ///
    /// The size-bound candidates default to an eighth, a quarter and half of
    /// the full capacity; use [`Runner::dynamic_best_with_size_bounds`] to
    /// supply bounds derived from a static profiling pass (as the
    /// strategy-comparison experiments do).
    ///
    /// # Errors
    ///
    /// Returns an error if the organization is not applicable to the cache.
    pub fn dynamic_best(
        &self,
        app: &AppProfile,
        system: &SystemConfig,
        organization: Organization,
        side: ResizableCacheSide,
    ) -> Result<DynamicOutcome, CoreError> {
        let full = side.config_of(&system.hierarchy).size_bytes;
        self.dynamic_best_with_size_bounds(
            app,
            system,
            organization,
            side,
            &[full / 8, full / 4, full / 2],
        )
    }

    /// Dynamic resizing with explicit size-bound candidates (see
    /// [`Runner::dynamic_best`]).
    ///
    /// The whole sweep is streamed: the baseline (on a memo miss) and every
    /// candidate pull their records from the trace store as chunked sources,
    /// so a store with a persistence directory runs the sweep with no
    /// materialized full-length trace — one chunk buffer per in-flight
    /// simulation.
    ///
    /// # Errors
    ///
    /// Returns an error if the organization is not applicable to the cache.
    pub fn dynamic_best_with_size_bounds(
        &self,
        app: &AppProfile,
        system: &SystemConfig,
        organization: Organization,
        side: ResizableCacheSide,
        size_bounds: &[u64],
    ) -> Result<DynamicOutcome, CoreError> {
        let cache_cfg = side.config_of(&system.hierarchy);
        let space = ConfigSpace::enumerate(cache_cfg, organization)?;
        let tag_bits = if organization.needs_resizing_tag_bits() {
            cache_cfg.resizing_tag_bits()
        } else {
            0
        };

        // The baseline also seeds the store: on a cold key with a
        // persistence directory this generates the entry straight to disk,
        // so the parallel candidate sweep below replays it chunk by chunk.
        let base = self.run_static_impl(app, system, None, None, 0, 0, true);
        let base_miss_ratio = match side {
            ResizableCacheSide::Data => base.l1d_miss_ratio,
            ResizableCacheSide::Instruction => base.l1i_miss_ratio,
        };

        // Candidates over the requested bounds, snapped to offered
        // capacities (unreachable floors would waste or break simulations).
        let params = DynamicParams::candidates_for_space(
            self.config.dynamic_interval,
            base_miss_ratio,
            &space,
            size_bounds,
        );
        // Parameter candidates are independent simulations over the shared
        // trace; sweep them in parallel like the static points.
        let candidates: Vec<(DynamicParams, Measurement)> = parallel_map(&params, |p| {
            let mut setup = RunSetup {
                dynamic: Some((side, space.clone(), *p)),
                ..RunSetup::default()
            };
            match side {
                ResizableCacheSide::Data => setup.d_tag_bits = tag_bits,
                ResizableCacheSide::Instruction => setup.i_tag_bits = tag_bits,
            }
            (*p, self.run_dynamic(app, system, &setup))
        });

        let objective = self.config.objective;
        let (_, best_measurement) = candidates
            .iter()
            .min_by(|a, b| {
                a.1.score(objective)
                    .partial_cmp(&b.1.score(objective))
                    .expect("objective scores are finite")
            })
            .copied()
            .expect("at least one dynamic candidate");

        let best = self.summarise(&base, None, best_measurement, side, system);
        Ok(DynamicOutcome {
            app: app.name.to_string(),
            base,
            candidates,
            best,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescache_trace::spec;

    fn runner() -> Runner {
        Runner::new(RunnerConfig::fast())
    }

    #[test]
    fn runner_config_sources() {
        assert_eq!(RunnerConfig::default(), RunnerConfig::paper());
        assert!(
            RunnerConfig::fast().measure_instructions < RunnerConfig::paper().measure_instructions
        );
        // from_env falls back to the paper configuration when unset.
        let cfg = RunnerConfig::from_env();
        assert!(cfg.measure_instructions > 0);
    }

    #[test]
    fn trace_split_lengths() {
        let r = runner();
        let (warm, measure) = r.trace(&spec::ammp());
        assert_eq!(warm.len(), r.config().warmup_instructions);
        assert_eq!(measure.len(), r.config().measure_instructions);
    }

    #[test]
    fn baseline_measurement_is_sane() {
        let r = runner();
        let (warm, measure) = r.trace(&spec::m88ksim());
        let m = r.baseline(&warm, &measure, &SystemConfig::base());
        assert!(m.cycles > 0);
        assert!(m.energy_pj > 0.0);
        assert_eq!(m.l1d_mean_bytes, 32.0 * 1024.0);
        assert_eq!(m.l1i_mean_bytes, 32.0 * 1024.0);
        assert_eq!(m.l1d_resizes, 0);
    }

    #[test]
    fn static_point_reduces_dcache_energy_for_small_working_sets() {
        let r = runner();
        let (warm, measure) = r.trace(&spec::ammp());
        let system = SystemConfig::base();
        let base = r.baseline(&warm, &measure, &system);
        let setup = RunSetup {
            d_static: Some(CachePoint { sets: 64, ways: 2 }), // 4 KiB
            d_tag_bits: 4,
            ..RunSetup::default()
        };
        let small = r.run(&warm, &measure, &system, &setup);
        assert!(small.breakdown.l1d_pj < base.breakdown.l1d_pj * 0.5);
        assert!(small.l1d_mean_bytes < 5.0 * 1024.0);
        // ammp's working set fits in 4K, so the slowdown must be small.
        let slowdown = small.cycles as f64 / base.cycles as f64;
        assert!(slowdown < 1.06, "slowdown {slowdown}");
    }

    #[test]
    fn static_best_finds_a_saving_for_ammp() {
        let r = runner();
        let outcome = r
            .static_best(
                &spec::ammp(),
                &SystemConfig::base(),
                Organization::SelectiveSets,
                ResizableCacheSide::Data,
            )
            .unwrap();
        assert_eq!(outcome.evaluated.len(), 5); // 32/16/8/4/2 KiB at 2-way
        assert!(
            outcome.best.edp_reduction_percent > 3.0,
            "ammp should benefit from d-cache downsizing, got {:.2}%",
            outcome.best.edp_reduction_percent
        );
        assert!(outcome.best.size_reduction_percent > 50.0);
        assert!(outcome.best.point.is_some());
    }

    #[test]
    fn static_best_declines_to_downsize_swim() {
        let r = runner();
        let outcome = r
            .static_best(
                &spec::swim(),
                &SystemConfig::base(),
                Organization::SelectiveSets,
                ResizableCacheSide::Data,
            )
            .unwrap();
        // swim's working set exceeds the cache: the best point stays at (or
        // near) the full size and the EDP reduction is small.
        assert!(
            outcome.best.size_reduction_percent < 55.0,
            "swim should not shrink aggressively, got {:.1}%",
            outcome.best.size_reduction_percent
        );
    }

    #[test]
    fn dynamic_best_runs_and_reports_resizes() {
        let r = runner();
        let outcome = r
            .dynamic_best(
                &spec::su2cor(),
                &SystemConfig::in_order(),
                Organization::SelectiveSets,
                ResizableCacheSide::Data,
            )
            .unwrap();
        // Three default size-bounds (an eighth, a quarter, half of the full
        // size) times five miss-bound factors.
        assert_eq!(outcome.candidates.len(), 15);
        assert!(outcome.best.measurement.l1d_mean_bytes <= 32.0 * 1024.0);
        assert!(
            outcome.candidates.iter().any(|(_, m)| m.l1d_resizes > 0),
            "at least one candidate should resize"
        );
    }

    #[test]
    fn inapplicable_organization_is_an_error() {
        let r = runner();
        let err = r.static_best(
            &spec::ammp(),
            &SystemConfig::with_l1(32 * 1024, 1),
            Organization::SelectiveWays,
            ResizableCacheSide::Data,
        );
        assert!(err.is_err());
    }
}
